//! The Chord substrate on its own: ring formation under the simulator,
//! key-value puts/gets routed in `O(log n)` hops, and healing after a burst
//! of failures.
//!
//! ```text
//! cargo run --release --example dht_routing
//! ```

use dco::dht::hash::hash_name;
use dco::dht::kv::{ChordKv, KvConfig, KvMsg};
use dco::sim::prelude::*;

const N: u32 = 48;

fn main() {
    let mut sim = Simulator::new(ChordKv::new(KvConfig::default()), NetConfig::default(), 99);
    for i in 0..N {
        let id = sim.add_node(NodeCaps::peer_default());
        // Staggered joins: one node every 300 ms.
        sim.schedule_join(id, SimTime::from_millis(u64::from(i) * 300));
    }

    // Let the ring converge.
    sim.run_until(SimTime::from_secs(40));
    println!("== Chord ring over {N} nodes ==");
    println!("members joined        : {}", sim.protocol().joins.len());

    // Store a few values from random origins.
    let names = ["CNN0001", "CNN0002", "NBC0042", "HBO1234", "ESPN777"];
    for (i, name) in names.iter().enumerate() {
        let key = hash_name(name);
        let origin = NodeId(1 + (i as u32 * 7) % (N - 1));
        sim.inject_message(
            sim.now(),
            origin,
            origin,
            KvMsg::Put {
                key,
                value: 1000 + i as u64,
                ttl: 64,
                fin: false,
            },
        );
    }
    sim.run_until(sim.now() + SimDuration::from_secs(5));

    // Read them back from different nodes.
    for (i, name) in names.iter().enumerate() {
        let key = hash_name(name);
        let origin = NodeId(1 + (i as u32 * 11) % (N - 1));
        sim.inject_message(
            sim.now(),
            origin,
            origin,
            KvMsg::Get {
                key,
                origin,
                cookie: i as u64,
                ttl: 64,
                fin: false,
            },
        );
    }
    sim.run_until(sim.now() + SimDuration::from_secs(5));

    println!("\nlookups:");
    for r in &sim.protocol().results {
        println!(
            "  cookie {} → values {:?} (answered by ring, received at {})",
            r.cookie, r.values, r.at
        );
    }
    assert_eq!(sim.protocol().results.len(), names.len());

    // Routing cost: every hop was a counted control message.
    let kv_msgs = sim.counters().tagged("kv.put") + sim.counters().tagged("kv.get");
    println!(
        "\nrouted application hops: {kv_msgs} (~log2({N}) ≈ {:.1} per operation)",
        (N as f64).log2()
    );

    // Kill a fifth of the ring abruptly; stabilization heals it.
    println!("\nkilling 9 nodes abruptly…");
    for i in [3u32, 8, 13, 18, 23, 28, 33, 38, 43] {
        sim.schedule_leave(NodeId(i), sim.now() + SimDuration::from_millis(10), false);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(20));

    // The surviving ring still answers.
    let key = hash_name("post-failure");
    sim.inject_message(
        sim.now(),
        NodeId(1),
        NodeId(1),
        KvMsg::Put {
            key,
            value: 4242,
            ttl: 64,
            fin: false,
        },
    );
    sim.run_until(sim.now() + SimDuration::from_secs(3));
    sim.inject_message(
        sim.now(),
        NodeId(2),
        NodeId(2),
        KvMsg::Get {
            key,
            origin: NodeId(2),
            cookie: 999,
            ttl: 64,
            fin: false,
        },
    );
    sim.run_until(sim.now() + SimDuration::from_secs(3));

    let healed = sim
        .protocol()
        .results
        .iter()
        .any(|r| r.cookie == 999 && r.values == vec![4242]);
    assert!(healed, "ring must keep serving after failures");
    println!("ring healed and keeps serving ✓");
}
