//! Churn storm: the same viewer churn hits DCO and the tree baseline;
//! watch who keeps delivering (the paper's Figs. 11–12 story in miniature).
//!
//! ```text
//! cargo run --release --example churn_storm
//! ```

use dco::baselines::{BaselineConfig, TreeProtocol};
use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::sim::engine::{Protocol, Simulator};
use dco::sim::prelude::*;
use dco::workload::Scenario;

const N_NODES: u32 = 96;
const N_CHUNKS: u32 = 60;
const MEAN_LIFE_SECS: u64 = 45;
const HORIZON_SECS: u64 = 120;

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::paper_churn(MEAN_LIFE_SECS, seed);
    s.n_nodes = N_NODES;
    s.n_chunks = N_CHUNKS;
    s.horizon = SimTime::from_secs(HORIZON_SECS);
    s
}

fn run_one<P: Protocol>(protocol: P) -> Simulator<P> {
    let s = scenario(1234);
    let mut sim = Simulator::new(protocol, NetConfig::paper_model(), s.seed);
    s.install(&mut sim);
    sim.run_until(s.horizon);
    sim
}

fn main() {
    println!(
        "== churn storm: {} peers, exponential life/downtime ~{} s ==\n",
        N_NODES - 1,
        MEAN_LIFE_SECS
    );

    // DCO with a dynamic ring.
    let mut dco_cfg = DcoConfig::paper_churn(N_NODES, N_CHUNKS);
    dco_cfg.neighbors = 16;
    let dco_sim = run_one(DcoProtocol::new(dco_cfg));
    let dco_obs = &dco_sim.protocol().obs;

    // The rigid tree (out-degree 2 — its most forgiving setting here).
    let mut tree_cfg = BaselineConfig::paper_default(N_NODES, N_CHUNKS);
    tree_cfg.neighbors = 16; // → degree 2 by the paper's nb/8 rule
    let tree_sim = run_one(TreeProtocol::with_paper_degree(tree_cfg));
    let tree_obs = &tree_sim.protocol().obs;

    println!("{:>8}  {:>10}  {:>10}", "t (s)", "DCO %", "tree %");
    let mut t = HORIZON_SECS / 2;
    while t <= HORIZON_SECS {
        println!(
            "{:>8}  {:>10.1}  {:>10.1}",
            t,
            dco_obs.received_percentage(SimTime::from_secs(t)),
            tree_obs.received_percentage(SimTime::from_secs(t)),
        );
        t += 10;
    }

    let horizon = SimTime::from_secs(HORIZON_SECS);
    let dco_pct = dco_obs.received_percentage(horizon);
    let tree_pct = tree_obs.received_percentage(horizon);
    println!("\nfinal: DCO {dco_pct:.1}%  vs  tree {tree_pct:.1}%");
    assert!(
        dco_pct > tree_pct,
        "DCO must out-deliver the rigid tree under churn"
    );
    println!("DCO out-delivered the tree under churn ✓");
}
