//! Quickstart: stream a short live channel through DCO and print the four
//! §IV metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::sim::prelude::*;

fn main() {
    // 32 viewers + the server, 20 one-second chunks of 300 kb.
    let n_nodes = 32;
    let n_chunks = 20;
    let cfg = DcoConfig::paper_default(n_nodes, n_chunks);

    let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), 42);
    for i in 0..n_nodes {
        let caps = if i == 0 {
            NodeCaps::server_default() // 4000 kbps source
        } else {
            NodeCaps::peer_default() // 600 kbps viewers
        };
        let id = sim.add_node(caps);
        sim.schedule_join(id, SimTime::ZERO);
    }

    let horizon = SimTime::from_secs(60);
    sim.run_until(horizon);

    let p = sim.protocol();
    println!(
        "== DCO quickstart: {} viewers, {} chunks ==",
        n_nodes - 1,
        n_chunks
    );
    println!(
        "mean mesh delay        : {:>8.2} s",
        p.obs.mean_mesh_delay(horizon)
    );
    println!(
        "fill ratio +2s         : {:>8.3}",
        p.obs.mean_fill_ratio_at_offset(SimDuration::from_secs(2))
    );
    println!(
        "extra overhead         : {:>8} control messages",
        sim.counters().control_total()
    );
    println!(
        "chunks received        : {:>8.1} %",
        p.obs.received_percentage(horizon)
    );
    println!();
    println!("overhead by message class:");
    for (tag, n) in sim.counters().tags() {
        println!("  {tag:<14} {n:>8}");
    }
    assert!(p.obs.received_percentage(horizon) > 99.0);
    println!("\nall chunks delivered ✓");
}
