//! §III's hierarchical infrastructure in action: viewers attach to
//! coordinators as lower-tier clients; when the coordinator tier overloads,
//! the most stable clients (Cox longevity model, Eq. 1) are promoted into
//! the Chord ring, splitting the index load.
//!
//! ```text
//! cargo run --release --example hierarchical_tier
//! ```

use dco::core::proto::{DcoConfig, DcoProtocol, Role, TierMode};
use dco::sim::prelude::*;

fn main() {
    let n_nodes: u32 = 64;
    let n_chunks: u32 = 80;
    let mut cfg = DcoConfig::paper_default(n_nodes, n_chunks);
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.5,
        overload_lookups: 40, // promote once a coordinator fields >40 lookups per check
        check_every: SimDuration::from_secs(4),
    };

    let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), 11);
    for i in 0..n_nodes {
        let caps = if i == 0 {
            NodeCaps::server_default()
        } else {
            NodeCaps::peer_default()
        };
        let id = sim.add_node(caps);
        sim.schedule_join(id, SimTime::ZERO);
    }

    println!(
        "== hierarchical tier: {} viewers, server-only ring at start ==\n",
        n_nodes - 1
    );
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "t (s)", "ring members", "coordinators", "received %"
    );
    for t in [5u64, 15, 30, 60, 100, 140] {
        sim.run_until(SimTime::from_secs(t));
        let p = sim.protocol();
        println!(
            "{:>8} {:>14} {:>14} {:>12.1}",
            t,
            p.chord().member_count(),
            p.coordinator_count(),
            p.obs.received_percentage(SimTime::from_secs(t))
        );
    }

    let p = sim.protocol();
    let promoted: Vec<u32> = (1..n_nodes)
        .filter(|&i| p.role_of(NodeId(i)) == Some(Role::Coordinator))
        .collect();
    println!("\npromoted into the ring: {promoted:?}");
    println!(
        "still clients          : {}",
        (1..n_nodes)
            .filter(|&i| p.role_of(NodeId(i)) == Some(Role::Client))
            .count()
    );

    let final_pct = p.obs.received_percentage(SimTime::from_secs(140));
    assert!(p.coordinator_count() > 1, "the tier must have grown");
    assert!(final_pct > 97.0, "stream must complete: {final_pct:.1}%");
    println!("\nelastic tier carried the stream ✓");
}
