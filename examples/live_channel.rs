//! A realistic live channel: viewers tune in over time, watch the stream
//! through DCO's coordinator ring, and the example reports how the chunk
//! indices and serving load spread across the overlay.
//!
//! ```text
//! cargo run --release --example live_channel
//! ```

use dco::core::chunk::ChunkSeq;
use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::sim::prelude::*;

fn main() {
    let n_nodes: u32 = 128;
    let n_chunks: u32 = 60;
    // Dynamic ring: viewers join the DHT as they arrive.
    let mut cfg = DcoConfig::paper_churn(n_nodes, n_chunks);
    cfg.neighbors = 16;

    let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), 7);
    // The server is up from the start; viewers arrive over the first 30 s
    // (a flash crowd ramp), four per second.
    for i in 0..n_nodes {
        let caps = if i == 0 {
            NodeCaps::server_default()
        } else {
            NodeCaps::peer_default()
        };
        let id = sim.add_node(caps);
        let at = if i == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_millis(u64::from(i) * 250)
        };
        sim.schedule_join(id, at);
    }

    let horizon = SimTime::from_secs(120);
    sim.run_until(horizon);

    let p = sim.protocol();
    println!(
        "== live channel: {} viewers arriving over 30 s ==\n",
        n_nodes - 1
    );

    println!("ring members          : {:>6}", p.chord().member_count());
    println!(
        "chunks received       : {:>6.1} %",
        p.obs.received_percentage(horizon)
    );
    println!(
        "mean mesh delay       : {:>6.2} s",
        p.obs.mean_mesh_delay(horizon)
    );
    println!("fetch failures seen   : {:>6}", p.fetch_failures);

    // How evenly did the coordinators share the index load?
    let mut index_counts: Vec<usize> = (0..n_nodes).map(|i| p.index_count(NodeId(i))).collect();
    index_counts.sort_unstable();
    let total: usize = index_counts.iter().sum();
    println!("\nindex entries         : {total} across the ring");
    println!(
        "per-coordinator (min / median / max): {} / {} / {}",
        index_counts.first().unwrap(),
        index_counts[index_counts.len() / 2],
        index_counts.last().unwrap()
    );

    // Who actually served the chunks? The server should NOT be the only
    // provider once the swarm warms up.
    let server_serves = p.serves[0];
    let peer_serves: u64 = p.serves[1..].iter().sum();
    println!("\nchunks served by server: {server_serves}");
    println!("chunks served by peers : {peer_serves}");

    // Late viewers only watch from their join point — check one.
    let late = NodeId(n_nodes - 1);
    let first_held = (0..n_chunks).map(ChunkSeq).find(|&s| p.holds(late, s));
    println!(
        "\nlast viewer to arrive holds chunks from {:?} onward",
        first_held
    );

    assert!(p.obs.received_percentage(horizon) > 95.0);
    assert!(
        peer_serves > server_serves,
        "the swarm must carry most load"
    );
    println!("\nswarm carried the stream ✓");
}
