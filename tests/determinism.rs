//! Determinism regression tests: the sweep harness's core contract is
//! that a cell's simulation is **bit-exact** — identical event trace and
//! counter state — whether the cell runs alone, repeated, or inside a
//! parallel sweep at any `--jobs` level. These tests pin that contract;
//! if one ever fails, some code path made simulation behaviour depend on
//! wall-clock, thread schedule or global state.

use dco_bench::sweep::{expand, run_cell, run_sweep, SweepConfig};
use dco_bench::{run_with_stats, Method, RunParams};
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::{ChurnConfig, ScenarioGrid};

fn params(seed: u64, churn: bool) -> RunParams {
    RunParams {
        n_nodes: 20,
        n_chunks: 8,
        neighbors: 8,
        churn: churn.then(|| ChurnConfig::paper_fig12(25)),
        horizon: SimTime::from_secs(50),
        tree_degree: Some(2),
        fill_offset: SimDuration::from_secs(5),
        seed,
    }
}

#[test]
fn same_cell_twice_gives_identical_proofs_for_every_method() {
    for method in [
        Method::Dco,
        Method::Pull,
        Method::Push,
        Method::Tree,
        Method::TreeStar,
    ] {
        for churn in [false, true] {
            let a = run_with_stats(method, &params(11, churn));
            let b = run_with_stats(method, &params(11, churn));
            assert_eq!(
                a.proof,
                b.proof,
                "{} churn={churn}: repeat run diverged",
                method.label()
            );
            assert_eq!(a.result.overhead, b.result.overhead);
            assert_eq!(a.result.data_msgs, b.result.data_msgs);
            assert_eq!(a.result.mean_mesh_delay, b.result.mean_mesh_delay);
        }
    }
}

#[test]
fn trace_digest_separates_seeds_methods_and_scenarios() {
    let base = run_with_stats(Method::Dco, &params(11, false));
    let other_method = run_with_stats(Method::Pull, &params(11, false));
    let other_scenario = run_with_stats(Method::Dco, &params(11, true));
    assert_ne!(base.proof.trace_digest, other_method.proof.trace_digest);
    assert_ne!(base.proof.trace_digest, other_scenario.proof.trace_digest);

    // Seed sensitivity where the seed actually enters the event stream:
    // mesh overlays shuffle their neighbor candidates, and churn schedules
    // are drawn from the seed. (A *static* DCO or tree run under the
    // paper's constant-latency model is deliberately seed-invariant — the
    // protocol consumes no random draws there, so the digest SHOULD agree
    // across seeds.)
    let pull_a = run_with_stats(Method::Pull, &params(11, false));
    let pull_b = run_with_stats(Method::Pull, &params(12, false));
    assert_ne!(pull_a.proof.trace_digest, pull_b.proof.trace_digest);
    let churn_a = run_with_stats(Method::Dco, &params(11, true));
    let churn_b = run_with_stats(Method::Dco, &params(12, true));
    assert_ne!(churn_a.proof.trace_digest, churn_b.proof.trace_digest);
    let static_a = run_with_stats(Method::Dco, &params(11, false));
    let static_b = run_with_stats(Method::Dco, &params(12, false));
    assert_eq!(
        static_a.proof.trace_digest, static_b.proof.trace_digest,
        "static DCO under constant latency draws no randomness"
    );
}

#[test]
fn sweep_cells_are_identical_across_jobs_levels() {
    // The acceptance check of the harness: every cell of a grid produces
    // the same trace digest and the same counter snapshot under serial
    // (--jobs 1) and parallel (--jobs 4) execution.
    let mut serial = SweepConfig::tiny();
    serial.jobs = 1;
    let mut parallel = SweepConfig::tiny();
    parallel.jobs = 4;

    let a = run_sweep(&serial);
    let b = run_sweep(&parallel);
    assert_eq!(a.cells.len(), b.cells.len());
    assert!(!a.cells.is_empty());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.cell, y.cell, "cell order must not depend on jobs");
        assert_eq!(
            x.stats.proof.trace_digest, y.stats.proof.trace_digest,
            "trace digest diverged for {:?}",
            x.cell
        );
        assert_eq!(
            x.stats.proof.snapshot, y.stats.proof.snapshot,
            "counter snapshot diverged for {:?}",
            x.cell
        );
    }
    // Aggregated rows follow suit.
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.mesh_delay.mean, rb.mesh_delay.mean);
        assert_eq!(ra.received_pct.mean, rb.received_pct.mean);
    }
}

#[test]
fn a_cell_run_alone_matches_the_same_cell_inside_a_sweep() {
    let cfg = SweepConfig::tiny();
    let cells = expand(&cfg);
    let inside = run_sweep(&cfg);
    for (cell, outcome) in cells.iter().zip(&inside.cells) {
        let alone = run_cell(&cfg, cell);
        assert_eq!(
            alone.stats.proof, outcome.stats.proof,
            "cell {cell:?} differs alone vs in-sweep"
        );
    }
}

/// Golden trace digests for the five cross-protocol seeds, captured on the
/// seed engine (binary-heap calendar, deep-copy fan-out) before the hot-path
/// overhaul. Any engine or data-structure change that alters one of these
/// digests has changed *simulation behaviour*, not just performance.
/// Regenerate (only when behaviour is changed on purpose) with
/// `cargo run --release --bin dco-perf -- --digests`.
const GOLDEN_DIGESTS: &[(&str, bool, u64, u64)] = &[
    ("DCO", false, 0x1f7c736e930dc180, 0xeb1f0a0f0408c949),
    ("DCO", false, 0xe3caf2b8bd3796b7, 0xeb1f0a0f0408c949),
    ("DCO", false, 0x1140ddf5c70c18ef, 0xeb1f0a0f0408c949),
    ("DCO", false, 0xeb8e4a6bdf06a8f7, 0xeb1f0a0f0408c949),
    ("DCO", false, 0xa4e06ed4afd6b5a, 0xeb1f0a0f0408c949),
    ("DCO", true, 0x1f7c736e930dc180, 0x91814ac34cefd264),
    ("DCO", true, 0xe3caf2b8bd3796b7, 0x610299b92f62c113),
    ("DCO", true, 0x1140ddf5c70c18ef, 0xdac3bceb9917f5b7),
    ("DCO", true, 0xeb8e4a6bdf06a8f7, 0x2b700c8c80c0478f),
    ("DCO", true, 0xa4e06ed4afd6b5a, 0x3e3e73738e977018),
    ("pull", false, 0x1f7c736e930dc180, 0xaac1d6c5a0debbe6),
    ("pull", false, 0xe3caf2b8bd3796b7, 0xf5b33c078a38d699),
    ("pull", false, 0x1140ddf5c70c18ef, 0x088d3ddff74400ba),
    ("pull", false, 0xeb8e4a6bdf06a8f7, 0x96a25b6cae659185),
    ("pull", false, 0xa4e06ed4afd6b5a, 0x5e770aeac4397ca0),
    ("pull", true, 0x1f7c736e930dc180, 0x18a0569e3e5b9ff7),
    ("pull", true, 0xe3caf2b8bd3796b7, 0x2ada765d96e3eee3),
    ("pull", true, 0x1140ddf5c70c18ef, 0xe0bb3864331fbc10),
    ("pull", true, 0xeb8e4a6bdf06a8f7, 0xb44ac0b908ef708d),
    ("pull", true, 0xa4e06ed4afd6b5a, 0x82c31e63575e0fde),
    ("push", false, 0x1f7c736e930dc180, 0x4339b5a5c51726c8),
    ("push", false, 0xe3caf2b8bd3796b7, 0xa1fbc24713274eed),
    ("push", false, 0x1140ddf5c70c18ef, 0x2af6317cb127250f),
    ("push", false, 0xeb8e4a6bdf06a8f7, 0xa91c1fdfde84e35a),
    ("push", false, 0xa4e06ed4afd6b5a, 0x3e21ad40e4e9554c),
    ("push", true, 0x1f7c736e930dc180, 0xa9aeec37460b8c7e),
    ("push", true, 0xe3caf2b8bd3796b7, 0xfb929974d8996783),
    ("push", true, 0x1140ddf5c70c18ef, 0x9b1a6cbc6346b296),
    ("push", true, 0xeb8e4a6bdf06a8f7, 0x4ca129f5f5fcc543),
    ("push", true, 0xa4e06ed4afd6b5a, 0x8a5305d1993cc1f1),
    ("tree", false, 0x1f7c736e930dc180, 0x9462c02dc7fef131),
    ("tree", false, 0xe3caf2b8bd3796b7, 0x9462c02dc7fef131),
    ("tree", false, 0x1140ddf5c70c18ef, 0x9462c02dc7fef131),
    ("tree", false, 0xeb8e4a6bdf06a8f7, 0x9462c02dc7fef131),
    ("tree", false, 0xa4e06ed4afd6b5a, 0x9462c02dc7fef131),
    ("tree", true, 0x1f7c736e930dc180, 0xe0afc50e5bb72815),
    ("tree", true, 0xe3caf2b8bd3796b7, 0x23f7c1aad63f2863),
    ("tree", true, 0x1140ddf5c70c18ef, 0xce012d8767e5bb09),
    ("tree", true, 0xeb8e4a6bdf06a8f7, 0x64de7c7a46f4ec88),
    ("tree", true, 0xa4e06ed4afd6b5a, 0x9e289753212850c9),
    ("tree*", false, 0x1f7c736e930dc180, 0xd46d51a69854e05a),
    ("tree*", false, 0xe3caf2b8bd3796b7, 0xd46d51a69854e05a),
    ("tree*", false, 0x1140ddf5c70c18ef, 0xd46d51a69854e05a),
    ("tree*", false, 0xeb8e4a6bdf06a8f7, 0xd46d51a69854e05a),
    ("tree*", false, 0xa4e06ed4afd6b5a, 0xd46d51a69854e05a),
    ("tree*", true, 0x1f7c736e930dc180, 0x60e3638850a2688a),
    ("tree*", true, 0xe3caf2b8bd3796b7, 0x6e961630dd27d3fb),
    ("tree*", true, 0x1140ddf5c70c18ef, 0x1902e558858328d6),
    ("tree*", true, 0xeb8e4a6bdf06a8f7, 0xe31c4765ab47bd0e),
    ("tree*", true, 0xa4e06ed4afd6b5a, 0x9e0e2d95f81068f7),
];

#[test]
fn trace_digests_match_the_pinned_golden_table() {
    let methods = [
        Method::Dco,
        Method::Pull,
        Method::Push,
        Method::Tree,
        Method::TreeStar,
    ];
    let seeds = ScenarioGrid::seed_list(0xC2055, 5);
    let mut checked = 0;
    for method in methods {
        for churn in [false, true] {
            for &seed in &seeds {
                let got = run_with_stats(method, &params(seed, churn))
                    .proof
                    .trace_digest;
                let want = GOLDEN_DIGESTS
                    .iter()
                    .find(|(m, c, s, _)| *m == method.label() && *c == churn && *s == seed)
                    .map(|(.., d)| *d)
                    .expect("golden table covers every (method, churn, seed) cell");
                assert_eq!(
                    got,
                    want,
                    "{} churn={churn} seed={seed:#x}: digest {got:#018x} != golden {want:#018x}",
                    method.label()
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, GOLDEN_DIGESTS.len(), "every golden row exercised");
}

#[test]
fn json_report_is_byte_identical_across_jobs_levels() {
    let mut one = SweepConfig::tiny();
    one.jobs = 1;
    let mut three = SweepConfig::tiny();
    three.jobs = 3;
    assert_eq!(
        run_sweep(&one).to_json(),
        run_sweep(&three).to_json(),
        "the emitted report must not leak thread count"
    );
}
