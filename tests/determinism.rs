//! Determinism regression tests: the sweep harness's core contract is
//! that a cell's simulation is **bit-exact** — identical event trace and
//! counter state — whether the cell runs alone, repeated, or inside a
//! parallel sweep at any `--jobs` level. These tests pin that contract;
//! if one ever fails, some code path made simulation behaviour depend on
//! wall-clock, thread schedule or global state.

use dco_bench::sweep::{expand, run_cell, run_sweep, SweepConfig};
use dco_bench::{run_with_stats, Method, RunParams};
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::ChurnConfig;

fn params(seed: u64, churn: bool) -> RunParams {
    RunParams {
        n_nodes: 20,
        n_chunks: 8,
        neighbors: 8,
        churn: churn.then(|| ChurnConfig::paper_fig12(25)),
        horizon: SimTime::from_secs(50),
        tree_degree: Some(2),
        fill_offset: SimDuration::from_secs(5),
        seed,
    }
}

#[test]
fn same_cell_twice_gives_identical_proofs_for_every_method() {
    for method in [
        Method::Dco,
        Method::Pull,
        Method::Push,
        Method::Tree,
        Method::TreeStar,
    ] {
        for churn in [false, true] {
            let a = run_with_stats(method, &params(11, churn));
            let b = run_with_stats(method, &params(11, churn));
            assert_eq!(
                a.proof,
                b.proof,
                "{} churn={churn}: repeat run diverged",
                method.label()
            );
            assert_eq!(a.result.overhead, b.result.overhead);
            assert_eq!(a.result.data_msgs, b.result.data_msgs);
            assert_eq!(a.result.mean_mesh_delay, b.result.mean_mesh_delay);
        }
    }
}

#[test]
fn trace_digest_separates_seeds_methods_and_scenarios() {
    let base = run_with_stats(Method::Dco, &params(11, false));
    let other_method = run_with_stats(Method::Pull, &params(11, false));
    let other_scenario = run_with_stats(Method::Dco, &params(11, true));
    assert_ne!(base.proof.trace_digest, other_method.proof.trace_digest);
    assert_ne!(base.proof.trace_digest, other_scenario.proof.trace_digest);

    // Seed sensitivity where the seed actually enters the event stream:
    // mesh overlays shuffle their neighbor candidates, and churn schedules
    // are drawn from the seed. (A *static* DCO or tree run under the
    // paper's constant-latency model is deliberately seed-invariant — the
    // protocol consumes no random draws there, so the digest SHOULD agree
    // across seeds.)
    let pull_a = run_with_stats(Method::Pull, &params(11, false));
    let pull_b = run_with_stats(Method::Pull, &params(12, false));
    assert_ne!(pull_a.proof.trace_digest, pull_b.proof.trace_digest);
    let churn_a = run_with_stats(Method::Dco, &params(11, true));
    let churn_b = run_with_stats(Method::Dco, &params(12, true));
    assert_ne!(churn_a.proof.trace_digest, churn_b.proof.trace_digest);
    let static_a = run_with_stats(Method::Dco, &params(11, false));
    let static_b = run_with_stats(Method::Dco, &params(12, false));
    assert_eq!(
        static_a.proof.trace_digest, static_b.proof.trace_digest,
        "static DCO under constant latency draws no randomness"
    );
}

#[test]
fn sweep_cells_are_identical_across_jobs_levels() {
    // The acceptance check of the harness: every cell of a grid produces
    // the same trace digest and the same counter snapshot under serial
    // (--jobs 1) and parallel (--jobs 4) execution.
    let mut serial = SweepConfig::tiny();
    serial.jobs = 1;
    let mut parallel = SweepConfig::tiny();
    parallel.jobs = 4;

    let a = run_sweep(&serial);
    let b = run_sweep(&parallel);
    assert_eq!(a.cells.len(), b.cells.len());
    assert!(!a.cells.is_empty());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.cell, y.cell, "cell order must not depend on jobs");
        assert_eq!(
            x.stats.proof.trace_digest, y.stats.proof.trace_digest,
            "trace digest diverged for {:?}",
            x.cell
        );
        assert_eq!(
            x.stats.proof.snapshot, y.stats.proof.snapshot,
            "counter snapshot diverged for {:?}",
            x.cell
        );
    }
    // Aggregated rows follow suit.
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.mesh_delay.mean, rb.mesh_delay.mean);
        assert_eq!(ra.received_pct.mean, rb.received_pct.mean);
    }
}

#[test]
fn a_cell_run_alone_matches_the_same_cell_inside_a_sweep() {
    let cfg = SweepConfig::tiny();
    let cells = expand(&cfg);
    let inside = run_sweep(&cfg);
    for (cell, outcome) in cells.iter().zip(&inside.cells) {
        let alone = run_cell(&cfg, cell);
        assert_eq!(
            alone.stats.proof, outcome.stats.proof,
            "cell {cell:?} differs alone vs in-sweep"
        );
    }
}

#[test]
fn json_report_is_byte_identical_across_jobs_levels() {
    let mut one = SweepConfig::tiny();
    one.jobs = 1;
    let mut three = SweepConfig::tiny();
    three.jobs = 3;
    assert_eq!(
        run_sweep(&one).to_json(),
        run_sweep(&three).to_json(),
        "the emitted report must not leak thread count"
    );
}
