//! The Chord substrate under the full simulator: hop-count scaling, ring
//! healing to oracle agreement, and lookup latency under real link delays.

use dco::dht::hash::hash_name;
use dco::dht::kv::{ChordKv, KvConfig, KvMsg};
use dco::sim::prelude::*;

fn ring_of(n: u32, seed: u64) -> Simulator<ChordKv> {
    let mut sim = Simulator::new(
        ChordKv::new(KvConfig::default()),
        NetConfig::default(),
        seed,
    );
    for i in 0..n {
        let id = sim.add_node(NodeCaps::peer_default());
        sim.schedule_join(id, SimTime::from_millis(u64::from(i) * 100));
    }
    // Generous convergence budget.
    sim.run_until(SimTime::from_secs(30 + u64::from(n) / 4));
    sim
}

/// Issues `k` gets from distinct origins and returns the mean number of
/// routed hops per resolved lookup.
fn mean_get_hops(sim: &mut Simulator<ChordKv>, n: u32, k: u64) -> f64 {
    let before = sim.counters().tagged("kv.get");
    let answered_before = sim.protocol().results.len();
    for i in 0..k {
        let key = hash_name(&format!("probe-{i}"));
        let origin = NodeId(1 + (i as u32 * 13) % (n - 1));
        sim.inject_message(
            sim.now(),
            origin,
            origin,
            KvMsg::Get {
                key,
                origin,
                cookie: 10_000 + i,
                ttl: 64,
                fin: false,
            },
        );
    }
    sim.run_until(sim.now() + SimDuration::from_secs(10));
    let answered = sim.protocol().results.len() - answered_before;
    assert_eq!(answered as u64, k, "every lookup must resolve");
    (sim.counters().tagged("kv.get") - before) as f64 / k as f64
}

#[test]
fn lookup_hops_scale_logarithmically() {
    let mut hops_small = 0.0;
    let mut hops_large = 0.0;
    for (n, out) in [(32u32, &mut hops_small), (256, &mut hops_large)] {
        let mut sim = ring_of(n, 77);
        *out = mean_get_hops(&mut sim, n, 40);
    }
    // log2(256)/log2(32) = 1.6; allow generous slack but demand sub-linear
    // growth (8× nodes must NOT mean 8× hops).
    assert!(
        hops_large < hops_small * 3.0,
        "hops grew super-logarithmically: {hops_small:.2} → {hops_large:.2}"
    );
    assert!(
        hops_large <= 2.0 * (256f64).log2(),
        "mean hops {hops_large:.2} beyond 2·log2(n)"
    );
}

#[test]
fn ring_agrees_with_oracle_after_convergence() {
    let sim = ring_of(64, 81);
    let chord = &sim.protocol().chord;
    let oracle = chord.oracle();
    let mut wrong = 0;
    for st in chord.members() {
        let want = oracle.successor(st.me().id).map(|p| p.node);
        if st.successor().map(|p| p.node) != want {
            wrong += 1;
        }
    }
    assert_eq!(wrong, 0, "{wrong} nodes disagree with the oracle successor");
}

#[test]
fn mass_failure_heals_and_data_survives_on_live_owners() {
    let mut sim = ring_of(48, 85);
    // Write some values first.
    for i in 0..10u64 {
        let key = hash_name(&format!("val-{i}"));
        sim.inject_message(
            sim.now(),
            NodeId(1),
            NodeId(1),
            KvMsg::Put {
                key,
                value: i,
                ttl: 64,
                fin: false,
            },
        );
    }
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    // Kill a third of the ring at once.
    for i in (3..48u32).step_by(3) {
        sim.schedule_leave(NodeId(i), sim.now() + SimDuration::from_millis(100), false);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(30));
    // The survivors' ring must again agree with the survivors' oracle.
    let chord = &sim.protocol().chord;
    let oracle = chord.oracle();
    for st in chord.members() {
        assert_eq!(
            st.successor().map(|p| p.node),
            oracle.successor(st.me().id).map(|p| p.node),
            "stale successor at {:?}",
            st.me()
        );
    }
    // And lookups still resolve end to end.
    let key = hash_name("post-mass-failure");
    sim.inject_message(
        sim.now(),
        NodeId(1),
        NodeId(1),
        KvMsg::Put {
            key,
            value: 777,
            ttl: 64,
            fin: false,
        },
    );
    sim.run_until(sim.now() + SimDuration::from_secs(3));
    sim.inject_message(
        sim.now(),
        NodeId(2),
        NodeId(2),
        KvMsg::Get {
            key,
            origin: NodeId(2),
            cookie: 424242,
            ttl: 64,
            fin: false,
        },
    );
    sim.run_until(sim.now() + SimDuration::from_secs(3));
    assert!(sim
        .protocol()
        .results
        .iter()
        .any(|r| r.cookie == 424242 && r.values == vec![777]));
}

#[test]
fn lookups_resolve_within_latency_budget() {
    let mut sim = ring_of(128, 91);
    let t0 = sim.now();
    let key = hash_name("latency-probe");
    sim.inject_message(
        sim.now(),
        NodeId(3),
        NodeId(3),
        KvMsg::Get {
            key,
            origin: NodeId(3),
            cookie: 55,
            ttl: 64,
            fin: false,
        },
    );
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let r = sim
        .protocol()
        .results
        .iter()
        .find(|r| r.cookie == 55)
        .expect("resolved");
    // ≤ (log2 n + slack) hops × 50 ms + the direct reply. §III-B2's
    // estimate: 0.1 s × log2(1860) ≈ 1.09 s ≪ the 20 s prefetch window.
    let elapsed = r.at.saturating_since(t0);
    assert!(
        elapsed < SimDuration::from_millis(1_500),
        "lookup took {elapsed}"
    );
}
