//! Property tests spanning the event calendar, workload generation,
//! metrics bookkeeping and the DCO protocol's conservation laws. Driven
//! by the in-tree `dco-testkit` (deterministic seeds,
//! `DCO_TESTKIT_REPLAY` to reproduce a failure).

use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::metrics::StreamObserver;
use dco::sim::prelude::*;
use dco::sim::queue::EventQueue;
use dco::workload::{ChurnConfig, ChurnSchedule};
use dco_testkit::{check, tk_assert, tk_assert_eq};

/// The calendar pops in `(time, insertion)` order for arbitrary push
/// sequences: earliest time first, and FIFO among events scheduled for
/// the same instant — the stability that makes whole runs deterministic.
#[test]
fn event_queue_pops_in_time_then_insertion_order() {
    check("event_queue_pops_in_time_then_insertion_order", 128, |g| {
        // Cluster times into few distinct values so same-instant ties are
        // common, and interleave pops to exercise heap reordering. At every
        // pop the queue must return the minimum (time, insertion) pair of
        // the events currently inside it — checked against a model
        // multiset that mirrors each push and pop.
        let n = g.usize_in(1, 200);
        let distinct_times = g.u64_in(1, 8);
        let mut q = EventQueue::with_capacity(n);
        let mut model: Vec<(u64, usize)> = Vec::new();
        let check_pop =
            |q: &mut EventQueue<usize>, model: &mut Vec<(u64, usize)>| -> Result<(), String> {
                let expect = *model.iter().min().unwrap();
                let (at, idx) = q.pop().expect("model is non-empty");
                tk_assert_eq!(
                    (at.as_micros(), idx),
                    expect,
                    "pop must return the least (time, insertion) pair"
                );
                model.retain(|&e| e != expect);
                Ok(())
            };
        for i in 0..n {
            let t = g.u64_in(0, distinct_times) * 37;
            q.push(SimTime::from_micros(t), i);
            model.push((t, i));
            if g.weighted_bool(0.2) {
                check_pop(&mut q, &mut model)?;
            }
        }
        while !model.is_empty() {
            check_pop(&mut q, &mut model)?;
        }
        tk_assert!(q.pop().is_none(), "queue drains with the model");
        Ok(())
    });
}

/// Churn schedules are alternating, time-ordered, and deterministic in
/// the seed, for arbitrary parameters.
#[test]
fn churn_schedules_are_well_formed() {
    check("churn_schedules_are_well_formed", 24, |g| {
        let count = g.u64_in(1, 60) as u32;
        let mean_life = g.u64_in(5, 120);
        let graceful = g.f64_in(0.0, 1.0);
        let seed = g.any_u64();
        let cfg = ChurnConfig {
            mean_life: SimDuration::from_secs(mean_life),
            mean_join_interval: SimDuration::from_secs(mean_life),
            graceful_fraction: graceful,
            start_after: SimTime::ZERO,
        };
        let horizon = SimTime::from_secs(240);
        let s1 = ChurnSchedule::generate(1, count, horizon, &cfg, seed);
        let s2 = ChurnSchedule::generate(1, count, horizon, &cfg, seed);
        tk_assert_eq!(&s1.events, &s2.events, "seed-deterministic");
        for (_, seq) in &s1.events {
            let mut last = SimTime::ZERO;
            for (i, e) in seq.iter().enumerate() {
                let (t, is_join) = match *e {
                    dco::workload::ChurnEvent::Join(t) => (t, true),
                    dco::workload::ChurnEvent::Leave(t, _) => (t, false),
                };
                tk_assert_eq!(is_join, i % 2 == 0, "alternation");
                tk_assert!(t >= last, "ordering");
                tk_assert!(t < horizon, "clipped to horizon");
                last = t;
            }
        }
        Ok(())
    });
}

/// Observer conservation: received ≤ expected; fill ratios are in
/// [0, 1] and monotone in time, for arbitrary reception patterns.
#[test]
fn observer_invariants_hold() {
    check("observer_invariants_hold", 24, |g| {
        let n_nodes = g.usize_in(1, 20);
        let n_chunks = g.u64_in(1, 30) as u32;
        let receptions: Vec<(u32, u32, u64)> = g.vec_of(0, 200, |g| {
            (
                g.u64_in(0, 30) as u32,
                g.u64_in(0, 20) as u32,
                g.u64_in(0, 500),
            )
        });
        let mut obs = StreamObserver::new(n_nodes, n_chunks as usize);
        for seq in 0..n_chunks {
            obs.record_generated(seq, SimTime::from_secs(u64::from(seq)));
            for node in 0..n_nodes {
                obs.mark_expected(seq, NodeId(node as u32));
            }
        }
        for (seq, node, t) in receptions {
            if seq < n_chunks && (node as usize) < n_nodes {
                obs.record_received(seq, NodeId(node), SimTime::from_secs(t));
            }
        }
        tk_assert!(obs.received_pairs() <= obs.expected_pairs());
        let mut last = -1.0f64;
        for t in (0..500).step_by(50) {
            let f = obs.global_fill_ratio(SimTime::from_secs(t));
            tk_assert!((0.0..=1.0).contains(&f));
            tk_assert!(f >= last, "fill monotone in time");
            last = f;
        }
        Ok(())
    });
}

/// DCO conservation on arbitrary small static networks: every received
/// pair was generated, reception never exceeds the audience, and all
/// overhead tags belong to the protocol's vocabulary.
#[test]
fn dco_run_conservation() {
    check("dco_run_conservation", 16, |g| {
        let n_nodes = g.u64_in(4, 24) as u32;
        let n_chunks = g.u64_in(1, 12) as u32;
        let seed = g.any_u64();
        let cfg = DcoConfig::paper_default(n_nodes, n_chunks);
        let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), seed);
        for i in 0..n_nodes {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim.run_until(SimTime::from_secs(u64::from(n_chunks) + 40));
        let p = sim.protocol();
        tk_assert_eq!(
            p.obs.expected_pairs(),
            (n_nodes as usize - 1) * n_chunks as usize
        );
        tk_assert!(p.obs.received_pairs() <= p.obs.expected_pairs());
        // Static + no loss ⇒ everything arrives.
        tk_assert_eq!(p.obs.received_pairs(), p.obs.expected_pairs());
        for (tag, _) in sim.counters().tags() {
            tk_assert!(
                tag.starts_with("dco.") || tag.starts_with("chord."),
                "unknown overhead tag {tag}"
            );
        }
        Ok(())
    });
}
