//! Property tests spanning workload generation, metrics bookkeeping and
//! the DCO protocol's conservation laws.

use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::metrics::StreamObserver;
use dco::sim::prelude::*;
use dco::workload::{ChurnConfig, ChurnSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Churn schedules are alternating, time-ordered, and deterministic in
    /// the seed, for arbitrary parameters.
    #[test]
    fn churn_schedules_are_well_formed(
        count in 1u32..60,
        mean_life in 5u64..120,
        graceful in 0.0f64..=1.0,
        seed: u64,
    ) {
        let cfg = ChurnConfig {
            mean_life: SimDuration::from_secs(mean_life),
            mean_join_interval: SimDuration::from_secs(mean_life),
            graceful_fraction: graceful,
            start_after: SimTime::ZERO,
        };
        let horizon = SimTime::from_secs(240);
        let s1 = ChurnSchedule::generate(1, count, horizon, &cfg, seed);
        let s2 = ChurnSchedule::generate(1, count, horizon, &cfg, seed);
        prop_assert_eq!(&s1.events, &s2.events, "seed-deterministic");
        for (_, seq) in &s1.events {
            let mut last = SimTime::ZERO;
            for (i, e) in seq.iter().enumerate() {
                let (t, is_join) = match *e {
                    dco::workload::ChurnEvent::Join(t) => (t, true),
                    dco::workload::ChurnEvent::Leave(t, _) => (t, false),
                };
                prop_assert_eq!(is_join, i % 2 == 0, "alternation");
                prop_assert!(t >= last, "ordering");
                prop_assert!(t < horizon, "clipped to horizon");
                last = t;
            }
        }
    }

    /// Observer conservation: received ≤ expected; fill ratios are in
    /// [0, 1] and monotone in time, for arbitrary reception patterns.
    #[test]
    fn observer_invariants_hold(
        n_nodes in 1usize..20,
        n_chunks in 1u32..30,
        receptions in prop::collection::vec((0u32..30, 0u32..20, 0u64..500), 0..200),
    ) {
        let mut obs = StreamObserver::new(n_nodes, n_chunks as usize);
        for seq in 0..n_chunks {
            obs.record_generated(seq, SimTime::from_secs(u64::from(seq)));
            for node in 0..n_nodes {
                obs.mark_expected(seq, NodeId(node as u32));
            }
        }
        for (seq, node, t) in receptions {
            if seq < n_chunks && (node as usize) < n_nodes {
                obs.record_received(seq, NodeId(node), SimTime::from_secs(t));
            }
        }
        prop_assert!(obs.received_pairs() <= obs.expected_pairs());
        let mut last = -1.0f64;
        for t in (0..500).step_by(50) {
            let f = obs.global_fill_ratio(SimTime::from_secs(t));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last, "fill monotone in time");
            last = f;
        }
    }

    /// DCO conservation on arbitrary small static networks: every received
    /// pair was generated, reception never exceeds the audience, and all
    /// overhead tags belong to the protocol's vocabulary.
    #[test]
    fn dco_run_conservation(n_nodes in 4u32..24, n_chunks in 1u32..12, seed: u64) {
        let cfg = DcoConfig::paper_default(n_nodes, n_chunks);
        let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), seed);
        for i in 0..n_nodes {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim.run_until(SimTime::from_secs(u64::from(n_chunks) + 40));
        let p = sim.protocol();
        prop_assert_eq!(
            p.obs.expected_pairs(),
            (n_nodes as usize - 1) * n_chunks as usize
        );
        prop_assert!(p.obs.received_pairs() <= p.obs.expected_pairs());
        // Static + no loss ⇒ everything arrives.
        prop_assert_eq!(p.obs.received_pairs(), p.obs.expected_pairs());
        for (tag, _) in sim.counters().tags() {
            prop_assert!(
                tag.starts_with("dco.") || tag.starts_with("chord."),
                "unknown overhead tag {}",
                tag
            );
        }
    }
}
