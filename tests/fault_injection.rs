//! Failure-injection integration tests: message loss, mid-transfer kills
//! and coordinator crashes under lookup load.

use dco::core::chunk::ChunkSeq;
use dco::core::proto::{DcoConfig, DcoProtocol, TierMode};
use dco::sim::prelude::*;

fn build(cfg: DcoConfig, net: NetConfig, seed: u64) -> Simulator<DcoProtocol> {
    let n = cfg.n_nodes;
    let mut sim = Simulator::new(DcoProtocol::new(cfg), net, seed);
    for i in 0..n {
        let caps = if i == 0 {
            NodeCaps::server_default()
        } else {
            NodeCaps::peer_default()
        };
        let id = sim.add_node(caps);
        sim.schedule_join(id, SimTime::ZERO);
    }
    sim
}

#[test]
fn dco_survives_control_message_loss() {
    // 5% of control messages vanish; the retry machinery (fetch ticks,
    // lookup timeouts, request timeouts) must still drive the stream home.
    let cfg = DcoConfig::paper_churn(24, 20);
    let mut net = NetConfig::paper_model();
    net.faults = FaultPlan::none();
    net.faults.control_loss = 0.05;
    let mut sim = build(cfg, net, 31);
    sim.run_until(SimTime::from_secs(150));
    let pct = sim
        .protocol()
        .obs
        .received_percentage(SimTime::from_secs(150));
    assert!(
        pct > 97.0,
        "lossy control plane broke the stream: {pct:.1}%"
    );
    assert!(sim.counters().dropped_fault() > 0, "faults must have fired");
}

#[test]
fn total_control_loss_stalls_without_panicking() {
    // Edge case: 100% control loss. No lookup, registration or request
    // ever arrives, so the swarm cannot spread chunks — but the engine
    // must keep retiring timers to the horizon instead of panicking or
    // spinning, and the loss must be visible in the fault counters.
    let cfg = DcoConfig::paper_churn(16, 10);
    let mut net = NetConfig::paper_model();
    net.faults = FaultPlan::none();
    net.faults.control_loss = 1.0;
    let mut sim = build(cfg, net, 43);
    sim.run_until(SimTime::from_secs(120));
    let pct = sim
        .protocol()
        .obs
        .received_percentage(SimTime::from_secs(120));
    assert!(
        pct < 50.0,
        "with zero control delivery the stream cannot mostly spread: {pct:.1}%"
    );
    assert!(
        sim.counters().dropped_fault() > 0,
        "every control send must count as a fault drop"
    );
    // The run went the whole distance — the stall did not wedge the clock.
    assert_eq!(sim.now(), SimTime::from_secs(120));
}

#[test]
fn dco_survives_data_loss_too() {
    let cfg = DcoConfig::paper_churn(20, 15);
    let mut net = NetConfig::paper_model();
    net.faults = FaultPlan::none();
    net.faults.data_loss = 0.05;
    let mut sim = build(cfg, net, 33);
    sim.run_until(SimTime::from_secs(150));
    let pct = sim
        .protocol()
        .obs
        .received_percentage(SimTime::from_secs(150));
    assert!(pct > 97.0, "lossy data plane broke the stream: {pct:.1}%");
}

#[test]
fn killing_a_node_mid_transfer_only_costs_a_retry() {
    let cfg = DcoConfig::paper_churn(16, 20);
    let mut sim = build(cfg, NetConfig::paper_model(), 35);
    // Kill a peer at an instant where transfers are guaranteed in flight.
    sim.run_until(SimTime::from_millis(5_400));
    sim.schedule_leave(NodeId(7), SimTime::from_millis(5_450), false);
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    for seq in 0..20u32 {
        for node in 1..16u32 {
            if node == 7 {
                continue;
            }
            if p.obs.is_expected(seq, NodeId(node)) {
                assert!(
                    p.obs.received_at(seq, NodeId(node)).is_some(),
                    "N{node} missing chunk {seq} after mid-transfer kill"
                );
            }
        }
    }
}

#[test]
fn coordinator_crash_under_lookup_storm_reroutes() {
    // Find which node owns the most chunk keys, crash it right as the
    // stream gets busy, and require full delivery for the survivors.
    let cfg = DcoConfig::paper_churn(24, 24);
    let mut sim = build(cfg.clone(), NetConfig::paper_model(), 37);
    sim.run_until(SimTime::from_secs(6));
    // The busiest coordinator so far:
    let busiest = {
        let p = sim.protocol();
        (1..24u32)
            .max_by_key(|&i| p.index_count(NodeId(i)))
            .unwrap()
    };
    let busiest = NodeId(busiest);
    sim.schedule_leave(busiest, SimTime::from_millis(6_100), false);
    sim.run_until(SimTime::from_secs(150));
    let p = sim.protocol();
    let mut missing = 0;
    for seq in 0..24u32 {
        for node in 1..24u32 {
            if NodeId(node) == busiest {
                continue;
            }
            if p.obs.is_expected(seq, NodeId(node))
                && p.obs.received_at(seq, NodeId(node)).is_none()
            {
                missing += 1;
            }
        }
    }
    assert_eq!(
        missing, 0,
        "survivors missing {missing} pairs after coordinator crash"
    );
}

#[test]
fn coordinator_crash_mid_promotion_leaves_ring_healable() {
    // Edge case for the hierarchical tier (§III): crash a coordinator
    // right after a promotion check fires, while membership is in flux.
    // Chord stabilization must absorb both the promotion and the crash,
    // and the surviving audience must still receive the whole stream.
    let mut cfg = DcoConfig::paper_churn(20, 20);
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.6,
        overload_lookups: 10, // low bar: promotions actually trigger
        check_every: SimDuration::from_secs(5),
    };
    let mut sim = build(cfg, NetConfig::paper_model(), 45);
    // First promotion check fires at t = 5 s; kill the busiest ring
    // member 100 ms later, mid-handoff.
    sim.run_until(SimTime::from_millis(5_050));
    let busiest = {
        let p = sim.protocol();
        (1..20u32)
            .max_by_key(|&i| p.index_count(NodeId(i)))
            .unwrap()
    };
    let busiest = NodeId(busiest);
    sim.schedule_leave(busiest, SimTime::from_millis(5_100), false);
    sim.run_until(SimTime::from_secs(150));
    let p = sim.protocol();
    let mut missing = 0;
    for seq in 0..20u32 {
        for node in 1..20u32 {
            if NodeId(node) == busiest {
                continue;
            }
            if p.obs.is_expected(seq, NodeId(node))
                && p.obs.received_at(seq, NodeId(node)).is_none()
            {
                missing += 1;
            }
        }
    }
    assert_eq!(
        missing, 0,
        "survivors missing {missing} pairs after mid-promotion coordinator crash"
    );
}

#[test]
fn severed_link_heals_when_restored() {
    let cfg = DcoConfig::paper_churn(12, 10);
    let mut sim = build(cfg, NetConfig::paper_model(), 39);
    // Partition node 3 from the server for the first half of the stream.
    sim.faults_mut().cut_pair(NodeId(3), NodeId(0));
    sim.run_until(SimTime::from_secs(15));
    sim.faults_mut().heal_link(NodeId(3), NodeId(0));
    sim.faults_mut().heal_link(NodeId(0), NodeId(3));
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    // Node 3 still gets the whole stream through other providers and, after
    // healing, directly.
    for seq in 0..10u32 {
        assert!(
            p.obs.received_at(seq, NodeId(3)).is_some(),
            "N3 missing chunk {seq} after partition healed"
        );
    }
}

#[test]
fn rejoining_node_streams_from_its_new_join_point() {
    let cfg = DcoConfig::paper_churn(16, 30);
    let mut sim = build(cfg, NetConfig::paper_model(), 41);
    sim.schedule_leave(NodeId(5), SimTime::from_secs(5), false);
    sim.schedule_join(NodeId(5), SimTime::from_secs(15));
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    // Chunks from the rejoin point onward must arrive.
    for seq in 16..30u32 {
        assert!(
            p.obs.received_at(seq, NodeId(5)).is_some(),
            "rejoined N5 missing chunk {seq}"
        );
    }
    assert!(p.holds(NodeId(5), ChunkSeq(25)));
}
