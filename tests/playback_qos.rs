//! Playback-QoS integration: replaying real DCO runs through the player
//! model (the QoS the paper motivates — startup delay, freezes, continuity).

use dco::core::proto::{DcoConfig, DcoProtocol};
use dco::metrics::playback::{mean_continuity, replay, PlayerPolicy};
use dco::sim::prelude::*;

fn run_dco(n_nodes: u32, n_chunks: u32, kills: &[(u32, u64)], seed: u64) -> Simulator<DcoProtocol> {
    let cfg = if kills.is_empty() {
        DcoConfig::paper_default(n_nodes, n_chunks)
    } else {
        DcoConfig::paper_churn(n_nodes, n_chunks)
    };
    let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::paper_model(), seed);
    for i in 0..n_nodes {
        let caps = if i == 0 {
            NodeCaps::server_default()
        } else {
            NodeCaps::peer_default()
        };
        let id = sim.add_node(caps);
        sim.schedule_join(id, SimTime::ZERO);
    }
    for &(node, t) in kills {
        sim.schedule_leave(NodeId(node), SimTime::from_secs(t), false);
    }
    sim.run_until(SimTime::from_secs(u64::from(n_chunks) + 60));
    sim
}

#[test]
fn calm_network_plays_smoothly() {
    let sim = run_dco(24, 20, &[], 5);
    let obs = &sim.protocol().obs;
    let policy = PlayerPolicy::default();
    let m = mean_continuity(obs, 0, 19, policy);
    assert!(m > 0.9, "mean continuity only {m:.3} in a calm network");
    // Every viewer actually played the whole stream.
    for node in 1..24u32 {
        let r = replay(obs, NodeId(node), 0, 19, policy).expect("started");
        assert_eq!(
            r.chunks_played, 20,
            "N{node} played {} chunks",
            r.chunks_played
        );
    }
}

#[test]
fn startup_delay_is_bounded_by_prefetch_dynamics() {
    let sim = run_dco(24, 20, &[], 9);
    let obs = &sim.protocol().obs;
    let policy = PlayerPolicy::default();
    for node in 1..24u32 {
        let r = replay(obs, NodeId(node), 0, 19, policy).expect("started");
        // 3 startup chunks exist by t = 2; lookups + transfers add a few
        // seconds. Anything beyond 30 s would mean the swarm starved.
        assert!(
            r.startup_delay < SimDuration::from_secs(30),
            "N{node} startup {:?}",
            r.startup_delay
        );
    }
}

#[test]
fn a_kill_shows_up_as_stalls_not_permanent_freeze() {
    let sim = run_dco(20, 30, &[(5, 8), (11, 12)], 13);
    let obs = &sim.protocol().obs;
    let policy = PlayerPolicy::default();
    let mut total_played = 0u32;
    for node in 1..20u32 {
        if node == 5 || node == 11 {
            continue;
        }
        if let Some(r) = replay(obs, NodeId(node), 0, 29, policy) {
            total_played += r.chunks_played;
            assert!(
                r.continuity > 0.5,
                "N{node} mostly frozen: continuity {:.2}",
                r.continuity
            );
        }
    }
    assert!(
        total_played >= 17 * 30 * 9 / 10,
        "survivors played {total_played} of {}",
        17 * 30
    );
}
