//! Property tests pinning the pooled routing-state layout against the
//! retained reference models, plus churn edge cases on the flat layout.
//!
//! The flat churn path keeps every node's successor list and finger table
//! in [`dco_dht::pool`]'s struct-of-arrays pools; [`SuccessorList`] and
//! [`FingerTable`] are retained as executable specifications. These tests
//! drive both layouts through identical operation sequences (across many
//! interleaved owners, so pool segment arithmetic is exercised) and demand
//! identical observable state. Driven by the in-tree `dco-testkit`
//! (deterministic seeds, `DCO_TESTKIT_REPLAY` to reproduce a failure).
//!
//! The scenario tests at the bottom cover the churn edge cases that bit
//! the pooled layout hardest during bring-up: slot reuse on rejoin (stale
//! books must never leak across tenancies), mass simultaneous departure,
//! and a departed node rejoining while peers still hold tombstones and
//! pending-probe entries for its previous life.

use std::collections::BTreeSet;

use dco_dht::chord::{ChordConfig, ChordNet, Outbox, RouteDecision};
use dco_dht::finger::FingerTable;
use dco_dht::hash::hash_node;
use dco_dht::id::{ChordId, Peer};
use dco_dht::pool::{FingerPool, SuccessorPool};
use dco_dht::ring::OracleRing;
use dco_dht::successors::SuccessorList;
use dco_sim::node::NodeId;
use dco_testkit::{check, tk_assert, tk_assert_eq, Gen};

// ---------------------------------------------------------------------
// Pool vs retained reference model
// ---------------------------------------------------------------------

/// A random peer with a small node-id space so removals actually hit.
fn gen_peer(g: &mut Gen) -> Peer {
    Peer::new(ChordId(g.any_u64()), NodeId(g.usize_in(0, 24) as u32))
}

/// Arbitrary interleaved offer/remove sequences on [`SuccessorPool`]
/// produce exactly the retained [`SuccessorList`] per owner: same order,
/// same first, same membership, same capacity behaviour.
#[test]
fn successor_pool_matches_retained_list() {
    check("successor_pool_matches_retained_list", 128, |g| {
        let owners = g.usize_in(1, 5);
        let cap = g.usize_in(1, 9);
        let me_ids: Vec<ChordId> = (0..owners).map(|_| ChordId(g.any_u64())).collect();
        let mut pool = SuccessorPool::new(owners, cap);
        let mut refs: Vec<SuccessorList> = me_ids
            .iter()
            .map(|&me| SuccessorList::new(me, cap))
            .collect();
        for _ in 0..g.usize_in(1, 120) {
            let o = g.usize_in(0, owners);
            if g.usize_in(0, 4) == 0 {
                let node = NodeId(g.usize_in(0, 24) as u32);
                tk_assert_eq!(
                    pool.remove_node(o, node),
                    refs[o].remove_node(node),
                    "remove_node return"
                );
            } else {
                let p = gen_peer(g);
                tk_assert_eq!(
                    pool.offer(o, me_ids[o], p),
                    refs[o].offer(p),
                    "offer return for {p:?}"
                );
            }
            for (o, r) in refs.iter().enumerate() {
                let got: Vec<Peer> = pool.iter(o).collect();
                let want: Vec<Peer> = r.iter().collect();
                tk_assert_eq!(got, want, "owner {o} diverged");
                tk_assert_eq!(pool.first(o), r.first());
                tk_assert_eq!(pool.len(o), r.len());
            }
        }
        Ok(())
    });
}

/// Arbitrary set/clear/offer/remove sequences on [`FingerPool`] produce
/// exactly the retained [`FingerTable`] per owner, including the derived
/// queries (`closest_preceding`, `distinct_peers`, `populated`).
#[test]
fn finger_pool_matches_retained_table() {
    check("finger_pool_matches_retained_table", 96, |g| {
        let owners = g.usize_in(1, 4);
        let me_ids: Vec<ChordId> = (0..owners).map(|_| ChordId(g.any_u64())).collect();
        let mut pool = FingerPool::new(owners);
        let mut refs: Vec<FingerTable> = me_ids.iter().map(|&me| FingerTable::new(me)).collect();
        for _ in 0..g.usize_in(1, 160) {
            let o = g.usize_in(0, owners);
            match g.usize_in(0, 4) {
                0 => {
                    let k = g.usize_in(0, 64) as u32;
                    let p = gen_peer(g);
                    pool.set(o, k, p);
                    refs[o].set(k, p);
                }
                1 => {
                    let k = g.usize_in(0, 64) as u32;
                    pool.clear(o, k);
                    refs[o].clear(k);
                }
                2 => {
                    let node = NodeId(g.usize_in(0, 24) as u32);
                    tk_assert_eq!(
                        pool.remove_node(o, node),
                        refs[o].remove_node(node),
                        "remove_node count"
                    );
                }
                _ => {
                    let p = gen_peer(g);
                    pool.offer(o, me_ids[o], p);
                    refs[o].offer(p);
                }
            }
            let key = ChordId(g.any_u64());
            for (o, (r, &me)) in refs.iter().zip(me_ids.iter()).enumerate() {
                for k in 0..64u32 {
                    tk_assert_eq!(pool.get(o, k), r.get(k), "finger {k} of owner {o}");
                }
                tk_assert_eq!(pool.populated(o), r.populated());
                tk_assert_eq!(
                    pool.closest_preceding(o, me, key),
                    r.closest_preceding(key),
                    "closest_preceding owner {o}"
                );
                tk_assert_eq!(pool.distinct_peers(o), r.distinct_peers());
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Churn edge cases on the flat layout
// ---------------------------------------------------------------------

/// Delivers all outstanding sends synchronously until quiescence.
fn pump(net: &mut ChordNet, out: &mut Outbox) {
    while !out.sends.is_empty() {
        let sends = std::mem::take(&mut out.sends);
        for s in sends {
            net.handle(s.to, s.from, s.msg, out);
        }
    }
    out.events.clear();
}

fn converge(net: &mut ChordNet, nodes: &[NodeId], bootstrap: NodeId, rounds: usize) {
    let mut out = Outbox::new();
    for _ in 0..rounds {
        for &n in nodes {
            if !net.state(n).map(|s| s.is_joined()).unwrap_or(true) {
                net.retry_join(n, bootstrap, &mut out);
            }
            net.tick_stabilize(n, &mut out);
            net.tick_fix_fingers(n, &mut out);
        }
        pump(net, &mut out);
    }
}

/// Walks greedy routing from `start`; returns the delivering node.
fn route(net: &ChordNet, start: NodeId, key: ChordId) -> Option<NodeId> {
    let mut at = start;
    let mut hops = 0;
    loop {
        match net.route_next(at, key)? {
            RouteDecision::Deliver => return Some(at),
            RouteDecision::DeliverAt(p) => return Some(p.node),
            RouteDecision::Forward(p) => {
                at = p.node;
                hops += 1;
                if hops > 128 {
                    return None;
                }
            }
        }
    }
}

fn gen_ring(g: &mut Gen, lo: usize, hi: usize) -> Vec<Peer> {
    let mut ids = BTreeSet::new();
    let want = g.usize_in(lo, hi);
    while ids.len() < want {
        ids.insert(g.any_u64());
    }
    ids.iter()
        .enumerate()
        .map(|(i, &id)| Peer::new(ChordId(id), NodeId(i as u32)))
        .collect()
}

/// Mass simultaneous departure: more than half of one node's successor
/// list (its "clients" in coordinator terms) vanishes in the same
/// instant. The survivor's pooled books must flush every corpse and
/// routing must reconverge to the survivor oracle.
#[test]
fn mass_departure_flushes_pooled_books() {
    check("mass_departure_flushes_pooled_books", 32, |g| {
        let peers = gen_ring(g, 10, 24);
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let observer = peers[g.usize_in(0, peers.len())];
        // Kill >50% of the observer's successor list at once.
        let succs: Vec<NodeId> = net
            .state(observer.node)
            .unwrap()
            .successor_list()
            .iter()
            .map(|p| p.node)
            .collect();
        let kill: Vec<NodeId> = succs.iter().copied().take(succs.len() / 2 + 1).collect();
        tk_assert!(kill.len() * 2 > succs.len(), "must kill a majority");
        for &k in &kill {
            net.fail(k);
        }
        let alive: Vec<Peer> = peers
            .iter()
            .copied()
            .filter(|p| !kill.contains(&p.node))
            .collect();
        let alive_nodes: Vec<NodeId> = alive.iter().map(|p| p.node).collect();
        converge(&mut net, &alive_nodes, alive_nodes[0], 16);
        // Every corpse is gone from the observer's pooled successor list.
        let st = net.state(observer.node).unwrap();
        for p in st.successor_list() {
            tk_assert!(!kill.contains(&p.node), "corpse {p:?} still listed");
        }
        for p in st.fingers().distinct_peers() {
            tk_assert!(!kill.contains(&p.node), "corpse {p:?} still a finger");
        }
        // Routing reconverged to the survivor oracle.
        let oracle = OracleRing::from_members(alive.iter().copied());
        let key = ChordId(g.any_u64());
        let want = oracle.owner(key).unwrap().node;
        let got = route(&net, observer.node, key);
        tk_assert_eq!(got, Some(want), "key {key:?}");
        Ok(())
    });
}

/// Departure mid-join ("mid-promotion" in DCO terms: a client invited
/// into the ring dies between starting and completing its Chord join).
/// The half-joined tenant's books must not wedge the ring, and the slot
/// must be cleanly reusable by the next tenancy.
#[test]
fn departure_mid_join_leaves_no_stale_books() {
    check("departure_mid_join_leaves_no_stale_books", 32, |g| {
        let peers = gen_ring(g, 4, 12);
        let mut net = ChordNet::new(peers.len() + 1, ChordConfig::default());
        let mut out = Outbox::new();
        net.bootstrap(peers[0]);
        let mut members = vec![peers[0].node];
        for &p in &peers[1..] {
            net.join(p, peers[0].node, &mut out);
            pump(&mut net, &mut out);
            members.push(p.node);
        }
        converge(&mut net, &members, peers[0].node, 6);
        // The "promoted client" starts its join but dies before any reply
        // is delivered — its FindSucc is in flight when it fails.
        let joiner = Peer::new(ChordId(g.any_u64()), NodeId(peers.len() as u32));
        net.join(joiner, peers[0].node, &mut out);
        net.fail(joiner.node);
        pump(&mut net, &mut out); // answers arrive at a dead slot: dropped
        tk_assert!(net.state(joiner.node).is_none(), "tenancy ended");
        converge(&mut net, &members, peers[0].node, 8);
        // Ring is intact and the slot is reusable: a second tenancy under
        // the same NodeId joins normally.
        let rejoin = Peer::new(ChordId(g.any_u64()), joiner.node);
        net.join(rejoin, peers[0].node, &mut out);
        pump(&mut net, &mut out);
        let mut all = members.clone();
        all.push(rejoin.node);
        converge(&mut net, &all, peers[0].node, 10);
        tk_assert!(
            net.state(rejoin.node)
                .map(|s| s.is_joined())
                .unwrap_or(false),
            "second tenancy failed to join"
        );
        // The reused slot's books describe the *new* identity: its
        // successor matches the oracle over members ∪ {rejoin}.
        let mut final_peers: Vec<Peer> = peers.clone();
        final_peers.push(rejoin);
        let oracle = OracleRing::from_members(final_peers.iter().copied());
        tk_assert_eq!(
            net.state(rejoin.node).unwrap().successor().map(|q| q.node),
            oracle.successor(rejoin.id).map(|q| q.node),
            "rejoined successor"
        );
        Ok(())
    });
}

/// Rejoin colliding with a stale tenancy: a node fails abruptly, peers
/// accumulate tombstones and pending-probe entries for it, and then the
/// same address rejoins (fresh ring ID) while those entries are still
/// live. Direct contact must lift the suspicion and the rejoined node
/// must be routable again — the stale pending state from the previous
/// life must not ban the new one.
#[test]
fn rejoin_collides_with_stale_pending_entries() {
    check("rejoin_collides_with_stale_pending_entries", 32, |g| {
        let peers = gen_ring(g, 6, 14);
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let all: Vec<NodeId> = peers.iter().map(|p| p.node).collect();
        let victim = peers[g.usize_in(0, peers.len())];
        net.fail(victim.node);
        let survivors: Vec<NodeId> = all.iter().copied().filter(|&n| n != victim.node).collect();
        // Enough rounds that probes to the corpse go unanswered and at
        // least one peer declares it dead (suspicion threshold is 3).
        converge(&mut net, &survivors, survivors[0], 6);
        let suspected_by_someone = survivors.iter().any(|&n| {
            net.state(n)
                .map(|s| s.suspects(victim.node))
                .unwrap_or(false)
        });
        tk_assert!(suspected_by_someone, "no peer ever tombstoned the corpse");
        // Rejoin under the same address with a fresh ring ID while the
        // tombstones and probe-miss counters are still warm.
        let reborn = Peer::new(ChordId(hash_node(victim.node).0 ^ g.any_u64()), victim.node);
        let mut out = Outbox::new();
        net.join(reborn, survivors[0], &mut out);
        pump(&mut net, &mut out);
        let mut members = survivors.clone();
        members.push(reborn.node);
        // Peers that never hear from the reborn node directly hold a
        // tombstone until SUSPECT_TTL_TICKS (30) rounds after the *last*
        // death-gossip receipt — and the gossip wave itself can span
        // GOSSIP_HOPS generations of 10-tick recent-dead retention. The
        // documented rejoin-collision behaviour is that the address stays
        // banned at those peers until expiry, so convergence must be
        // driven well past it before the ring fully re-adopts the slot.
        converge(&mut net, &members, survivors[0], 90);
        tk_assert!(
            net.state(reborn.node)
                .map(|s| s.is_joined())
                .unwrap_or(false),
            "rejoin never completed"
        );
        // Direct contact lifted every suspicion that mattered: the node
        // is routable — its own key resolves to itself.
        let mut final_peers: Vec<Peer> = peers
            .iter()
            .copied()
            .filter(|p| p.node != victim.node)
            .collect();
        final_peers.push(reborn);
        let oracle = OracleRing::from_members(final_peers.iter().copied());
        let want = oracle.owner(reborn.id).unwrap().node;
        tk_assert_eq!(route(&net, survivors[0], reborn.id), Some(want));
        Ok(())
    });
}
