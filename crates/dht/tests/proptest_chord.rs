//! Property tests for the Chord DHT.
//!
//! The message-driven state machine is checked against the omniscient
//! [`OracleRing`] under arbitrary ID populations, key sets and churn
//! schedules. Driven by the in-tree `dco-testkit` (deterministic seeds,
//! `DCO_TESTKIT_REPLAY` to reproduce a failure).

use std::collections::BTreeSet;

use dco_dht::chord::{ChordConfig, ChordNet, Outbox, RouteDecision};
use dco_dht::id::{ChordId, Peer};
use dco_dht::ring::OracleRing;
use dco_dht::store::KeyStore;
use dco_sim::node::NodeId;
use dco_testkit::{check, tk_assert, tk_assert_eq, Gen};

/// Delivers all outstanding sends synchronously until quiescence.
fn pump(net: &mut ChordNet, out: &mut Outbox) {
    while !out.sends.is_empty() {
        let sends = std::mem::take(&mut out.sends);
        for s in sends {
            net.handle(s.to, s.from, s.msg, out);
        }
    }
    out.events.clear();
}

fn converge(net: &mut ChordNet, nodes: &[NodeId], bootstrap: NodeId, rounds: usize) {
    let mut out = Outbox::new();
    for _ in 0..rounds {
        for &n in nodes {
            if !net.state(n).map(|s| s.is_joined()).unwrap_or(true) {
                net.retry_join(n, bootstrap, &mut out);
            }
            net.tick_stabilize(n, &mut out);
            net.tick_fix_fingers(n, &mut out);
        }
        pump(net, &mut out);
    }
}

/// Walks greedy routing from `start`; returns the delivering node.
fn route(net: &ChordNet, start: NodeId, key: ChordId) -> Option<(NodeId, usize)> {
    let mut at = start;
    let mut hops = 0;
    loop {
        match net.route_next(at, key)? {
            RouteDecision::Deliver => return Some((at, hops)),
            RouteDecision::DeliverAt(p) => return Some((p.node, hops + 1)),
            RouteDecision::Forward(p) => {
                at = p.node;
                hops += 1;
                if hops > 128 {
                    return None;
                }
            }
        }
    }
}

/// `lo..hi` distinct raw u64 ids, as ring peers.
fn gen_peers(g: &mut Gen, lo: usize, hi: usize) -> Vec<Peer> {
    let mut ids = BTreeSet::new();
    let want = g.usize_in(lo, hi);
    while ids.len() < want {
        ids.insert(g.any_u64());
    }
    ids.iter()
        .enumerate()
        .map(|(i, &id)| Peer::new(ChordId(id), NodeId(i as u32)))
        .collect()
}

/// Interval-membership algebra: for distinct a, b, every x on the ring
/// is in exactly one of (a, b] and (b, a].
#[test]
fn half_open_intervals_partition_the_ring() {
    check("half_open_intervals_partition_the_ring", 256, |g| {
        let (a, b, x) = (g.any_u64(), g.any_u64(), g.any_u64());
        if a == b {
            return Ok(());
        }
        let (a, b, x) = (ChordId(a), ChordId(b), ChordId(x));
        let in_ab = x.in_open_closed(a, b);
        let in_ba = x.in_open_closed(b, a);
        tk_assert!(
            in_ab ^ in_ba,
            "x must be in exactly one half: {in_ab} {in_ba}"
        );
        Ok(())
    });
}

/// distance(a, b) + distance(b, a) wraps to 0 for a != b.
#[test]
fn distances_are_complementary() {
    check("distances_are_complementary", 256, |g| {
        let (a, b) = (ChordId(g.any_u64()), ChordId(g.any_u64()));
        let sum = a.distance_to(b).wrapping_add(b.distance_to(a));
        tk_assert_eq!(sum, 0u64);
        Ok(())
    });
}

/// On a statically built ring, greedy routing from any member delivers
/// every key to the oracle owner within O(log n) hops.
#[test]
fn static_ring_routes_every_key_to_oracle_owner() {
    check("static_ring_routes_every_key_to_oracle_owner", 64, |g| {
        let peers = gen_peers(g, 2, 40);
        let keys: Vec<u64> = g.vec_of(1, 20, |g| g.any_u64());
        let net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = OracleRing::from_members(peers.iter().copied());
        let start = peers[g.usize_in(0, peers.len())].node;
        let n = peers.len() as f64;
        let hop_budget = (2.0 * n.log2().ceil() + 4.0) as usize;
        for k in keys {
            let key = ChordId(k);
            let want = oracle.owner(key).unwrap().node;
            let (got, hops) = route(&net, start, key).expect("no loop");
            tk_assert_eq!(got, want, "key {key:?}");
            tk_assert!(hops <= hop_budget, "{hops} hops > budget {hop_budget}");
        }
        Ok(())
    });
}

/// Sequential joins through a single bootstrap converge to the oracle
/// ring (successor and predecessor pointers all correct).
#[test]
fn dynamic_joins_converge_to_oracle() {
    check("dynamic_joins_converge_to_oracle", 48, |g| {
        let peers = gen_peers(g, 2, 16);
        let mut net = ChordNet::new(peers.len(), ChordConfig::default());
        let mut out = Outbox::new();
        net.bootstrap(peers[0]);
        let mut members = vec![peers[0].node];
        for &p in &peers[1..] {
            net.join(p, peers[0].node, &mut out);
            pump(&mut net, &mut out);
            members.push(p.node);
            converge(&mut net, &members, peers[0].node, 2);
        }
        converge(&mut net, &members, peers[0].node, 6);
        let oracle = OracleRing::from_members(peers.iter().copied());
        for &p in &peers {
            let st = net.state(p.node).unwrap();
            tk_assert!(st.is_joined());
            tk_assert_eq!(
                st.successor().map(|q| q.node),
                oracle.successor(p.id).map(|q| q.node),
                "successor of {p:?}"
            );
            tk_assert_eq!(
                st.predecessor().map(|q| q.node),
                oracle.predecessor(p.id).map(|q| q.node),
                "predecessor of {p:?}"
            );
        }
        Ok(())
    });
}

/// After arbitrary failures (up to a third of the ring), stabilization
/// repairs routing: every key reaches the oracle owner of the survivors.
#[test]
fn failures_heal_and_routing_stays_correct() {
    check("failures_heal_and_routing_stays_correct", 48, |g| {
        let peers = gen_peers(g, 6, 24);
        let kill_start = g.usize_in(0, peers.len());
        let keys: Vec<u64> = g.vec_of(1, 12, |g| g.any_u64());
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let kill_count = peers.len() / 3;
        let killed: Vec<NodeId> = (0..kill_count)
            .map(|i| peers[(kill_start + 2 * i) % peers.len()].node)
            .collect();
        for &k in &killed {
            net.fail(k);
        }
        let alive: Vec<Peer> = peers
            .iter()
            .copied()
            .filter(|p| !killed.contains(&p.node))
            .collect();
        let alive_nodes: Vec<NodeId> = alive.iter().map(|p| p.node).collect();
        converge(&mut net, &alive_nodes, alive_nodes[0], 12);
        let oracle = OracleRing::from_members(alive.iter().copied());
        for k in keys {
            let key = ChordId(k);
            let want = oracle.owner(key).unwrap().node;
            let (got, _) = route(&net, alive_nodes[0], key).expect("routable");
            tk_assert_eq!(got, want, "key {key:?}");
        }
        Ok(())
    });
}

/// KeyStore range extraction is a partition: extracting (a, b] and then
/// (b, a] empties the store, with no key in both parts.
#[test]
fn keystore_range_extraction_partitions() {
    check("keystore_range_extraction_partitions", 128, |g| {
        let keys: BTreeSet<u64> = g.vec_of(0, 40, |g| g.any_u64()).into_iter().collect();
        let (a, b) = (g.any_u64(), g.any_u64());
        if a == b {
            return Ok(());
        }
        let mut store = KeyStore::new();
        for &k in &keys {
            store.insert(ChordId(k), k);
        }
        let part1 = store.extract_range(ChordId(a), ChordId(b));
        let part2 = store.extract_range(ChordId(b), ChordId(a));
        tk_assert!(store.is_empty());
        tk_assert_eq!(part1.len() + part2.len(), keys.len());
        for (k, _) in &part1 {
            tk_assert!(!part2.iter().any(|(k2, _)| k2 == k));
        }
        Ok(())
    });
}

/// The oracle's owner is consistent with ownership arcs: owner(key) is
/// the unique member whose (pred, me] arc contains the key.
#[test]
fn oracle_owner_matches_arc_membership() {
    check("oracle_owner_matches_arc_membership", 128, |g| {
        let peers = gen_peers(g, 1, 32);
        let key = ChordId(g.any_u64());
        let oracle = OracleRing::from_members(peers.iter().copied());
        let owner = oracle.owner(key).unwrap();
        if peers.len() == 1 {
            tk_assert_eq!(owner.node, peers[0].node);
        } else {
            let pred = oracle.predecessor(owner.id).unwrap();
            tk_assert!(
                key.in_open_closed(pred.id, owner.id),
                "key {key:?} not in ({:?}, {:?}]",
                pred.id,
                owner.id
            );
        }
        Ok(())
    });
}
