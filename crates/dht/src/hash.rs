//! Consistent hashing onto the Chord ring.
//!
//! The paper assigns "each node and file … a unique ID which is the
//! consistent hash value of its IP address or file name". We use FNV-1a
//! (64-bit) followed by a SplitMix64 finalizer: FNV gives a stable,
//! dependency-free string hash, and the finalizer scrubs FNV's weak low bits
//! so IDs spread uniformly around the ring — the property consistent hashing
//! needs for its `log n` load-imbalance bound.

use dco_sim::node::NodeId;
use dco_sim::rng::splitmix64;

use crate::id::ChordId;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes (no finalizer).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes arbitrary bytes to a ring position.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> ChordId {
    ChordId(splitmix64(fnv1a(bytes)))
}

/// Hashes a textual name (e.g. a chunk name like `CNN0240`) to a ring
/// position.
#[inline]
pub fn hash_name(name: &str) -> ChordId {
    hash_bytes(name.as_bytes())
}

/// Hashes a simulator node id to a ring position (stand-in for hashing the
/// node's IP address).
#[inline]
pub fn hash_node(node: NodeId) -> ChordId {
    ChordId(splitmix64(
        (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6e6f_6465, // "node"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_name("CNN0240"), hash_name("CNN0240"));
        assert_eq!(hash_node(NodeId(7)), hash_node(NodeId(7)));
    }

    #[test]
    fn distinct_inputs_distinct_ids() {
        assert_ne!(hash_name("CNN0240"), hash_name("CNN0241"));
        assert_ne!(hash_node(NodeId(1)), hash_node(NodeId(2)));
        assert_ne!(hash_name("abc"), hash_bytes(b"abd"));
    }

    #[test]
    fn sequential_chunk_names_spread_uniformly() {
        // Chunk names are near-sequential strings; the finalized hash must
        // still spread them across the ring. Check quadrant occupancy.
        let mut quadrant = [0usize; 4];
        for i in 0..4000 {
            let id = hash_name(&format!("CNN{i:04}"));
            quadrant[(id.0 >> 62) as usize] += 1;
        }
        for &q in &quadrant {
            assert!((800..1200).contains(&q), "skewed quadrants: {quadrant:?}");
        }
    }

    #[test]
    fn sequential_node_ids_spread_uniformly() {
        let mut quadrant = [0usize; 4];
        for i in 0..4000u32 {
            let id = hash_node(NodeId(i));
            quadrant[(id.0 >> 62) as usize] += 1;
        }
        for &q in &quadrant {
            assert!((800..1200).contains(&q), "skewed quadrants: {quadrant:?}");
        }
    }

    #[test]
    fn no_collisions_among_realistic_populations() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u32 {
            assert!(
                seen.insert(hash_node(NodeId(i))),
                "node hash collision at {i}"
            );
        }
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(
                seen.insert(hash_name(&format!("NBC2009010101{i:04}"))),
                "chunk hash collision at {i}"
            );
        }
    }
}
