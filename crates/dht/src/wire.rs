//! Wire codec for Chord types (cross-shard transport).
//!
//! Sharded runs move [`ChordMsg`] values between worker processes inside
//! `DcoMsg` frames; these impls extend the `dco-sim` codec to the DHT layer.
//! Format: fields in declaration order, one tag byte per enum variant.

use dco_sim::wire::{WireCodec, WireError, WireReader};

use crate::chord::{ChordMsg, RouteToken};
use crate::id::{ChordId, Peer};

impl WireCodec for ChordId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChordId(r.get()?))
    }
}

impl WireCodec for Peer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.node.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Peer {
            id: r.get()?,
            node: r.get()?,
        })
    }
}

impl WireCodec for RouteToken {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RouteToken::Join => out.push(0),
            RouteToken::Finger(k) => {
                out.push(1);
                k.encode(out);
            }
            RouteToken::App(cookie) => {
                out.push(2);
                cookie.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get::<u8>()? {
            0 => Ok(RouteToken::Join),
            1 => Ok(RouteToken::Finger(r.get()?)),
            2 => Ok(RouteToken::App(r.get()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireCodec for ChordMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChordMsg::FindSucc {
                key,
                origin,
                token,
                ttl,
            } => {
                out.push(0);
                key.encode(out);
                origin.encode(out);
                token.encode(out);
                ttl.encode(out);
            }
            ChordMsg::FoundSucc { key, succ, token } => {
                out.push(1);
                key.encode(out);
                succ.encode(out);
                token.encode(out);
            }
            ChordMsg::GetPred { from } => {
                out.push(2);
                from.encode(out);
            }
            ChordMsg::PredReply { pred, succs, dead } => {
                out.push(3);
                pred.encode(out);
                succs.encode(out);
                dead.encode(out);
            }
            ChordMsg::Notify { peer } => {
                out.push(4);
                peer.encode(out);
            }
            ChordMsg::LeaveToPred { leaving, new_succ } => {
                out.push(5);
                leaving.encode(out);
                new_succ.encode(out);
            }
            ChordMsg::LeaveToSucc { leaving, new_pred } => {
                out.push(6);
                leaving.encode(out);
                new_pred.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get::<u8>()? {
            0 => Ok(ChordMsg::FindSucc {
                key: r.get()?,
                origin: r.get()?,
                token: r.get()?,
                ttl: r.get()?,
            }),
            1 => Ok(ChordMsg::FoundSucc {
                key: r.get()?,
                succ: r.get()?,
                token: r.get()?,
            }),
            2 => Ok(ChordMsg::GetPred { from: r.get()? }),
            3 => Ok(ChordMsg::PredReply {
                pred: r.get()?,
                succs: r.get()?,
                dead: r.get()?,
            }),
            4 => Ok(ChordMsg::Notify { peer: r.get()? }),
            5 => Ok(ChordMsg::LeaveToPred {
                leaving: r.get()?,
                new_succ: r.get()?,
            }),
            6 => Ok(ChordMsg::LeaveToSucc {
                leaving: r.get()?,
                new_pred: r.get()?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_sim::node::NodeId;
    use dco_sim::wire::{decode_exact, encode_to_vec};

    fn peer(n: u32) -> Peer {
        Peer {
            id: ChordId(0x1234_5678_9ABC_DEF0u64.wrapping_mul(u64::from(n) + 1)),
            node: NodeId(n),
        }
    }

    /// `ChordMsg` has no `PartialEq`, so equality is checked through the
    /// codec itself: decode then re-encode must reproduce the bytes.
    fn round_trip(msg: &ChordMsg) {
        let bytes = encode_to_vec(msg);
        let back = decode_exact::<ChordMsg>(&bytes).unwrap();
        assert_eq!(encode_to_vec(&back), bytes, "{msg:?}");
    }

    fn samples() -> Vec<ChordMsg> {
        vec![
            ChordMsg::FindSucc {
                key: ChordId(42),
                origin: peer(7),
                token: RouteToken::Join,
                ttl: 64,
            },
            ChordMsg::FindSucc {
                key: ChordId(u64::MAX),
                origin: peer(0),
                token: RouteToken::Finger(13),
                ttl: 1,
            },
            ChordMsg::FoundSucc {
                key: ChordId(9),
                succ: peer(3),
                token: RouteToken::App(0xDEAD_BEEF),
            },
            ChordMsg::GetPred { from: peer(11) },
            ChordMsg::PredReply {
                pred: None,
                succs: vec![],
                dead: vec![],
            },
            ChordMsg::PredReply {
                pred: Some(peer(1)),
                succs: vec![peer(2), peer(3), peer(4)],
                dead: vec![(NodeId(5), 2), (NodeId(6), 0)],
            },
            ChordMsg::Notify { peer: peer(8) },
            ChordMsg::LeaveToPred {
                leaving: peer(9),
                new_succ: Some(peer(10)),
            },
            ChordMsg::LeaveToSucc {
                leaving: peer(9),
                new_pred: None,
            },
        ]
    }

    #[test]
    fn chord_messages_round_trip() {
        for msg in samples() {
            round_trip(&msg);
        }
    }

    #[test]
    fn route_tokens_round_trip() {
        for token in [
            RouteToken::Join,
            RouteToken::Finger(63),
            RouteToken::App(u64::MAX),
        ] {
            let bytes = encode_to_vec(&token);
            let back = decode_exact::<RouteToken>(&bytes).unwrap();
            assert_eq!(encode_to_vec(&back), bytes);
        }
    }

    #[test]
    fn truncated_chord_messages_are_rejected() {
        for msg in samples() {
            let bytes = encode_to_vec(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    decode_exact::<ChordMsg>(&bytes[..cut]).is_err(),
                    "cut at {cut} of {msg:?}"
                );
            }
        }
    }

    #[test]
    fn bad_variant_tags_are_rejected() {
        assert!(matches!(
            decode_exact::<ChordMsg>(&[200]),
            Err(WireError::BadTag(200))
        ));
        assert!(matches!(
            decode_exact::<RouteToken>(&[7]),
            Err(WireError::BadTag(7))
        ));
    }
}
