//! The successor list.
//!
//! Chord's resilience to churn comes from each node tracking not one
//! successor but the next `r` nodes clockwise. If the immediate successor
//! dies, the next list entry takes over; stabilization then repairs the rest.
//!
//! The list is kept **sorted by clockwise distance from the owner** and
//! deduplicated; the head is always the current working successor. The DCO
//! evaluation also reuses this list as the node's mesh-neighbor set ("we
//! regard the neighbors in a node's successor list in DCO as the node's
//! neighbors"), which is why the capacity is configurable up to the paper's
//! 64.

use dco_sim::node::NodeId;

use crate::id::{ChordId, Peer};

/// A bounded, sorted list of the nearest clockwise ring members.
#[derive(Clone, Debug)]
pub struct SuccessorList {
    me: ChordId,
    cap: usize,
    list: Vec<Peer>,
}

impl SuccessorList {
    /// An empty list owned by `me` holding at most `cap` entries.
    pub fn new(me: ChordId, cap: usize) -> Self {
        assert!(cap >= 1, "successor list needs capacity >= 1");
        SuccessorList {
            me,
            cap,
            list: Vec::with_capacity(cap),
        }
    }

    /// The owner's ring position.
    pub fn me(&self) -> ChordId {
        self.me
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no successors are known.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The working successor (nearest clockwise member), if any.
    pub fn first(&self) -> Option<Peer> {
        self.list.first().copied()
    }

    /// All entries, nearest first.
    pub fn iter(&self) -> impl Iterator<Item = Peer> + '_ {
        self.list.iter().copied()
    }

    /// Offers a candidate. It is inserted in distance order (ignoring the
    /// owner itself and duplicates); the list is truncated to capacity.
    /// Returns `true` if the candidate was retained.
    pub fn offer(&mut self, p: Peer) -> bool {
        if p.id == self.me {
            return false;
        }
        if self.list.iter().any(|q| q.node == p.node || q.id == p.id) {
            return false;
        }
        let d = self.me.distance_to(p.id);
        let pos = self.list.partition_point(|q| self.me.distance_to(q.id) < d);
        if pos >= self.cap {
            return false;
        }
        self.list.insert(pos, p);
        self.list.truncate(self.cap);
        true
    }

    /// Merges every peer of `other` (a neighbor's shared list) plus the
    /// neighbor itself.
    pub fn merge(&mut self, from: Peer, other: &[Peer]) {
        self.offer(from);
        for &p in other {
            self.offer(p);
        }
    }

    /// Drops a peer by simulator address (e.g. after it is declared dead).
    /// Returns `true` if an entry was removed.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        let before = self.list.len();
        self.list.retain(|p| p.node != node);
        self.list.len() != before
    }

    /// Removes and returns the working successor (promoting the next).
    pub fn pop_first(&mut self) -> Option<Peer> {
        if self.list.is_empty() {
            None
        } else {
            Some(self.list.remove(0))
        }
    }

    /// True if the list contains this simulator address.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.list.iter().any(|p| p.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, node: u32) -> Peer {
        Peer::new(ChordId(id), NodeId(node))
    }

    #[test]
    fn keeps_distance_order() {
        let mut s = SuccessorList::new(ChordId(100), 4);
        assert!(s.offer(peer(500, 5)));
        assert!(s.offer(peer(150, 1)));
        assert!(s.offer(peer(50, 9))); // wraps: farthest
        assert!(s.offer(peer(300, 3)));
        let ids: Vec<u64> = s.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![150, 300, 500, 50]);
        assert_eq!(s.first().unwrap().id, ChordId(150));
    }

    #[test]
    fn rejects_self_and_duplicates() {
        let mut s = SuccessorList::new(ChordId(100), 4);
        assert!(!s.offer(peer(100, 1)), "own id rejected");
        assert!(s.offer(peer(200, 2)));
        assert!(!s.offer(peer(200, 2)), "duplicate rejected");
        assert!(!s.offer(peer(999, 2)), "same node, different id rejected");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn truncates_to_capacity() {
        let mut s = SuccessorList::new(ChordId(0), 2);
        assert!(s.offer(peer(10, 1)));
        assert!(s.offer(peer(20, 2)));
        assert!(!s.offer(peer(30, 3)), "beyond capacity and farther");
        assert!(s.offer(peer(5, 4)), "nearer candidate displaces");
        let ids: Vec<u64> = s.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![5, 10]);
    }

    #[test]
    fn remove_and_promote() {
        let mut s = SuccessorList::new(ChordId(0), 3);
        s.offer(peer(10, 1));
        s.offer(peer(20, 2));
        assert!(s.remove_node(NodeId(1)));
        assert!(!s.remove_node(NodeId(1)));
        assert_eq!(s.first().unwrap().node, NodeId(2));
        assert_eq!(s.pop_first().unwrap().node, NodeId(2));
        assert!(s.pop_first().is_none());
    }

    #[test]
    fn merge_takes_best_of_both() {
        let mut s = SuccessorList::new(ChordId(0), 3);
        s.offer(peer(50, 5));
        s.merge(peer(10, 1), &[peer(20, 2), peer(60, 6), peer(5, 7)]);
        let ids: Vec<u64> = s.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![5, 10, 20]);
    }

    #[test]
    fn contains_node_query() {
        let mut s = SuccessorList::new(ChordId(0), 3);
        s.offer(peer(10, 1));
        assert!(s.contains_node(NodeId(1)));
        assert!(!s.contains_node(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SuccessorList::new(ChordId(0), 0);
    }
}
