//! An omniscient ring oracle.
//!
//! [`OracleRing`] is the ground truth for tests, the static builder for the
//! no-churn experiments (the paper's §IV setting has *all* nodes in the DHT
//! from the start), and the reference implementation that property tests
//! compare the message-driven Chord against.

use std::collections::BTreeMap;

use dco_sim::node::NodeId;

use crate::id::{ChordId, Peer};

/// A sorted view of all live ring members.
#[derive(Clone, Debug, Default)]
pub struct OracleRing {
    members: BTreeMap<ChordId, NodeId>,
}

impl OracleRing {
    /// An empty ring.
    pub fn new() -> Self {
        OracleRing::default()
    }

    /// Builds a ring from `(id, node)` pairs.
    pub fn from_members(members: impl IntoIterator<Item = Peer>) -> Self {
        let mut r = OracleRing::new();
        for p in members {
            r.insert(p);
        }
        r
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member; returns `false` if the ID was already present.
    pub fn insert(&mut self, p: Peer) -> bool {
        self.members.insert(p.id, p.node).is_none()
    }

    /// Removes a member by ID; returns `true` if it was present.
    pub fn remove(&mut self, id: ChordId) -> bool {
        self.members.remove(&id).is_some()
    }

    /// Removes a member by simulator address.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        let key = self
            .members
            .iter()
            .find(|(_, &n)| n == node)
            .map(|(&id, _)| id);
        match key {
            Some(id) => self.members.remove(&id).is_some(),
            None => false,
        }
    }

    /// True if the ID is a member.
    pub fn contains(&self, id: ChordId) -> bool {
        self.members.contains_key(&id)
    }

    /// The owner of `key`: the first member clockwise at or after `key`
    /// (wrapping). `None` on an empty ring.
    pub fn owner(&self, key: ChordId) -> Option<Peer> {
        self.members
            .range(key..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(&id, &node)| Peer::new(id, node))
    }

    /// The member strictly after `id` clockwise (wrapping).
    pub fn successor(&self, id: ChordId) -> Option<Peer> {
        self.members
            .range(ChordId(id.0.wrapping_add(1))..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(&i, &n)| Peer::new(i, n))
    }

    /// The member strictly before `id` counter-clockwise (wrapping).
    pub fn predecessor(&self, id: ChordId) -> Option<Peer> {
        self.members
            .range(..id)
            .next_back()
            .or_else(|| self.members.iter().next_back())
            .map(|(&i, &n)| Peer::new(i, n))
    }

    /// The `k` members strictly after `id` clockwise, in order (fewer if the
    /// ring is small; never includes `id` itself).
    pub fn successors(&self, id: ChordId, k: usize) -> Vec<Peer> {
        let mut out = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k.min(self.members.len()) {
            match self.successor(cur) {
                Some(p) if p.id != id => {
                    out.push(p);
                    cur = p.id;
                }
                _ => break,
            }
        }
        out
    }

    /// All members in ID order.
    pub fn iter(&self) -> impl Iterator<Item = Peer> + '_ {
        self.members.iter().map(|(&id, &n)| Peer::new(id, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, node: u32) -> Peer {
        Peer::new(ChordId(id), NodeId(node))
    }

    fn ring() -> OracleRing {
        OracleRing::from_members([peer(10, 1), peer(100, 2), peer(1000, 3)])
    }

    #[test]
    fn owner_is_first_at_or_after() {
        let r = ring();
        assert_eq!(r.owner(ChordId(10)).unwrap().node, NodeId(1), "exact hit");
        assert_eq!(r.owner(ChordId(11)).unwrap().node, NodeId(2));
        assert_eq!(r.owner(ChordId(100)).unwrap().node, NodeId(2));
        assert_eq!(r.owner(ChordId(999)).unwrap().node, NodeId(3));
        assert_eq!(r.owner(ChordId(1001)).unwrap().node, NodeId(1), "wraps");
        assert_eq!(r.owner(ChordId(0)).unwrap().node, NodeId(1));
    }

    #[test]
    fn successor_and_predecessor_wrap() {
        let r = ring();
        assert_eq!(r.successor(ChordId(10)).unwrap().id, ChordId(100));
        assert_eq!(r.successor(ChordId(1000)).unwrap().id, ChordId(10));
        assert_eq!(r.predecessor(ChordId(10)).unwrap().id, ChordId(1000));
        assert_eq!(r.predecessor(ChordId(1000)).unwrap().id, ChordId(100));
        // Non-member query points still work.
        assert_eq!(r.successor(ChordId(50)).unwrap().id, ChordId(100));
        assert_eq!(r.predecessor(ChordId(50)).unwrap().id, ChordId(10));
    }

    #[test]
    fn successors_list() {
        let r = ring();
        let s = r.successors(ChordId(10), 2);
        assert_eq!(
            s.iter().map(|p| p.id.0).collect::<Vec<_>>(),
            vec![100, 1000]
        );
        // Asking for more than the ring holds stops before self.
        let s = r.successors(ChordId(10), 10);
        assert_eq!(s.len(), 2, "never includes the queried id");
    }

    #[test]
    fn insert_remove() {
        let mut r = ring();
        assert!(!r.insert(peer(10, 9)), "duplicate id rejected");
        assert!(r.insert(peer(500, 4)));
        assert_eq!(r.len(), 4);
        assert!(r.remove(ChordId(500)));
        assert!(!r.remove(ChordId(500)));
        assert!(r.remove_node(NodeId(3)));
        assert!(!r.remove_node(NodeId(3)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(ChordId(10)));
        assert!(!r.contains(ChordId(1000)));
    }

    #[test]
    fn empty_and_singleton() {
        let mut r = OracleRing::new();
        assert!(r.is_empty());
        assert_eq!(r.owner(ChordId(5)), None);
        assert_eq!(r.successor(ChordId(5)), None);
        r.insert(peer(42, 7));
        assert_eq!(r.owner(ChordId(5)).unwrap().node, NodeId(7));
        assert_eq!(
            r.successor(ChordId(42)).unwrap().id,
            ChordId(42),
            "self-loop"
        );
        assert_eq!(r.predecessor(ChordId(42)).unwrap().id, ChordId(42));
        assert!(r.successors(ChordId(42), 3).is_empty());
    }
}
