//! Pooled (struct-of-arrays) successor lists and finger tables.
//!
//! Under churn every node's repair state is live at once; giving each node
//! its own `Vec<Peer>` successor list and `Vec<Option<Peer>>` finger table
//! (the [`crate::successors::SuccessorList`] / [`crate::finger::FingerTable`]
//! reference models) costs two heap allocations per node plus allocator
//! overhead — the dominant term of churn memory at N ≥ 50k. The pools here
//! pack the same state for *all* nodes into a handful of flat arrays
//! indexed by owner (the node's slot index), in the mold of
//! `dco_sim::slab::SlotTable`:
//!
//! * [`SuccessorPool`] — fixed-stride sorted `Peer` segments, identical
//!   ordering/dedup/truncation semantics to `SuccessorList`.
//! * [`FingerPool`] — 64 `Peer` slots per owner with a one-word presence
//!   bitmask, identical semantics to `FingerTable`.
//!
//! Both are deterministic by construction (contents depend only on the
//! operation sequence), and both are property-tested against the retained
//! reference models in `tests/proptest_chord.rs` — the flat layout must
//! not change a single decision, because the churn trace digests in
//! `BENCH_churn_scale.json` are gated bit-identical across the conversion.

use dco_sim::node::NodeId;

use crate::id::{ChordId, Peer, ID_BITS};

/// The all-zero filler for unused pool slots (never observable: presence
/// is tracked by per-owner lengths/masks).
fn blank() -> Peer {
    Peer::new(ChordId(0), NodeId(0))
}

/// A pool of per-owner successor lists: for each owner, up to `cap` peers
/// sorted by clockwise distance from that owner, deduplicated by node
/// *and* by ring id — the exact semantics of
/// [`crate::successors::SuccessorList`], flattened.
#[derive(Clone, Debug)]
pub struct SuccessorPool {
    cap: usize,
    peers: Vec<Peer>,
    lens: Vec<u32>,
}

impl SuccessorPool {
    /// A pool for `owners` owners, `cap` entries each (`cap >= 1`).
    pub fn new(owners: usize, cap: usize) -> Self {
        assert!(cap >= 1, "successor list needs capacity >= 1");
        SuccessorPool {
            cap,
            peers: vec![blank(); owners * cap],
            lens: vec![0; owners],
        }
    }

    /// Maximum entries per owner.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Grows the pool to at least `owners` owners (new owners start empty).
    pub fn grow_owners(&mut self, owners: usize) {
        if owners > self.lens.len() {
            self.peers.resize(owners * self.cap, blank());
            self.lens.resize(owners, 0);
        }
    }

    /// Entries held by `owner`.
    pub fn len(&self, owner: usize) -> usize {
        self.lens[owner] as usize
    }

    /// True if `owner` knows no successors.
    pub fn is_empty(&self, owner: usize) -> bool {
        self.lens[owner] == 0
    }

    /// Drops all of `owner`'s entries (rejoin under a reused slot).
    pub fn clear(&mut self, owner: usize) {
        self.lens[owner] = 0;
    }

    /// `owner`'s working successor (nearest clockwise member), if any.
    pub fn first(&self, owner: usize) -> Option<Peer> {
        if self.lens[owner] == 0 {
            None
        } else {
            Some(self.peers[owner * self.cap])
        }
    }

    /// `owner`'s entries, nearest first.
    pub fn iter(&self, owner: usize) -> impl Iterator<Item = Peer> + '_ {
        let base = owner * self.cap;
        self.peers[base..base + self.lens[owner] as usize]
            .iter()
            .copied()
    }

    /// Offers a candidate to `owner` (whose ring position is `me`). It is
    /// inserted in distance order — ignoring the owner itself and
    /// duplicates — and the list is truncated to capacity. Returns `true`
    /// if the candidate was retained.
    pub fn offer(&mut self, owner: usize, me: ChordId, p: Peer) -> bool {
        if p.id == me {
            return false;
        }
        let base = owner * self.cap;
        let len = self.lens[owner] as usize;
        let seg = &self.peers[base..base + len];
        if seg.iter().any(|q| q.node == p.node || q.id == p.id) {
            return false;
        }
        let d = me.distance_to(p.id);
        let pos = seg.partition_point(|q| me.distance_to(q.id) < d);
        if pos >= self.cap {
            return false;
        }
        // Shift the tail right one slot (dropping the last entry when the
        // segment is full — the Vec insert + truncate of the reference).
        let end = (len + 1).min(self.cap);
        self.peers
            .copy_within(base + pos..base + end - 1, base + pos + 1);
        self.peers[base + pos] = p;
        self.lens[owner] = end as u32;
        true
    }

    /// Drops `owner`'s entries for a peer by simulator address. Returns
    /// `true` if an entry was removed.
    pub fn remove_node(&mut self, owner: usize, node: NodeId) -> bool {
        let base = owner * self.cap;
        let len = self.lens[owner] as usize;
        let mut kept = 0;
        for i in 0..len {
            if self.peers[base + i].node != node {
                if kept != i {
                    self.peers[base + kept] = self.peers[base + i];
                }
                kept += 1;
            }
        }
        self.lens[owner] = kept as u32;
        kept != len
    }

    /// True if `owner`'s list contains this simulator address.
    pub fn contains_node(&self, owner: usize, node: NodeId) -> bool {
        self.iter(owner).any(|p| p.node == node)
    }
}

/// A pool of per-owner finger tables: 64 `Peer` slots each with a one-word
/// presence bitmask — the exact semantics of
/// [`crate::finger::FingerTable`], flattened.
#[derive(Clone, Debug)]
pub struct FingerPool {
    peers: Vec<Peer>,
    masks: Vec<u64>,
}

const STRIDE: usize = ID_BITS as usize;

impl FingerPool {
    /// A pool for `owners` owners.
    pub fn new(owners: usize) -> Self {
        FingerPool {
            peers: vec![blank(); owners * STRIDE],
            masks: vec![0; owners],
        }
    }

    /// Grows the pool to at least `owners` owners (new owners start empty).
    pub fn grow_owners(&mut self, owners: usize) {
        if owners > self.masks.len() {
            self.peers.resize(owners * STRIDE, blank());
            self.masks.resize(owners, 0);
        }
    }

    /// Drops all of `owner`'s fingers (rejoin under a reused slot).
    pub fn clear_owner(&mut self, owner: usize) {
        self.masks[owner] = 0;
    }

    /// Sets `owner`'s finger `k`.
    pub fn set(&mut self, owner: usize, k: u32, peer: Peer) {
        self.peers[owner * STRIDE + k as usize] = peer;
        self.masks[owner] |= 1 << k;
    }

    /// Clears `owner`'s finger `k`.
    pub fn clear(&mut self, owner: usize, k: u32) {
        self.masks[owner] &= !(1 << k);
    }

    /// `owner`'s finger `k`, if populated.
    pub fn get(&self, owner: usize, k: u32) -> Option<Peer> {
        if self.masks[owner] & (1 << k) != 0 {
            Some(self.peers[owner * STRIDE + k as usize])
        } else {
            None
        }
    }

    /// Number of `owner`'s populated fingers.
    pub fn populated(&self, owner: usize) -> usize {
        self.masks[owner].count_ones() as usize
    }

    /// Offers a peer to `owner` (ring position `me`) opportunistically: it
    /// becomes finger `k` whenever it lies in `[start(k), me)` and is
    /// closer to `start(k)` than the current entry.
    pub fn offer(&mut self, owner: usize, me: ChordId, p: Peer) {
        if p.id == me {
            return;
        }
        for k in 0..ID_BITS {
            let start = me.finger_start(k);
            if !p.id.in_closed_open(start, me) {
                continue;
            }
            match self.get(owner, k) {
                None => self.set(owner, k, p),
                Some(cur) => {
                    if start.distance_to(p.id) < start.distance_to(cur.id) {
                        self.set(owner, k, p);
                    }
                }
            }
        }
    }

    /// Drops every finger of `owner` pointing at `node`. Returns how many
    /// entries were cleared.
    pub fn remove_node(&mut self, owner: usize, node: NodeId) -> usize {
        let mut cleared = 0;
        let mut mask = self.masks[owner];
        while mask != 0 {
            let k = mask.trailing_zeros();
            mask &= mask - 1;
            if self.peers[owner * STRIDE + k as usize].node == node {
                self.masks[owner] &= !(1 << k);
                cleared += 1;
            }
        }
        cleared
    }

    /// `owner`'s populated finger whose ID most closely **precedes** `key`
    /// clockwise from `me` — the next hop of greedy routing. `None` if no
    /// finger lies strictly between `me` and `key`.
    pub fn closest_preceding(&self, owner: usize, me: ChordId, key: ChordId) -> Option<Peer> {
        let mut mask = self.masks[owner];
        while mask != 0 {
            // Highest populated finger first: the reference scans the
            // 64-entry table from the far end down.
            let k = 63 - mask.leading_zeros();
            mask &= !(1u64 << k);
            let f = self.peers[owner * STRIDE + k as usize];
            if f.id.in_open(me, key) {
                return Some(f);
            }
        }
        None
    }

    /// `owner`'s distinct populated fingers, deduplicated by node, in
    /// ascending-`k` first-seen order.
    pub fn distinct_peers(&self, owner: usize) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        let mut mask = self.masks[owner];
        while mask != 0 {
            let k = mask.trailing_zeros();
            mask &= mask - 1;
            let f = self.peers[owner * STRIDE + k as usize];
            if !out.iter().any(|p| p.node == f.node) {
                out.push(f);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, node: u32) -> Peer {
        Peer::new(ChordId(id), NodeId(node))
    }

    #[test]
    fn successor_pool_keeps_distance_order() {
        let mut s = SuccessorPool::new(2, 4);
        let me = ChordId(100);
        assert!(s.offer(1, me, peer(500, 5)));
        assert!(s.offer(1, me, peer(150, 1)));
        assert!(s.offer(1, me, peer(50, 9))); // wraps: farthest
        assert!(s.offer(1, me, peer(300, 3)));
        let ids: Vec<u64> = s.iter(1).map(|p| p.id.0).collect();
        assert_eq!(ids, vec![150, 300, 500, 50]);
        assert_eq!(s.first(1).unwrap().id, ChordId(150));
        assert!(s.is_empty(0), "owners are isolated");
    }

    #[test]
    fn successor_pool_rejects_self_and_duplicates() {
        let mut s = SuccessorPool::new(1, 4);
        let me = ChordId(100);
        assert!(!s.offer(0, me, peer(100, 1)), "own id rejected");
        assert!(s.offer(0, me, peer(200, 2)));
        assert!(!s.offer(0, me, peer(200, 2)), "duplicate rejected");
        assert!(!s.offer(0, me, peer(999, 2)), "same node, new id rejected");
        assert_eq!(s.len(0), 1);
    }

    #[test]
    fn successor_pool_truncates_to_capacity() {
        let mut s = SuccessorPool::new(1, 2);
        let me = ChordId(0);
        assert!(s.offer(0, me, peer(10, 1)));
        assert!(s.offer(0, me, peer(20, 2)));
        assert!(!s.offer(0, me, peer(30, 3)), "beyond capacity and farther");
        assert!(s.offer(0, me, peer(5, 4)), "nearer candidate displaces");
        let ids: Vec<u64> = s.iter(0).map(|p| p.id.0).collect();
        assert_eq!(ids, vec![5, 10]);
    }

    #[test]
    fn successor_pool_remove_and_grow() {
        let mut s = SuccessorPool::new(1, 3);
        let me = ChordId(0);
        s.offer(0, me, peer(10, 1));
        s.offer(0, me, peer(20, 2));
        assert!(s.remove_node(0, NodeId(1)));
        assert!(!s.remove_node(0, NodeId(1)));
        assert!(s.contains_node(0, NodeId(2)));
        assert_eq!(s.first(0).unwrap().node, NodeId(2));
        s.grow_owners(4);
        assert!(s.is_empty(3));
        s.offer(3, me, peer(7, 7));
        assert_eq!(s.first(0).unwrap().node, NodeId(2), "old owner intact");
        s.clear(0);
        assert!(s.is_empty(0));
    }

    #[test]
    fn finger_pool_set_get_clear() {
        let mut t = FingerPool::new(2);
        assert_eq!(t.get(0, 5), None);
        t.set(0, 5, peer(40, 4));
        assert_eq!(t.get(0, 5), Some(peer(40, 4)));
        assert_eq!(t.populated(0), 1);
        assert_eq!(t.populated(1), 0, "owners are isolated");
        t.clear(0, 5);
        assert_eq!(t.get(0, 5), None);
    }

    #[test]
    fn finger_pool_offer_matches_reference_semantics() {
        let mut t = FingerPool::new(1);
        let me = ChordId(0);
        t.offer(0, me, peer(100, 1));
        for k in 0..=6 {
            assert_eq!(t.get(0, k), Some(peer(100, 1)), "finger {k}");
        }
        assert_eq!(t.get(0, 7), None);
        t.offer(0, me, peer(50, 2)); // closer to the small starts
        for k in 0..=5 {
            assert_eq!(t.get(0, k).unwrap().node, NodeId(2), "finger {k}");
        }
        assert_eq!(t.get(0, 6).unwrap().node, NodeId(1), "start 64: 100 wins");
        t.offer(0, me, peer(0, 9)); // self id ignored
        assert_eq!(t.populated(0), 7);
    }

    #[test]
    fn finger_pool_closest_preceding_scans_from_the_top() {
        let mut t = FingerPool::new(1);
        let me = ChordId(0);
        t.set(0, 3, peer(8, 1));
        t.set(0, 6, peer(70, 2));
        t.set(0, 10, peer(1500, 3));
        assert_eq!(
            t.closest_preceding(0, me, ChordId(1000)).unwrap().node,
            NodeId(2)
        );
        assert_eq!(
            t.closest_preceding(0, me, ChordId(9)).unwrap().node,
            NodeId(1)
        );
        assert_eq!(t.closest_preceding(0, me, ChordId(5)), None);
    }

    #[test]
    fn finger_pool_remove_node_and_distinct() {
        let mut t = FingerPool::new(1);
        let me = ChordId(0);
        t.offer(0, me, peer(100, 1));
        t.offer(0, me, peer(1 << 20, 2));
        assert_eq!(t.distinct_peers(0).len(), 2);
        let cleared = t.remove_node(0, NodeId(1));
        assert!(cleared >= 7);
        assert!(t.distinct_peers(0).iter().all(|p| p.node != NodeId(1)));
        assert_eq!(t.remove_node(0, NodeId(1)), 0);
    }
}
