//! # dco-dht — a from-scratch Chord DHT
//!
//! The paper's coordinator tier is a Chord ring (§III-A2, citing Stoica et
//! al.); this crate implements that ring in full:
//!
//! * [`id`] — 64-bit ring arithmetic (clockwise distance, interval
//!   membership with all open/closed variants).
//! * [`hash`] — consistent hashing of node addresses and chunk names onto
//!   the ring (FNV-1a + SplitMix64 finalizer).
//! * [`finger`] / [`successors`] — the per-node routing state: finger table
//!   and successor list (retained reference models; the protocol's hot
//!   path uses the pooled layout in [`pool`]).
//! * [`pool`] — struct-of-arrays pools holding every node's successor
//!   list and finger table in flat arrays, so churn-scale populations
//!   (N ≥ 50k) fit without per-node heap allocations.
//! * [`store`] — key-addressed multi-value storage with clockwise-range
//!   extraction for ownership transfers.
//! * [`ring`] — an omniscient oracle used by tests and by the static-ring
//!   builder for the paper's no-churn experiments.
//! * [`chord`] — the protocol state machine: join, recursive
//!   `find_successor` routing, stabilization, finger repair, graceful
//!   leave, tick-based failure suspicion. Pure message-in/messages-out so a
//!   host protocol (DCO, or the bundled KV service) performs the actual
//!   sends — giving every DHT hop its latency and overhead unit.
//! * [`kv`] — a standalone key-value service over the state machine,
//!   runnable under `dco-sim` (used by the `dht_routing` example and the
//!   churn tests).
//!
//! ## Example
//!
//! ```
//! use dco_dht::chord::{ChordConfig, ChordNet, RouteDecision};
//! use dco_dht::hash::{hash_name, hash_node};
//! use dco_dht::id::Peer;
//! use dco_sim::node::NodeId;
//!
//! // A converged 64-node ring, as in the paper's no-churn setting.
//! let peers: Vec<Peer> = (0..64)
//!     .map(|i| Peer::new(hash_node(NodeId(i)), NodeId(i)))
//!     .collect();
//! let net = ChordNet::build_static(&peers, ChordConfig::default());
//!
//! // Greedy-route a chunk key from node 0 to its owner.
//! let key = hash_name("CNN1230773442");
//! let mut at = NodeId(0);
//! let mut hops = 0;
//! let owner = loop {
//!     match net.route_next(at, key).unwrap() {
//!         RouteDecision::Deliver => break at,
//!         RouteDecision::DeliverAt(p) => break p.node,
//!         RouteDecision::Forward(p) => {
//!             at = p.node;
//!             hops += 1;
//!         }
//!     }
//! };
//! assert_eq!(owner, net.oracle().owner(key).unwrap().node);
//! assert!(hops <= 12, "O(log n) routing");
//! ```
//!
//! ## Relationship to DCO
//!
//! `dco-core` embeds [`chord::ChordNet`] to maintain its coordinator ring
//! and routes its `Insert(ID, index)` / `Lookup(ID)` messages hop-by-hop
//! with [`chord::ChordNet::route_next`], exactly the flow of the paper's
//! Algorithm 1 (lines 15–27: coordinators forward messages they do not own
//! toward the owner).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chord;
pub mod finger;
pub mod hash;
pub mod id;
pub mod kv;
pub mod pool;
pub mod ring;
pub mod store;
pub mod successors;
pub mod wire;

pub use chord::{
    ChordConfig, ChordEvent, ChordMsg, ChordNet, Outbox, RouteDecision, RouteStep, RouteToken,
};
pub use hash::{hash_bytes, hash_name, hash_node};
pub use id::{ChordId, Peer, ID_BITS};
pub use ring::OracleRing;
pub use store::KeyStore;
