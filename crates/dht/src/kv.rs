//! A standalone key-value service over Chord, run under `dco-sim`.
//!
//! [`ChordKv`] wires [`ChordNet`] into the
//! simulator: stabilize / fix-finger timers, join retries, and a simple
//! `Put`/`Get` application routed hop-by-hop to the key's owner. It serves
//! three purposes:
//!
//! * an end-to-end test bed for the Chord state machine under real latency,
//!   bandwidth and churn;
//! * the `dht_routing` example binary;
//! * a template for how `dco-core` embeds the same state machine.

use std::collections::BTreeMap;

use dco_sim::prelude::*;

use crate::chord::{ChordConfig, ChordEvent, ChordMsg, ChordNet, Outbox, RouteDecision};
use crate::hash::{hash_name, hash_node};
use crate::id::{ChordId, Peer};
use crate::store::KeyStore;

/// Wire messages: Chord maintenance plus the KV application.
#[derive(Clone, Debug)]
pub enum KvMsg {
    /// Chord maintenance traffic.
    Chord(ChordMsg),
    /// A `Put` travelling toward the owner of `key`.
    Put {
        /// Destination key.
        key: ChordId,
        /// Stored value.
        value: u64,
        /// Hops left (loop guard).
        ttl: u8,
        /// Set when the previous hop already determined the receiver is
        /// the owner; the receiver stores without re-routing.
        fin: bool,
    },
    /// A `Get` travelling toward the owner of `key`.
    Get {
        /// Destination key.
        key: ChordId,
        /// Who asked.
        origin: NodeId,
        /// Request cookie.
        cookie: u64,
        /// Hops left (loop guard).
        ttl: u8,
        /// Final-delivery marker (see [`KvMsg::Put::fin`]).
        fin: bool,
    },
    /// Answer to a [`KvMsg::Get`].
    GetReply {
        /// The requested key.
        key: ChordId,
        /// Values stored under the key at its owner.
        values: Vec<u64>,
        /// Echoed cookie.
        cookie: u64,
    },
}

/// Periodic timers.
#[derive(Clone, Debug)]
pub enum KvTimer {
    /// Stabilization tick.
    Stabilize,
    /// Finger-refresh tick.
    FixFingers,
    /// Join retry while not yet joined.
    JoinRetry,
}

/// Configuration of the KV service.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Chord knobs.
    pub chord: ChordConfig,
    /// Stabilize period.
    pub stabilize_every: SimDuration,
    /// Finger-refresh period.
    pub fix_fingers_every: SimDuration,
    /// Join retry period.
    pub join_retry_every: SimDuration,
    /// Bootstrap node all joins go through.
    pub bootstrap: NodeId,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            chord: ChordConfig::default(),
            stabilize_every: SimDuration::from_millis(500),
            fix_fingers_every: SimDuration::from_millis(500),
            join_retry_every: SimDuration::from_secs(2),
            bootstrap: NodeId(0),
        }
    }
}

/// A completed `Get`, recorded for the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetResult {
    /// The requesting node.
    pub node: NodeId,
    /// The key asked for.
    pub key: ChordId,
    /// The values found at the owner.
    pub values: Vec<u64>,
    /// The request cookie.
    pub cookie: u64,
    /// When the reply arrived.
    pub at: SimTime,
}

/// The Chord KV service as a simulator protocol.
pub struct ChordKv {
    cfg: KvConfig,
    /// The shared Chord state machine.
    pub chord: ChordNet,
    /// Per-node stored values (only keys the node owns, modulo churn).
    stores: BTreeMap<u32, KeyStore<u64>>,
    /// Completed lookups.
    pub results: Vec<GetResult>,
    /// Join completions observed (node, time).
    pub joins: Vec<(NodeId, SimTime)>,
    first_boot: bool,
}

impl ChordKv {
    /// A new service with the given configuration.
    pub fn new(cfg: KvConfig) -> Self {
        ChordKv {
            chord: ChordNet::new(0, cfg.chord.clone()),
            cfg,
            stores: BTreeMap::new(),
            results: Vec::new(),
            joins: Vec::new(),
            first_boot: true,
        }
    }

    /// The ring id this protocol assigns to a simulator node.
    pub fn ring_id(node: NodeId) -> ChordId {
        hash_node(node)
    }

    /// Issues a `Put` from `node` (must be alive and joined).
    pub fn put(&mut self, node: NodeId, name: &str, value: u64, ctx: &mut Ctx<'_, Self>) {
        let key = hash_name(name);
        self.route_put(node, key, value, 64, false, ctx);
    }

    /// Issues a `Get` from `node`.
    pub fn get(&mut self, node: NodeId, name: &str, cookie: u64, ctx: &mut Ctx<'_, Self>) {
        let key = hash_name(name);
        self.route_get(node, key, node, cookie, 64, false, ctx);
    }

    fn store_mut(&mut self, node: NodeId) -> &mut KeyStore<u64> {
        self.stores.entry(node.0).or_default()
    }

    /// Values held locally by `node` under `name`'s key (test hook).
    pub fn local_values(&self, node: NodeId, name: &str) -> &[u64] {
        match self.stores.get(&node.0) {
            Some(s) => s.get(hash_name(name)),
            None => &[],
        }
    }

    fn drain(&mut self, out: Outbox, ctx: &mut Ctx<'_, Self>) {
        for s in out.sends {
            ctx.send_control(s.from, s.to, KvMsg::Chord(s.msg), s.tag);
        }
        for e in out.events {
            match e {
                ChordEvent::JoinComplete { node } => {
                    self.joins.push((node, ctx.now()));
                }
                ChordEvent::PredChanged { node, new_pred } => {
                    // Hand over the keys that now belong to the new
                    // predecessor: everything outside (new_pred, me].
                    let me_id = match self.chord.state(node) {
                        Some(st) => st.me().id,
                        None => continue,
                    };
                    let moved = self.store_mut(node).extract_range(me_id, new_pred.id);
                    for (key, values) in moved {
                        for value in values {
                            // Re-inject as a routed Put so the transfer is
                            // visible (and charged) as control traffic.
                            ctx.send_control(
                                node,
                                new_pred.node,
                                KvMsg::Put {
                                    key,
                                    value,
                                    ttl: 8,
                                    fin: true,
                                },
                                "kv.handover",
                            );
                        }
                    }
                }
                ChordEvent::AppLookupDone { .. } | ChordEvent::SuccessorDeclaredDead { .. } => {}
            }
        }
    }

    fn route_put(
        &mut self,
        at: NodeId,
        key: ChordId,
        value: u64,
        ttl: u8,
        fin: bool,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if fin {
            self.store_mut(at).insert(key, value);
            return;
        }
        match self.chord.route_next(at, key) {
            Some(RouteDecision::Deliver) | None => {
                self.store_mut(at).insert(key, value);
            }
            Some(RouteDecision::DeliverAt(p)) => {
                ctx.send_control(
                    at,
                    p.node,
                    KvMsg::Put {
                        key,
                        value,
                        ttl: 0,
                        fin: true,
                    },
                    "kv.put",
                );
            }
            Some(RouteDecision::Forward(p)) => {
                if ttl > 0 {
                    ctx.send_control(
                        at,
                        p.node,
                        KvMsg::Put {
                            key,
                            value,
                            ttl: ttl - 1,
                            fin: false,
                        },
                        "kv.put",
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn route_get(
        &mut self,
        at: NodeId,
        key: ChordId,
        origin: NodeId,
        cookie: u64,
        ttl: u8,
        fin: bool,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let deliver = fin
            || matches!(
                self.chord.route_next(at, key),
                Some(RouteDecision::Deliver) | None
            );
        if deliver {
            let values = self.store_mut(at).get(key).to_vec();
            if at == origin {
                self.results.push(GetResult {
                    node: origin,
                    key,
                    values,
                    cookie,
                    at: ctx.now(),
                });
            } else {
                ctx.send_control(
                    at,
                    origin,
                    KvMsg::GetReply {
                        key,
                        values,
                        cookie,
                    },
                    "kv.reply",
                );
            }
            return;
        }
        match self.chord.route_next(at, key) {
            Some(RouteDecision::DeliverAt(p)) => {
                ctx.send_control(
                    at,
                    p.node,
                    KvMsg::Get {
                        key,
                        origin,
                        cookie,
                        ttl: 0,
                        fin: true,
                    },
                    "kv.get",
                );
            }
            Some(RouteDecision::Forward(p)) => {
                if ttl > 0 {
                    ctx.send_control(
                        at,
                        p.node,
                        KvMsg::Get {
                            key,
                            origin,
                            cookie,
                            ttl: ttl - 1,
                            fin: false,
                        },
                        "kv.get",
                    );
                }
            }
            _ => unreachable!("deliver cases handled above"),
        }
    }

    fn arm_timers(&self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(node, self.cfg.stabilize_every, KvTimer::Stabilize);
        ctx.set_timer(node, self.cfg.fix_fingers_every, KvTimer::FixFingers);
    }
}

impl Protocol for ChordKv {
    type Msg = KvMsg;
    type Timer = KvTimer;

    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let me = Peer::new(Self::ring_id(node), node);
        let mut out = Outbox::new();
        if self.first_boot {
            self.first_boot = false;
            self.chord.bootstrap(me);
            self.joins.push((node, ctx.now()));
        } else {
            self.chord.join(me, self.cfg.bootstrap, &mut out);
            ctx.set_timer(node, self.cfg.join_retry_every, KvTimer::JoinRetry);
        }
        self.drain(out, ctx);
        self.arm_timers(node, ctx);
    }

    fn on_message(&mut self, node: NodeId, from: NodeId, msg: KvMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            KvMsg::Chord(m) => {
                let mut out = Outbox::new();
                self.chord.handle(node, from, m, &mut out);
                self.drain(out, ctx);
            }
            KvMsg::Put {
                key,
                value,
                ttl,
                fin,
            } => self.route_put(node, key, value, ttl, fin, ctx),
            KvMsg::Get {
                key,
                origin,
                cookie,
                ttl,
                fin,
            } => self.route_get(node, key, origin, cookie, ttl, fin, ctx),
            KvMsg::GetReply {
                key,
                values,
                cookie,
            } => {
                self.results.push(GetResult {
                    node,
                    key,
                    values,
                    cookie,
                    at: ctx.now(),
                });
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: KvTimer, ctx: &mut Ctx<'_, Self>) {
        let mut out = Outbox::new();
        match timer {
            KvTimer::Stabilize => {
                self.chord.tick_stabilize(node, &mut out);
                ctx.set_timer(node, self.cfg.stabilize_every, KvTimer::Stabilize);
            }
            KvTimer::FixFingers => {
                self.chord.tick_fix_fingers(node, &mut out);
                ctx.set_timer(node, self.cfg.fix_fingers_every, KvTimer::FixFingers);
            }
            KvTimer::JoinRetry => {
                let joined = self
                    .chord
                    .state(node)
                    .map(|s| s.is_joined())
                    .unwrap_or(true);
                if !joined {
                    self.chord.retry_join(node, self.cfg.bootstrap, &mut out);
                    ctx.set_timer(node, self.cfg.join_retry_every, KvTimer::JoinRetry);
                }
            }
        }
        self.drain(out, ctx);
    }

    fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
        if graceful {
            let mut out = Outbox::new();
            if let Some((_, Some(succ))) = self.chord.leave(node, &mut out) {
                // Transfer all local keys to the successor.
                if let Some(store) = self.stores.get_mut(&node.0) {
                    let all = store.extract_range(succ.id, succ.id); // full ring
                    for (key, values) in all {
                        for value in values {
                            ctx.send_control(
                                node,
                                succ.node,
                                KvMsg::Put {
                                    key,
                                    value,
                                    ttl: 8,
                                    fin: true,
                                },
                                "kv.handover",
                            );
                        }
                    }
                }
            }
            self.drain(out, ctx);
        } else {
            self.chord.fail(node);
            self.stores.remove(&node.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u32, seed: u64) -> Simulator<ChordKv> {
        let mut sim = Simulator::new(
            ChordKv::new(KvConfig::default()),
            NetConfig::default(),
            seed,
        );
        for i in 0..n {
            let id = sim.add_node(NodeCaps::peer_default());
            // Stagger joins a little so the ring forms incrementally.
            sim.schedule_join(id, SimTime::from_millis(u64::from(i) * 200));
        }
        sim
    }

    /// Injects a message at `node` as if self-issued (the application layer
    /// lives inside the protocol; drivers inject the initial routed message).
    fn inject(sim: &mut Simulator<ChordKv>, node: NodeId, msg: KvMsg) {
        sim.inject_message(sim.now(), node, node, msg);
    }

    #[test]
    fn ring_forms_and_serves_gets() {
        let mut sim = build(16, 11);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.protocol().joins.len(), 16, "all nodes joined");

        let key = hash_name("movie-chunk-42");
        let owner = sim.protocol().chord.oracle().owner(key).unwrap();

        inject(
            &mut sim,
            NodeId(3),
            KvMsg::Put {
                key,
                value: 4242,
                ttl: 64,
                fin: false,
            },
        );
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        assert_eq!(
            sim.protocol().stores.get(&owner.node.0).map(|s| s.get(key)),
            Some(&[4242u64][..]),
            "value stored at ring owner"
        );

        inject(
            &mut sim,
            NodeId(9),
            KvMsg::Get {
                key,
                origin: NodeId(9),
                cookie: 5,
                ttl: 64,
                fin: false,
            },
        );
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let r = sim
            .protocol()
            .results
            .iter()
            .find(|r| r.cookie == 5)
            .expect("get completed");
        assert_eq!(r.values, vec![4242]);
        assert_eq!(r.node, NodeId(9));
    }

    #[test]
    fn churn_keeps_ring_routable() {
        let mut sim = build(20, 5);
        sim.run_until(SimTime::from_secs(20));
        // Kill a quarter, gracefully leave a few, let it heal.
        sim.schedule_leave(NodeId(2), SimTime::from_secs(21), false);
        sim.schedule_leave(NodeId(7), SimTime::from_secs(21), false);
        sim.schedule_leave(NodeId(12), SimTime::from_secs(22), true);
        sim.schedule_leave(NodeId(15), SimTime::from_secs(22), true);
        sim.run_until(SimTime::from_secs(60));

        // The live ring should still resolve lookups to the oracle owner.
        let key = hash_name("post-churn-key");
        inject(
            &mut sim,
            NodeId(0),
            KvMsg::Put {
                key,
                value: 7,
                ttl: 64,
                fin: false,
            },
        );
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let owner = sim.protocol().chord.oracle().owner(key).unwrap();
        assert_eq!(
            sim.protocol().stores.get(&owner.node.0).map(|s| s.get(key)),
            Some(&[7u64][..])
        );
    }
}

#[cfg(test)]
mod handover_tests {
    use super::*;

    /// Values stored before a churn event end up on the post-churn oracle
    /// owner (handover on join, transfer on graceful leave).
    #[test]
    fn ownership_follows_ring_changes() {
        let mut sim = Simulator::new(ChordKv::new(KvConfig::default()), NetConfig::default(), 19);
        // Start with 8 nodes; 4 more join later; one leaves gracefully.
        for i in 0..12u32 {
            let id = sim.add_node(NodeCaps::peer_default());
            let at = if i < 8 {
                SimTime::from_millis(u64::from(i) * 200)
            } else {
                SimTime::from_secs(20 + u64::from(i))
            };
            sim.schedule_join(id, at);
        }
        sim.run_until(SimTime::from_secs(10));
        // Store values while only the first 8 are up.
        for k in 0..6u64 {
            let key = hash_name(&format!("item-{k}"));
            sim.inject_message(
                sim.now(),
                NodeId(1),
                NodeId(1),
                KvMsg::Put {
                    key,
                    value: k,
                    ttl: 64,
                    fin: false,
                },
            );
        }
        sim.run_until(SimTime::from_secs(18));
        // Joins happen; then node 2 leaves gracefully.
        sim.schedule_leave(NodeId(2), SimTime::from_secs(40), true);
        sim.run_until(SimTime::from_secs(60));
        // Every value must be retrievable and live at the current oracle
        // owner.
        let oracle = sim.protocol().chord.oracle();
        for k in 0..6u64 {
            let key = hash_name(&format!("item-{k}"));
            let owner = oracle.owner(key).unwrap();
            assert_eq!(
                sim.protocol()
                    .local_values(owner.node, &format!("item-{k}")),
                &[k],
                "item-{k} not at its owner {owner:?}"
            );
        }
    }
}
