//! Key-addressed storage with ring-range transfer.
//!
//! A Chord node stores the values whose keys fall in its ownership arc
//! `(predecessor, me]`. On membership change, a contiguous **clockwise
//! range** of keys moves to a new owner; [`KeyStore::extract_range`]
//! implements that split (including the wrap-around case).
//!
//! Values are multi-valued per key because DCO stores *many* chunk indices
//! under one chunk ID (one per provider).

use std::collections::BTreeMap;

use crate::id::ChordId;

/// Multi-valued storage keyed by ring position.
#[derive(Clone, Debug)]
pub struct KeyStore<V> {
    map: BTreeMap<ChordId, Vec<V>>,
}

impl<V> Default for KeyStore<V> {
    fn default() -> Self {
        KeyStore {
            map: BTreeMap::new(),
        }
    }
}

impl<V> KeyStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value under `key`.
    pub fn insert(&mut self, key: ChordId, value: V) {
        self.map.entry(key).or_default().push(value);
    }

    /// All values under `key` (empty slice if absent).
    pub fn get(&self, key: ChordId) -> &[V] {
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mutable access to the values under `key`, if any.
    pub fn get_mut(&mut self, key: ChordId) -> Option<&mut Vec<V>> {
        self.map.get_mut(&key)
    }

    /// Removes every value under `key`, returning them.
    pub fn remove_key(&mut self, key: ChordId) -> Vec<V> {
        self.map.remove(&key).unwrap_or_default()
    }

    /// Keeps only the values for which `pred` holds; drops emptied keys.
    pub fn retain_values(&mut self, mut pred: impl FnMut(ChordId, &V) -> bool) {
        self.map.retain(|&k, vs| {
            vs.retain(|v| pred(k, v));
            !vs.is_empty()
        });
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of stored values.
    pub fn value_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(key, values)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (ChordId, &[V])> + '_ {
        self.map.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Removes and returns every entry whose key lies in the clockwise
    /// half-open arc `(from, to]` — the ownership range handed to a new
    /// owner. Handles wrap-around; when `from == to` the whole store moves
    /// (single-member ring convention).
    pub fn extract_range(&mut self, from: ChordId, to: ChordId) -> Vec<(ChordId, Vec<V>)> {
        let keys: Vec<ChordId> = self
            .map
            .keys()
            .copied()
            .filter(|k| k.in_open_closed(from, to))
            .collect();
        keys.into_iter()
            .map(|k| (k, self.map.remove(&k).unwrap()))
            .collect()
    }

    /// Bulk-inserts entries produced by [`KeyStore::extract_range`] on
    /// another node.
    pub fn absorb(&mut self, entries: Vec<(ChordId, Vec<V>)>) {
        for (k, vs) in entries {
            self.map.entry(k).or_default().extend(vs);
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KeyStore<&'static str> {
        let mut s = KeyStore::new();
        s.insert(ChordId(10), "a");
        s.insert(ChordId(10), "b");
        s.insert(ChordId(100), "c");
        s.insert(ChordId(1000), "d");
        s
    }

    #[test]
    fn insert_get_multivalue() {
        let s = store();
        assert_eq!(s.get(ChordId(10)), &["a", "b"]);
        assert_eq!(s.get(ChordId(100)), &["c"]);
        assert_eq!(s.get(ChordId(5)), &[] as &[&str]);
        assert_eq!(s.key_count(), 3);
        assert_eq!(s.value_count(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn remove_key() {
        let mut s = store();
        assert_eq!(s.remove_key(ChordId(10)), vec!["a", "b"]);
        assert!(s.remove_key(ChordId(10)).is_empty());
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn retain_values_drops_empty_keys() {
        let mut s = store();
        s.retain_values(|_, v| *v != "a" && *v != "c");
        assert_eq!(s.get(ChordId(10)), &["b"]);
        assert_eq!(s.key_count(), 2, "key 100 dropped once emptied");
    }

    #[test]
    fn extract_simple_range() {
        let mut s = store();
        let moved = s.extract_range(ChordId(10), ChordId(100));
        // (10, 100]: only key 100 (10 itself excluded).
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(100));
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn extract_wrapping_range() {
        let mut s = store();
        // (1000, 10] wraps through zero: moves key 10 only.
        let moved = s.extract_range(ChordId(1000), ChordId(10));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(10));
    }

    #[test]
    fn extract_full_ring_when_degenerate() {
        let mut s = store();
        let moved = s.extract_range(ChordId(7), ChordId(7));
        assert_eq!(moved.len(), 3, "from == to moves everything");
        assert!(s.is_empty());
    }

    #[test]
    fn absorb_merges() {
        let mut a = store();
        let mut b = KeyStore::new();
        b.insert(ChordId(100), "x");
        b.absorb(a.extract_range(ChordId(10), ChordId(100)));
        assert_eq!(b.get(ChordId(100)), &["x", "c"]);
    }

    #[test]
    fn iter_in_key_order() {
        let s = store();
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![10, 100, 1000]);
    }

    #[test]
    fn clear_empties() {
        let mut s = store();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.value_count(), 0);
    }
}
