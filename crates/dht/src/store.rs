//! Key-addressed storage with ring-range transfer.
//!
//! A Chord node stores the values whose keys fall in its ownership arc
//! `(predecessor, me]`. On membership change, a contiguous **clockwise
//! range** of keys moves to a new owner; [`KeyStore::extract_range`]
//! implements that split (including the wrap-around case).
//!
//! Values are multi-valued per key because DCO stores *many* chunk indices
//! under one chunk ID (one per provider).
//!
//! Storage is a pair of parallel sorted vectors (keys + value lists) rather
//! than a `BTreeMap`: lookups binary-search one contiguous key array — a
//! cache-friendly layout for the lookup-dominated DHT hot path — and
//! in-order iteration is a linear walk. Key counts per node are small (one
//! per stored chunk ID), so the O(n) shift on inserting a *new* key is
//! cheaper than the tree's node churn; appending to an existing key's value
//! list (the common case while providers register) touches only that list.

use dco_sim::smallvec::SmallVec;

use crate::id::ChordId;

/// The per-key value list: inline for the 1–2-provider common case,
/// heap-spilled for hot keys with many providers.
pub type ValueList<V> = SmallVec<V, 2>;

/// Multi-valued storage keyed by ring position.
#[derive(Clone, Debug)]
pub struct KeyStore<V: Copy + Default> {
    /// Distinct keys, sorted ascending.
    keys: Vec<ChordId>,
    /// `vals[i]` holds the values stored under `keys[i]` (never empty).
    vals: Vec<ValueList<V>>,
}

impl<V: Copy + Default> Default for KeyStore<V> {
    fn default() -> Self {
        KeyStore {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<V: Copy + Default> KeyStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot of `key`, or where it would be inserted.
    #[inline]
    fn slot(&self, key: ChordId) -> Result<usize, usize> {
        self.keys.binary_search(&key)
    }

    /// Appends a value under `key`.
    pub fn insert(&mut self, key: ChordId, value: V) {
        match self.slot(key) {
            Ok(i) => self.vals[i].push(value),
            Err(i) => {
                let mut vs = ValueList::new();
                vs.push(value);
                self.keys.insert(i, key);
                self.vals.insert(i, vs);
            }
        }
    }

    /// All values under `key` (empty slice if absent).
    pub fn get(&self, key: ChordId) -> &[V] {
        match self.slot(key) {
            Ok(i) => &self.vals[i],
            Err(_) => &[],
        }
    }

    /// Mutable access to the values under `key`, if any.
    pub fn get_mut(&mut self, key: ChordId) -> Option<&mut ValueList<V>> {
        match self.slot(key) {
            Ok(i) => Some(&mut self.vals[i]),
            Err(_) => None,
        }
    }

    /// Removes every value under `key`, returning them.
    pub fn remove_key(&mut self, key: ChordId) -> Vec<V> {
        match self.slot(key) {
            Ok(i) => {
                self.keys.remove(i);
                self.vals.remove(i).into_vec()
            }
            Err(_) => Vec::new(),
        }
    }

    /// Keeps only the values for which `pred` holds; drops emptied keys.
    pub fn retain_values(&mut self, mut pred: impl FnMut(ChordId, &V) -> bool) {
        let mut kept = 0;
        for i in 0..self.keys.len() {
            let k = self.keys[i];
            self.vals[i].retain(|v| pred(k, v));
            if !self.vals[i].is_empty() {
                self.keys.swap(kept, i);
                self.vals.swap(kept, i);
                kept += 1;
            }
        }
        self.keys.truncate(kept);
        self.vals.truncate(kept);
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total number of stored values.
    pub fn value_count(&self) -> usize {
        self.vals.iter().map(|v| v.len()).sum()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(key, values)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (ChordId, &[V])> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .map(|(&k, v)| (k, v.as_slice()))
    }

    /// Removes and returns every entry whose key lies in the clockwise
    /// half-open arc `(from, to]` — the ownership range handed to a new
    /// owner. Handles wrap-around; when `from == to` the whole store moves
    /// (single-member ring convention). Returned entries are in ascending
    /// key order.
    pub fn extract_range(&mut self, from: ChordId, to: ChordId) -> Vec<(ChordId, Vec<V>)> {
        let mut moved = Vec::new();
        let mut kept = 0;
        for i in 0..self.keys.len() {
            if self.keys[i].in_open_closed(from, to) {
                moved.push((self.keys[i], std::mem::take(&mut self.vals[i]).into_vec()));
            } else {
                self.keys.swap(kept, i);
                self.vals.swap(kept, i);
                kept += 1;
            }
        }
        self.keys.truncate(kept);
        self.vals.truncate(kept);
        moved
    }

    /// Bulk-inserts entries produced by [`KeyStore::extract_range`] on
    /// another node.
    pub fn absorb(&mut self, entries: Vec<(ChordId, Vec<V>)>) {
        for (k, vs) in entries {
            if vs.is_empty() {
                continue;
            }
            match self.slot(k) {
                Ok(i) => self.vals[i].extend(vs),
                Err(i) => {
                    self.keys.insert(i, k);
                    self.vals.insert(i, vs.into_iter().collect());
                }
            }
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KeyStore<&'static str> {
        let mut s = KeyStore::new();
        s.insert(ChordId(10), "a");
        s.insert(ChordId(10), "b");
        s.insert(ChordId(100), "c");
        s.insert(ChordId(1000), "d");
        s
    }

    #[test]
    fn insert_get_multivalue() {
        let s = store();
        assert_eq!(s.get(ChordId(10)), &["a", "b"]);
        assert_eq!(s.get(ChordId(100)), &["c"]);
        assert_eq!(s.get(ChordId(5)), &[] as &[&str]);
        assert_eq!(s.key_count(), 3);
        assert_eq!(s.value_count(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn remove_key() {
        let mut s = store();
        assert_eq!(s.remove_key(ChordId(10)), vec!["a", "b"]);
        assert!(s.remove_key(ChordId(10)).is_empty());
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn retain_values_drops_empty_keys() {
        let mut s = store();
        s.retain_values(|_, v| *v != "a" && *v != "c");
        assert_eq!(s.get(ChordId(10)), &["b"]);
        assert_eq!(s.key_count(), 2, "key 100 dropped once emptied");
    }

    #[test]
    fn retain_keeps_key_order() {
        let mut s = store();
        s.retain_values(|_, v| *v != "c");
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![10, 1000]);
        s.insert(ChordId(500), "e");
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![10, 500, 1000], "still sorted after reinsert");
    }

    #[test]
    fn extract_simple_range() {
        let mut s = store();
        let moved = s.extract_range(ChordId(10), ChordId(100));
        // (10, 100]: only key 100 (10 itself excluded).
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(100));
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn extract_wrapping_range() {
        let mut s = store();
        // (1000, 10] wraps through zero: moves key 10 only.
        let moved = s.extract_range(ChordId(1000), ChordId(10));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(10));
    }

    #[test]
    fn extract_full_ring_when_degenerate() {
        let mut s = store();
        let moved = s.extract_range(ChordId(7), ChordId(7));
        assert_eq!(moved.len(), 3, "from == to moves everything");
        assert!(s.is_empty());
    }

    #[test]
    fn extract_preserves_remaining_order() {
        let mut s = KeyStore::new();
        for k in [5u64, 15, 25, 35, 45] {
            s.insert(ChordId(k), k);
        }
        // (10, 30] removes 15 and 25; 5, 35, 45 stay sorted.
        let moved = s.extract_range(ChordId(10), ChordId(30));
        assert_eq!(
            moved.iter().map(|(k, _)| k.0).collect::<Vec<_>>(),
            vec![15, 25]
        );
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![5, 35, 45]);
    }

    #[test]
    fn absorb_merges() {
        let mut a = store();
        let mut b = KeyStore::new();
        b.insert(ChordId(100), "x");
        b.absorb(a.extract_range(ChordId(10), ChordId(100)));
        assert_eq!(b.get(ChordId(100)), &["x", "c"]);
    }

    #[test]
    fn iter_in_key_order() {
        let s = store();
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![10, 100, 1000]);
    }

    #[test]
    fn clear_empties() {
        let mut s = store();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.value_count(), 0);
    }
}
