//! The Chord protocol state machine.
//!
//! [`ChordNet`] holds the Chord state of *every* simulated node (indexed by
//! [`NodeId`]) and encodes the full protocol — join, recursive
//! `find_successor` routing, stabilization, `fix_fingers`, graceful leave
//! and failure suspicion — as **pure message handlers**: each call consumes
//! a message or a timer tick and pushes the resulting sends and events into
//! an [`Outbox`]. The host (a `dco_sim` protocol) owns the actual I/O: it
//! drains the outbox into `Ctx::send_control`, which is what gives every
//! DHT hop its latency and its unit of "extra overhead".
//!
//! This inversion — logic here, I/O in the host — is what lets the DCO
//! protocol in `dco-core` embed a real Chord ring, and what lets property
//! tests drive the state machine without a simulator at all.
//!
//! # Failure handling
//!
//! There are no response timeouts; instead, suspicion is tick-based: if a
//! `stabilize` probe sent at tick *t* has not been answered by tick *t+1*,
//! the successor is declared dead, dropped from the successor list and the
//! finger table, and the next list entry takes over. Predecessors are
//! expired symmetrically when no probe has arrived for
//! [`ChordConfig::pred_ttl_ticks`] ticks.

use dco_sim::node::NodeId;
use dco_sim::slab::SlotTable;
use dco_sim::smallvec::SmallVec;

use crate::id::{ChordId, Peer};
use crate::pool::{FingerPool, SuccessorPool};
use crate::ring::OracleRing;

/// Tuning knobs for the ring.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length (the paper reuses this as the DCO node's
    /// neighbor count; §IV varies it from 8 to 64).
    pub successor_list_len: usize,
    /// Fingers refreshed per `tick_fix_fingers` call. The default sweeps
    /// the whole table; only the O(log n) non-local entries actually cost a
    /// lookup, the rest resolve against the successor pointer for free.
    pub fingers_per_tick: u32,
    /// Stabilize ticks without a probe from the predecessor before it is
    /// presumed dead.
    pub pred_ttl_ticks: u32,
    /// Consecutive unanswered liveness probes before a peer is declared
    /// dead (loss tolerance; 1 = the original hair-trigger behavior).
    pub suspicion_misses: u32,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list_len: 8,
            fingers_per_tick: 64,
            pred_ttl_ticks: 3,
            suspicion_misses: 3,
        }
    }
}

/// Why a `FindSucc` lookup was issued; echoed back in the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteToken {
    /// A joining node locating its successor.
    Join,
    /// Refreshing finger `k`.
    Finger(u32),
    /// An application-level lookup with a caller-chosen cookie.
    App(u64),
}

/// Chord wire messages.
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// Recursive `find_successor(key)` request travelling toward the owner.
    FindSucc {
        /// The key being resolved.
        key: ChordId,
        /// Who asked (the answer goes straight back here).
        origin: Peer,
        /// Purpose cookie.
        token: RouteToken,
        /// Remaining forwards before the request is dropped (loop guard).
        ttl: u8,
    },
    /// Answer to [`ChordMsg::FindSucc`]: `succ` is `successor(key)`.
    FoundSucc {
        /// The key that was resolved.
        key: ChordId,
        /// The owner of the key.
        succ: Peer,
        /// Echoed purpose cookie.
        token: RouteToken,
    },
    /// Stabilize probe: "who is your predecessor?".
    GetPred {
        /// The prober (the receiver learns this peer is alive).
        from: Peer,
    },
    /// Stabilize answer, sharing the successor list for repair.
    PredReply {
        /// The receiver's current predecessor.
        pred: Option<Peer>,
        /// The receiver's successor list.
        succs: Vec<Peer>,
        /// Peers the replier recently declared dead, each with remaining
        /// dissemination hops (epidemic failure spreading, so corpses deep
        /// in successor lists are flushed ring-wide in a few stabilize
        /// rounds instead of one probe at a time; the hop bound keeps two
        /// nodes from re-infecting each other's tombstones forever).
        dead: Vec<(NodeId, u8)>,
    },
    /// "I believe I am your predecessor."
    Notify {
        /// The notifier.
        peer: Peer,
    },
    /// Graceful leave, sent to the predecessor: "adopt my successor".
    LeaveToPred {
        /// The departing node.
        leaving: Peer,
        /// Its successor, offered as a replacement.
        new_succ: Option<Peer>,
    },
    /// Graceful leave, sent to the successor: "adopt my predecessor".
    LeaveToSucc {
        /// The departing node.
        leaving: Peer,
        /// Its predecessor, offered as a replacement.
        new_pred: Option<Peer>,
    },
}

/// Default TTL for recursive lookups (well above `log₂` of any network we
/// simulate).
pub const FIND_TTL: u8 = 64;

/// Stabilize ticks after which a death tombstone expires (allows rejoined
/// nodes to be re-learned from gossip; direct contact clears it earlier).
pub const SUSPECT_TTL_TICKS: u64 = 30;

/// Events the host must react to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChordEvent {
    /// The node completed its join (successor learned).
    JoinComplete {
        /// The joined node.
        node: NodeId,
    },
    /// The node's predecessor changed; the host should hand every stored
    /// key **outside** the node's new ownership arc `(new_pred, me]` to
    /// `new_pred` (via `KeyStore::extract_range(me, new_pred.id)`).
    PredChanged {
        /// The node whose arc shrank.
        node: NodeId,
        /// The new predecessor.
        new_pred: Peer,
    },
    /// An application lookup completed: `owner` is `successor(key)`.
    AppLookupDone {
        /// The node that issued the lookup.
        node: NodeId,
        /// The resolved key.
        key: ChordId,
        /// The key's owner.
        owner: Peer,
        /// The caller-chosen cookie.
        cookie: u64,
    },
    /// The node declared its working successor dead.
    SuccessorDeclaredDead {
        /// The suspecting node.
        node: NodeId,
        /// The suspect.
        dead: NodeId,
    },
}

/// A pending control-message send produced by the state machine.
#[derive(Clone, Debug)]
pub struct Send {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: ChordMsg,
    /// Overhead-accounting tag.
    pub tag: &'static str,
}

/// Sends and events produced by one state-machine step.
#[derive(Default, Debug)]
pub struct Outbox {
    /// Messages to transmit.
    pub sends: Vec<Send>,
    /// Events for the host.
    pub events: Vec<ChordEvent>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: ChordMsg, tag: &'static str) {
        self.sends.push(Send { from, to, msg, tag });
    }

    /// True if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.events.is_empty()
    }
}

/// Where an application message keyed by `key` should go next.
///
/// Chord terminates a lookup one hop early: the node whose `(me, succ]` arc
/// contains the key declares its **successor** the owner. Hosts forwarding a
/// message on [`RouteDecision::DeliverAt`] must mark it final so the
/// receiver accepts it without re-routing (its own predecessor pointer may
/// transiently disagree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// This node owns the key; deliver locally.
    Deliver,
    /// The given peer is the owner; forward as final.
    DeliverAt(Peer),
    /// Forward to this peer and keep routing.
    Forward(Peer),
}

/// A [`RouteDecision`] reduced to node ids, as returned by
/// [`ChordNet::route_next_cached`]. Hop-by-hop hosts only need the next
/// node to hand the message to, so the cache stores (and returns) just
/// that instead of full [`Peer`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteStep {
    /// This node owns the key; deliver locally.
    Deliver,
    /// The given node is the owner; forward as final.
    DeliverAt(NodeId),
    /// Forward to this node and keep routing.
    Forward(NodeId),
}

impl RouteStep {
    fn of(d: RouteDecision) -> RouteStep {
        match d {
            RouteDecision::Deliver => RouteStep::Deliver,
            RouteDecision::DeliverAt(p) => RouteStep::DeliverAt(p.node),
            RouteDecision::Forward(p) => RouteStep::Forward(p.node),
        }
    }
}

/// Distinct keys the route cache will track; DCO routes by chunk name and
/// streams carry ~100 distinct chunk keys, so this covers the hot set.
/// Keys beyond the budget simply bypass the cache.
const ROUTE_SLOTS: usize = 128;

/// Target node ids must fit in 30 bits to pack into a cache entry;
/// anything larger (never seen in practice) bypasses the cache.
const ROUTE_NODE_MAX: u32 = (1 << 30) - 1;

/// Memoized [`ChordNet::route_next`] decisions.
///
/// `route_next` is a pure function of the deciding node's own Chord state,
/// so each entry is valid until that node's state next changes. A per-node
/// generation counter — bumped on *any* mutable access to the state —
/// versions the entries: a row written under an older generation simply
/// misses. In the paper's no-churn experiments the ring never mutates
/// after construction, so every (node, key) pair is computed exactly once;
/// under churn the cache degrades gracefully toward recompute-per-hop.
#[derive(Default)]
struct RouteCache {
    /// Distinct keys seen so far, sorted for binary search; the payload is
    /// the key's column in `rows`.
    keys: Vec<(ChordId, u16)>,
    /// Per-node generation, bumped on every state mutation.
    gens: Vec<u32>,
    /// Per-node decision row, allocated on first route from that node.
    /// Entry layout: `gen << 32 | kind << 30 | target_node`, with kind
    /// 1 = Deliver, 2 = DeliverAt, 3 = Forward; kind 0 (the zeroed
    /// initial state) never matches.
    rows: Vec<Option<Box<[u64; ROUTE_SLOTS]>>>,
}

impl RouteCache {
    /// The column for `key`, allocating one if the budget allows.
    fn slot_of(&mut self, key: ChordId) -> Option<usize> {
        match self.keys.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => Some(self.keys[i].1 as usize),
            Err(i) => {
                let next = self.keys.len();
                if next >= ROUTE_SLOTS {
                    return None;
                }
                self.keys.insert(i, (key, next as u16));
                Some(next)
            }
        }
    }

    /// Invalidates all of `node`'s cached decisions.
    fn bump(&mut self, node: NodeId) {
        if let Some(g) = self.gens.get_mut(node.index()) {
            *g = g.wrapping_add(1);
        }
    }

    /// Grows the per-node arrays to cover `node`.
    fn ensure(&mut self, node: NodeId) {
        let want = node.index() + 1;
        if self.gens.len() < want {
            self.gens.resize(want, 0);
            self.rows.resize_with(want, || None);
        }
    }

    fn get(&self, node: NodeId, slot: usize) -> Option<RouteStep> {
        let i = node.index();
        let e = self.rows[i].as_deref()?[slot];
        if (e >> 32) as u32 != self.gens[i] {
            return None;
        }
        let target = NodeId((e & ROUTE_NODE_MAX as u64) as u32);
        match (e >> 30) & 0b11 {
            1 => Some(RouteStep::Deliver),
            2 => Some(RouteStep::DeliverAt(target)),
            3 => Some(RouteStep::Forward(target)),
            _ => None,
        }
    }

    fn put(&mut self, node: NodeId, slot: usize, step: RouteStep) {
        let (kind, target) = match step {
            RouteStep::Deliver => (1u64, 0),
            RouteStep::DeliverAt(n) => (2, n.0),
            RouteStep::Forward(n) => (3, n.0),
        };
        if target > ROUTE_NODE_MAX {
            return;
        }
        let i = node.index();
        let row = self.rows[i].get_or_insert_with(|| Box::new([0u64; ROUTE_SLOTS]));
        row[slot] = ((self.gens[i] as u64) << 32) | (kind << 30) | target as u64;
    }
}

/// Dissemination hops a locally observed death starts with.
const GOSSIP_HOPS: u8 = 4;

/// Per-node Chord state: the scalar core only.
///
/// The heap-shaped repair state — successor list, finger table, probe-miss
/// counts and death tombstones — lives in the pooled `Books` owned by
/// [`ChordNet`], indexed by the node's slot. Keeping the per-node struct
/// all-scalar (plus two inline [`SmallVec`]s that spill only in pathological
/// repair storms) is what lets churn workloads carry N ≥ 50k rings without
/// hundreds of thousands of small allocations. Read access goes through
/// [`ChordStateRef`], which rejoins the core with its pooled books.
#[derive(Clone, Debug)]
pub struct ChordState {
    me: Peer,
    pred: Option<Peer>,
    next_finger: u32,
    /// Finger lookups issued last tick: `(finger index, first hop used)`.
    /// Entries still here at the next tick indicate a lost lookup; the hop
    /// is then suspected and cleared from the finger table.
    pending_fingers: SmallVec<(u32, NodeId), 4>,
    /// Stabilize probe to the working successor outstanding since the last
    /// tick (the target is recorded so an unrelated reply cannot clear it).
    stab_pending_to: Option<NodeId>,
    /// Liveness probe to a deep successor-list entry outstanding since the
    /// last tick.
    probe_pending: Option<NodeId>,
    /// The deep successor-list entry probed last tick (rotation anchor).
    last_deep_probe: Option<NodeId>,
    /// Stabilize ticks elapsed (timestamp source for death gossip expiry).
    tick: u64,
    /// Recently declared-dead peers: `(peer, declaration tick, remaining
    /// dissemination hops)`.
    recent_dead: SmallVec<(NodeId, u64, u8), 4>,
    /// Ticks left before the predecessor is presumed dead.
    pred_ttl: u32,
    joined: bool,
}

impl ChordState {
    fn new(me: Peer, cfg: &ChordConfig) -> Self {
        ChordState {
            me,
            pred: None,
            next_finger: 0,
            pending_fingers: SmallVec::new(),
            stab_pending_to: None,
            probe_pending: None,
            last_deep_probe: None,
            tick: 0,
            recent_dead: SmallVec::new(),
            pred_ttl: cfg.pred_ttl_ticks,
            joined: false,
        }
    }

    /// This node's ring identity.
    pub fn me(&self) -> Peer {
        self.me
    }

    /// Current predecessor.
    pub fn predecessor(&self) -> Option<Peer> {
        self.pred
    }

    /// True once the join handshake finished.
    pub fn is_joined(&self) -> bool {
        self.joined
    }
}

/// The pooled per-node repair state: successor lists, finger tables,
/// probe-miss counts and death tombstones for *all* nodes, in flat arrays
/// indexed by node slot. One allocation per book instead of four per node.
struct Books {
    succs: SuccessorPool,
    fingers: FingerPool,
    /// Consecutive unanswered probes per (owner, target). A peer is only
    /// declared dead after [`ChordConfig::suspicion_misses`] silent
    /// rounds, so a single lost message cannot amputate a live node.
    probe_misses: SlotTable<u32>,
    /// Death tombstones per (owner, peer), valued by declaration tick.
    /// Gossip (merged successor lists, forwarded peer info) cannot
    /// re-introduce a suspected peer; a message received directly from it —
    /// or expiry after [`SUSPECT_TTL_TICKS`] — lifts the suspicion (expiry
    /// matters because churned nodes can rejoin under the same address).
    /// Without tombstones, a corpse deep in a neighbor's successor list
    /// circulates forever.
    suspected: SlotTable<u64>,
}

impl Books {
    fn new(owners: usize, cfg: &ChordConfig) -> Self {
        Books {
            succs: SuccessorPool::new(owners, cfg.successor_list_len),
            fingers: FingerPool::new(owners),
            // Stab + deep probe leave at most a couple of live miss
            // counters per node; tombstones burst a little wider under
            // gossip. Both strides double globally if ever outgrown.
            probe_misses: SlotTable::new(owners, 2),
            suspected: SlotTable::new(owners, 4),
        }
    }

    fn grow_owners(&mut self, owners: usize) {
        self.succs.grow_owners(owners);
        self.fingers.grow_owners(owners);
        self.probe_misses.grow_owners(owners);
        self.suspected.grow_owners(owners);
    }

    /// Resets `owner`'s books (join/rejoin under a reused slot, or state
    /// drop on leave/fail — node slots are recycled across churn sessions).
    fn clear_owner(&mut self, owner: usize) {
        self.succs.clear(owner);
        self.fingers.clear_owner(owner);
        self.probe_misses.clear(owner);
        self.suspected.clear(owner);
    }

    /// Learns that `p` exists (fills fingers and the successor list),
    /// unless `p` is currently suspected dead.
    fn learn(&mut self, st: &ChordState, owner: usize, p: Peer) {
        if p.node == st.me.node || self.suspected.contains(owner, p.node.0) {
            return;
        }
        self.succs.offer(owner, st.me.id, p);
        self.fingers.offer(owner, st.me.id, p);
    }

    /// Forgets a dead (or departed) node everywhere, tombstones it, and
    /// queues the death for gossip with `hops` remaining dissemination
    /// hops. Locally observed deaths start at [`GOSSIP_HOPS`];
    /// gossip-learned deaths are re-gossiped with one hop fewer, so the
    /// news floods the ring but cannot circulate forever (two nodes
    /// re-infecting each other's tombstones is what the bound prevents).
    fn forget_with_hops(&mut self, st: &mut ChordState, owner: usize, node: NodeId, hops: u8) {
        // Refresh the tombstone on every (re-)observation: expiry runs
        // from the last evidence of death. The hop bound terminates gossip
        // waves, so refreshes stop shortly after the last real detection
        // and expiry stays reachable.
        self.suspected.insert(owner, node.0, st.tick);
        self.succs.remove_node(owner, node);
        self.fingers.remove_node(owner, node);
        if st.pred.map(|p| p.node == node).unwrap_or(false) {
            st.pred = None;
        }
        if hops > 0
            && !st
                .recent_dead
                .iter()
                .any(|&(n, _, h)| n == node && h >= hops)
        {
            st.recent_dead.retain(|&(n, _, _)| n != node);
            st.recent_dead.push((node, st.tick, hops));
        }
    }

    /// A locally observed death (probe miss, leave notice).
    fn forget(&mut self, st: &mut ChordState, owner: usize, node: NodeId) {
        self.forget_with_hops(st, owner, node, GOSSIP_HOPS);
    }

    /// A message arrived directly from `node`: it is demonstrably alive.
    fn unsuspect(&mut self, st: &mut ChordState, owner: usize, node: NodeId) {
        self.suspected.remove(owner, node.0);
        st.recent_dead.retain(|&(n, _, _)| n != node);
    }

    /// The best greedy next hop toward `key`: the peer whose ID most
    /// closely precedes `key`, drawn from the finger table **and** the
    /// successor list. Wide successor lists (the paper's "neighbors",
    /// swept 8→64 in §IV) therefore shorten routes — which is exactly why
    /// DCO's overhead *falls* as the neighbor count grows (Fig. 8).
    fn best_hop(&self, st: &ChordState, owner: usize, key: ChordId) -> Option<Peer> {
        let me = st.me.id;
        let mut best: Option<Peer> = self.fingers.closest_preceding(owner, me, key);
        for p in self.succs.iter(owner) {
            if p.id.in_open(me, key) {
                match best {
                    None => best = Some(p),
                    Some(b) => {
                        if me.distance_to(p.id) > me.distance_to(b.id) {
                            best = Some(p);
                        }
                    }
                }
            }
        }
        best
    }
}

/// Read view of one node's Chord state: the scalar core rejoined with its
/// pooled successor list, finger table and tombstones.
#[derive(Clone, Copy)]
pub struct ChordStateRef<'a> {
    core: &'a ChordState,
    books: &'a Books,
    owner: usize,
}

impl<'a> ChordStateRef<'a> {
    /// This node's ring identity.
    pub fn me(&self) -> Peer {
        self.core.me
    }

    /// Current predecessor.
    pub fn predecessor(&self) -> Option<Peer> {
        self.core.pred
    }

    /// Working successor.
    pub fn successor(&self) -> Option<Peer> {
        self.books.succs.first(self.owner)
    }

    /// The whole successor list, nearest first.
    pub fn successor_list(&self) -> Vec<Peer> {
        self.books.succs.iter(self.owner).collect()
    }

    /// True once the join handshake finished.
    pub fn is_joined(&self) -> bool {
        self.core.joined
    }

    /// Read access to the finger table.
    pub fn fingers(&self) -> FingersRef<'a> {
        FingersRef {
            books: self.books,
            owner: self.owner,
        }
    }

    /// True if this node currently suspects `node` dead (test hook).
    pub fn suspects(&self, node: NodeId) -> bool {
        self.books.suspected.contains(self.owner, node.0)
    }
}

/// Read view of one node's pooled finger table.
#[derive(Clone, Copy)]
pub struct FingersRef<'a> {
    books: &'a Books,
    owner: usize,
}

impl FingersRef<'_> {
    /// Current entry of finger `k`.
    pub fn get(&self, k: u32) -> Option<Peer> {
        self.books.fingers.get(self.owner, k)
    }

    /// Number of populated entries.
    pub fn populated(&self) -> usize {
        self.books.fingers.populated(self.owner)
    }

    /// Distinct populated fingers (deduplicated by node).
    pub fn distinct_peers(&self) -> Vec<Peer> {
        self.books.fingers.distinct_peers(self.owner)
    }
}

/// The Chord state of every simulated node, plus the shared configuration.
pub struct ChordNet {
    cfg: ChordConfig,
    nodes: Vec<Option<ChordState>>,
    books: Books,
    route_cache: RouteCache,
}

impl ChordNet {
    /// An empty network able to host up to `capacity` nodes.
    pub fn new(capacity: usize, cfg: ChordConfig) -> Self {
        let books = Books::new(capacity, &cfg);
        ChordNet {
            cfg,
            nodes: (0..capacity).map(|_| None).collect(),
            books,
            route_cache: RouteCache::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// Grows capacity to at least `n` slots.
    pub fn grow(&mut self, n: usize) {
        while self.nodes.len() < n {
            self.nodes.push(None);
        }
        self.books.grow_owners(n);
    }

    /// Read access to a node's state (scalar core plus pooled books).
    pub fn state(&self, node: NodeId) -> Option<ChordStateRef<'_>> {
        let owner = node.index();
        let core = self.nodes.get(owner).and_then(Option::as_ref)?;
        Some(ChordStateRef {
            core,
            books: &self.books,
            owner,
        })
    }

    /// Splits out one node's mutable scalar core alongside the shared
    /// books (the two live in disjoint fields, so the borrows coexist).
    /// Also versions the node's cached route decisions out from under it:
    /// any mutable access may change routing-relevant state.
    fn state_mut(&mut self, node: NodeId) -> Option<(&mut ChordState, &mut Books)> {
        self.route_cache.bump(node);
        let core = self.nodes.get_mut(node.index()).and_then(Option::as_mut)?;
        Some((core, &mut self.books))
    }

    /// Number of nodes currently holding ring state.
    pub fn member_count(&self) -> usize {
        self.nodes.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over current members.
    pub fn members(&self) -> impl Iterator<Item = ChordStateRef<'_>> + '_ {
        self.nodes.iter().enumerate().filter_map(|(owner, slot)| {
            slot.as_ref().map(|core| ChordStateRef {
                core,
                books: &self.books,
                owner,
            })
        })
    }

    /// An oracle snapshot of the current membership (tests, static setup).
    pub fn oracle(&self) -> OracleRing {
        OracleRing::from_members(self.members().map(|s| s.me()))
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// The first node bootstraps a singleton ring.
    pub fn bootstrap(&mut self, me: Peer) {
        self.grow(me.node.index() + 1);
        let mut st = ChordState::new(me, &self.cfg);
        st.joined = true;
        self.route_cache.bump(me.node);
        // Slots are recycled across churn sessions: scrub any books left
        // behind by a previous tenancy before installing fresh state.
        self.books.clear_owner(me.node.index());
        self.nodes[me.node.index()] = Some(st);
    }

    /// Starts a join: `me` asks `via` (any ring member) to locate its
    /// successor. The join completes when [`ChordEvent::JoinComplete`]
    /// fires; retry with [`ChordNet::retry_join`] if it does not.
    pub fn join(&mut self, me: Peer, via: NodeId, out: &mut Outbox) {
        self.grow(me.node.index() + 1);
        self.route_cache.bump(me.node);
        self.books.clear_owner(me.node.index());
        self.nodes[me.node.index()] = Some(ChordState::new(me, &self.cfg));
        out.send(
            me.node,
            via,
            ChordMsg::FindSucc {
                key: me.id,
                origin: me,
                token: RouteToken::Join,
                ttl: FIND_TTL,
            },
            "chord.find",
        );
    }

    /// Re-sends the join lookup (host calls this on a timer while
    /// `!is_joined`).
    pub fn retry_join(&mut self, node: NodeId, via: NodeId, out: &mut Outbox) {
        let Some(st) = self.state(node) else { return };
        if st.is_joined() {
            return;
        }
        let me = st.me();
        out.send(
            node,
            via,
            ChordMsg::FindSucc {
                key: me.id,
                origin: me,
                token: RouteToken::Join,
                ttl: FIND_TTL,
            },
            "chord.find",
        );
    }

    /// Graceful leave: notifies the predecessor and successor and drops the
    /// state. Returns the final `(predecessor, successor)` so the host can
    /// transfer application keys to the successor.
    pub fn leave(
        &mut self,
        node: NodeId,
        out: &mut Outbox,
    ) -> Option<(Option<Peer>, Option<Peer>)> {
        self.route_cache.bump(node);
        let st = self.nodes.get_mut(node.index())?.take()?;
        let me = st.me;
        let pred = st.pred;
        let succ = self.books.succs.first(node.index());
        self.books.clear_owner(node.index());
        if let Some(p) = pred {
            out.send(
                node,
                p.node,
                ChordMsg::LeaveToPred {
                    leaving: me,
                    new_succ: succ,
                },
                "chord.leave",
            );
        }
        if let Some(s) = succ {
            out.send(
                node,
                s.node,
                ChordMsg::LeaveToSucc {
                    leaving: me,
                    new_pred: pred,
                },
                "chord.leave",
            );
        }
        Some((pred, succ))
    }

    /// Abrupt failure: state vanishes with no goodbye. Peers find out
    /// through stabilization.
    pub fn fail(&mut self, node: NodeId) {
        self.route_cache.bump(node);
        if let Some(slot) = self.nodes.get_mut(node.index()) {
            if slot.take().is_some() {
                self.books.clear_owner(node.index());
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Processes one incoming Chord message at `node`.
    pub fn handle(&mut self, node: NodeId, from: NodeId, msg: ChordMsg, out: &mut Outbox) {
        let owner = node.index();
        match self.state_mut(node) {
            // Direct contact proves liveness.
            Some((st, books)) => books.unsuspect(st, owner, from),
            None => return, // state already dropped (left/failed)
        }
        match msg {
            ChordMsg::FindSucc {
                key,
                origin,
                token,
                ttl,
            } => {
                self.handle_find(node, key, origin, token, ttl, out);
            }
            ChordMsg::FoundSucc { key, succ, token } => {
                self.handle_found(node, key, succ, token, out);
            }
            ChordMsg::GetPred { from: prober } => {
                let pred_ttl = self.cfg.pred_ttl_ticks;
                let (st, books) = self.state_mut(node).expect("checked above");
                // A probe from our predecessor proves it is alive.
                if st.pred.map(|p| p.node == prober.node).unwrap_or(false) {
                    st.pred_ttl = pred_ttl;
                }
                let reply = ChordMsg::PredReply {
                    pred: st.pred,
                    succs: books.succs.iter(owner).collect(),
                    dead: st.recent_dead.iter().map(|&(n, _, h)| (n, h)).collect(),
                };
                books.learn(st, owner, prober);
                out.send(node, from, reply, "chord.stab");
            }
            ChordMsg::PredReply { pred, succs, dead } => {
                self.handle_pred_reply(node, from, pred, succs, dead, out);
            }
            ChordMsg::Notify { peer } => {
                self.handle_notify(node, peer, out);
            }
            ChordMsg::LeaveToPred { leaving, new_succ } => {
                let (st, books) = self.state_mut(node).expect("checked above");
                books.forget(st, owner, leaving.node);
                if let Some(s) = new_succ {
                    books.learn(st, owner, s);
                }
            }
            ChordMsg::LeaveToSucc { leaving, new_pred } => {
                let pred_ttl = self.cfg.pred_ttl_ticks;
                let (st, books) = self.state_mut(node).expect("checked above");
                let was_pred = st.pred.map(|p| p.node == leaving.node).unwrap_or(false);
                books.forget(st, owner, leaving.node);
                if was_pred {
                    st.pred = new_pred;
                    st.pred_ttl = pred_ttl;
                    // Ownership arc grows — no key handover needed (we keep
                    // serving the departed arc until a new node claims it).
                }
                if let Some(p) = new_pred {
                    books.learn(st, owner, p);
                }
            }
        }
    }

    fn handle_find(
        &mut self,
        node: NodeId,
        key: ChordId,
        origin: Peer,
        token: RouteToken,
        ttl: u8,
        out: &mut Outbox,
    ) {
        let owner = node.index();
        let (st, books) = self.state_mut(node).expect("caller checked");
        books.learn(st, owner, origin);
        let me = st.me;
        let answer = |out: &mut Outbox, succ: Peer| {
            out.send(
                node,
                origin.node,
                ChordMsg::FoundSucc { key, succ, token },
                "chord.found",
            );
        };
        // The origin must never be its own answer or a forwarding hop —
        // when a joiner resolves its own ID the result has to be its future
        // successor among the *existing* members (we may have already
        // learned the joiner into our tables above).
        let skip = origin.node;
        let succ = books.succs.iter(owner).find(|p| p.node != skip);
        let Some(succ) = succ else {
            // No other member known: I am the ring (or all I know is the
            // origin itself) — I own everything else.
            answer(out, me);
            return;
        };
        // Owner checks: me, then my successor.
        if let Some(pred) = st.pred {
            if key.in_open_closed(pred.id, me.id) {
                answer(out, me);
                return;
            }
        }
        if key.in_open_closed(me.id, succ.id) {
            answer(out, succ);
            return;
        }
        if ttl == 0 {
            return; // loop guard: drop, origin retries
        }
        let hop = books
            .best_hop(st, owner, key)
            .filter(|p| p.node != skip && p.node != node)
            .unwrap_or(succ);
        out.send(
            node,
            hop.node,
            ChordMsg::FindSucc {
                key,
                origin,
                token,
                ttl: ttl - 1,
            },
            "chord.find",
        );
    }

    fn handle_found(
        &mut self,
        node: NodeId,
        key: ChordId,
        succ: Peer,
        token: RouteToken,
        out: &mut Outbox,
    ) {
        let owner = node.index();
        let (st, books) = self.state_mut(node).expect("caller checked");
        books.learn(st, owner, succ);
        match token {
            RouteToken::Join => {
                if succ.node == node {
                    // A self-answer cannot complete a join; stay unjoined so
                    // the host's retry timer tries again.
                    return;
                }
                if !st.joined {
                    st.joined = true;
                    books.succs.offer(owner, st.me.id, succ);
                    out.events.push(ChordEvent::JoinComplete { node });
                    if let Some(s) = books.succs.first(owner) {
                        out.send(
                            node,
                            s.node,
                            ChordMsg::Notify { peer: st.me },
                            "chord.notify",
                        );
                        // Jump-start convergence: probe the successor now
                        // rather than waiting for the next stabilize tick.
                        out.send(
                            node,
                            s.node,
                            ChordMsg::GetPred { from: st.me },
                            "chord.stab",
                        );
                    }
                }
            }
            RouteToken::Finger(k) => {
                st.pending_fingers.retain(|&(pk, _)| pk != k);
                if succ.node != node {
                    books.fingers.set(owner, k, succ);
                }
            }
            RouteToken::App(cookie) => {
                out.events.push(ChordEvent::AppLookupDone {
                    node,
                    key,
                    owner: succ,
                    cookie,
                });
            }
        }
    }

    fn handle_pred_reply(
        &mut self,
        node: NodeId,
        from: NodeId,
        pred: Option<Peer>,
        succs: Vec<Peer>,
        dead: Vec<(NodeId, u8)>,
        out: &mut Outbox,
    ) {
        let owner = node.index();
        let (st, books) = self.state_mut(node).expect("caller checked");
        if st.stab_pending_to == Some(from) {
            st.stab_pending_to = None;
        }
        if st.probe_pending == Some(from) {
            st.probe_pending = None;
        }
        books.probe_misses.remove(owner, from.0);
        // Epidemic death gossip: adopt the replier's recent declarations
        // (never against ourselves or the replier, who is clearly alive)
        // and re-gossip them with one hop fewer.
        for (d, hops) in dead {
            if d != node && d != from {
                books.forget_with_hops(st, owner, d, hops.saturating_sub(1));
            }
        }
        let me = st.me;
        let old_first = books.succs.first(owner);
        // Adopt the successor's predecessor if it sits between us.
        if let Some(p) = pred {
            if p.node != node {
                if let Some(s) = books.succs.first(owner) {
                    if p.id.in_open(me.id, s.id) {
                        books.learn(st, owner, p);
                    }
                }
            }
        }
        // Merge the successor's list for fault tolerance (through learn(),
        // so suspected-dead entries in the gossip are ignored).
        for p in succs {
            if p.node != node {
                books.learn(st, owner, p);
            }
        }
        // Tell the (possibly new) working successor about us.
        if let Some(s) = books.succs.first(owner) {
            out.send(node, s.node, ChordMsg::Notify { peer: me }, "chord.notify");
            // A closer successor was just adopted: probe it immediately so
            // the ring walks all the way to the true successor without
            // waiting a full stabilize period per step.
            if old_first.map(|o| o.node != s.node).unwrap_or(true) {
                st.stab_pending_to = Some(s.node);
                out.send(node, s.node, ChordMsg::GetPred { from: me }, "chord.stab");
            }
        }
    }

    fn handle_notify(&mut self, node: NodeId, peer: Peer, out: &mut Outbox) {
        let pred_ttl = self.cfg.pred_ttl_ticks;
        let owner = node.index();
        let (st, books) = self.state_mut(node).expect("caller checked");
        if peer.node == node {
            return;
        }
        let adopt = match st.pred {
            None => true,
            Some(p) => peer.id.in_open(p.id, st.me.id),
        };
        books.learn(st, owner, peer);
        if adopt {
            st.pred = Some(peer);
            st.pred_ttl = pred_ttl;
            out.events.push(ChordEvent::PredChanged {
                node,
                new_pred: peer,
            });
        }
    }

    // ------------------------------------------------------------------
    // Periodic maintenance
    // ------------------------------------------------------------------

    /// One stabilization tick for `node`: suspicion checks, a `GetPred`
    /// probe to the working successor, one liveness probe to a deep
    /// successor-list entry (round-robin — deep entries double as routing
    /// hops, so corpses must be flushed out of the whole list), and
    /// predecessor expiry.
    pub fn tick_stabilize(&mut self, node: NodeId, out: &mut Outbox) {
        let threshold = self.cfg.suspicion_misses.max(1);
        let owner = node.index();
        let Some((st, books)) = self.state_mut(node) else {
            return;
        };
        st.tick += 1;
        // Death gossip expires after 10 ticks (the ring has flushed by
        // then; unbounded gossip would keep rejoined nodes banned).
        let now_tick = st.tick;
        st.recent_dead
            .retain(|&(_, t, _)| now_tick.saturating_sub(t) < 10);
        books
            .suspected
            .retain(owner, |_, t| now_tick.saturating_sub(t) < SUSPECT_TTL_TICKS);
        // Unanswered probes from last tick → count a miss; declare death
        // only after `suspicion_misses` consecutive silent rounds.
        fn declare(
            books: &mut Books,
            st: &mut ChordState,
            owner: usize,
            threshold: u32,
            node: NodeId,
            out: &mut Outbox,
            suspect: NodeId,
        ) {
            let misses = books.probe_misses.get(owner, suspect.0).unwrap_or(0) + 1;
            books.probe_misses.insert(owner, suspect.0, misses);
            if misses >= threshold && books.succs.contains_node(owner, suspect) {
                books.probe_misses.remove(owner, suspect.0);
                books.forget(st, owner, suspect);
                out.events.push(ChordEvent::SuccessorDeclaredDead {
                    node,
                    dead: suspect,
                });
            }
        }
        if let Some(suspect) = st.stab_pending_to.take() {
            declare(books, st, owner, threshold, node, out, suspect);
        }
        if let Some(suspect) = st.probe_pending.take() {
            declare(books, st, owner, threshold, node, out, suspect);
        }
        // Predecessor expiry.
        if st.pred.is_some() {
            st.pred_ttl = st.pred_ttl.saturating_sub(1);
            if st.pred_ttl == 0 {
                st.pred = None;
            }
        }
        let me = st.me;
        if let Some(s) = books.succs.first(owner) {
            st.stab_pending_to = Some(s.node);
            out.send(node, s.node, ChordMsg::GetPred { from: me }, "chord.stab");
        }
        // Deep probe: one non-head successor-list entry per tick, rotating
        // from the position after the last probed entry so every slot is
        // covered within `len` ticks even as the list shrinks.
        let deep_len = books.succs.len(owner).saturating_sub(1);
        if deep_len > 0 {
            let deep = || books.succs.iter(owner).skip(1);
            let start = match st.last_deep_probe {
                Some(last) => deep()
                    .position(|p| p.node == last)
                    .map(|i| (i + 1) % deep_len)
                    .unwrap_or(0),
                None => 0,
            };
            let target = deep().nth(start).expect("start < deep_len");
            st.last_deep_probe = Some(target.node);
            st.probe_pending = Some(target.node);
            out.send(
                node,
                target.node,
                ChordMsg::GetPred { from: me },
                "chord.stab",
            );
        }
    }

    /// One finger-maintenance tick: issues lookups for the next few finger
    /// starts (round-robin). Lookups from the previous tick that were never
    /// answered indicate a dead hop; that hop is cleared from the finger
    /// table so the next attempt routes around it.
    pub fn tick_fix_fingers(&mut self, node: NodeId, out: &mut Outbox) {
        let per = self.cfg.fingers_per_tick;
        let owner = node.index();
        let Some((st, books)) = self.state_mut(node) else {
            return;
        };
        if books.succs.is_empty(owner) {
            return; // singleton or not joined: nothing to fix
        }
        // Drop hops whose lookups vanished from the finger table only — the
        // loss may have been farther down the path, so this is weak evidence
        // and does not tombstone (the hop can be re-learned from gossip or
        // a later answer immediately).
        let stale = std::mem::take(&mut st.pending_fingers);
        for &(_, hop) in stale.iter() {
            books.fingers.remove_node(owner, hop);
        }
        let me = st.me;
        let mut k = st.next_finger;
        st.next_finger = (st.next_finger + per) % crate::id::ID_BITS;
        for _ in 0..per {
            let start = me.id.finger_start(k);
            // Resolve locally when we already know the owner.
            let answered = {
                let succ = books.succs.first(owner).expect("non-empty checked above");
                if let Some(pred) = st.pred {
                    if start.in_open_closed(pred.id, me.id) {
                        books.fingers.clear(owner, k); // we own it ourselves
                        true
                    } else if start.in_open_closed(me.id, succ.id) {
                        books.fingers.set(owner, k, succ);
                        true
                    } else {
                        false
                    }
                } else if start.in_open_closed(me.id, succ.id) {
                    books.fingers.set(owner, k, succ);
                    true
                } else {
                    false
                }
            };
            if !answered {
                let succ = books.succs.first(owner).expect("non-empty checked above");
                let hop = books.best_hop(st, owner, start).unwrap_or(succ);
                let hop = if hop.node == node { succ } else { hop };
                st.pending_fingers.push((k, hop.node));
                out.send(
                    node,
                    hop.node,
                    ChordMsg::FindSucc {
                        key: start,
                        origin: me,
                        token: RouteToken::Finger(k),
                        ttl: FIND_TTL,
                    },
                    "chord.find",
                );
            }
            k = (k + 1) % crate::id::ID_BITS;
        }
    }

    // ------------------------------------------------------------------
    // Application routing
    // ------------------------------------------------------------------

    /// Starts an application lookup for `key`; the host delivers the
    /// produced messages and eventually receives
    /// [`ChordEvent::AppLookupDone`].
    pub fn app_lookup(&mut self, node: NodeId, key: ChordId, cookie: u64, out: &mut Outbox) {
        let Some(st) = self.state(node) else { return };
        let me = st.me();
        self.handle_find(node, key, me, RouteToken::App(cookie), FIND_TTL, out);
    }

    /// Greedy next-hop decision for a host-routed message keyed by `key`.
    ///
    /// Hosts that piggyback application payloads hop-by-hop (as DCO does for
    /// `Insert`/`Lookup`) call this at every hop.
    pub fn route_next(&self, node: NodeId, key: ChordId) -> Option<RouteDecision> {
        let owner = node.index();
        let st = self.nodes.get(owner).and_then(Option::as_ref)?;
        let me = st.me;
        let Some(succ) = self.books.succs.first(owner) else {
            return Some(RouteDecision::Deliver); // singleton owns all
        };
        if let Some(pred) = st.pred {
            if key.in_open_closed(pred.id, me.id) {
                return Some(RouteDecision::Deliver);
            }
        }
        if key.in_open_closed(me.id, succ.id) {
            return Some(RouteDecision::DeliverAt(succ));
        }
        let hop = self.books.best_hop(st, owner, key).unwrap_or(succ);
        let hop = if hop.node == node { succ } else { hop };
        Some(RouteDecision::Forward(hop))
    }

    /// Memoized [`ChordNet::route_next`], reduced to node ids.
    ///
    /// Identical decisions, cached per (node, key) and invalidated whenever
    /// the deciding node's state mutates. Hop-by-hop hosts (DCO's
    /// `Insert`/`Lookup` routing) should prefer this; it turns each hop of
    /// a stable ring into one array read instead of a finger-table scan.
    pub fn route_next_cached(&mut self, node: NodeId, key: ChordId) -> Option<RouteStep> {
        let Some(slot) = self.route_cache.slot_of(key) else {
            return self.route_next(node, key).map(RouteStep::of);
        };
        self.route_cache.ensure(node);
        if let Some(step) = self.route_cache.get(node, slot) {
            debug_assert_eq!(Some(step), self.route_next(node, key).map(RouteStep::of));
            return Some(step);
        }
        let step = RouteStep::of(self.route_next(node, key)?);
        self.route_cache.put(node, slot, step);
        Some(step)
    }

    // ------------------------------------------------------------------
    // Static construction (no-churn experiments)
    // ------------------------------------------------------------------

    /// Builds a fully converged ring over `peers` in one shot: perfect
    /// predecessor/successor pointers, full successor lists and exact
    /// finger tables. This matches the paper's no-churn setting where "all
    /// nodes form a DHT" before streaming starts.
    pub fn build_static(peers: &[Peer], cfg: ChordConfig) -> Self {
        let cap = peers.iter().map(|p| p.node.index() + 1).max().unwrap_or(0);
        let mut net = ChordNet::new(cap, cfg);
        let oracle = OracleRing::from_members(peers.iter().copied());
        for &p in peers {
            let slot = p.node.index();
            let mut st = ChordState::new(p, &net.cfg);
            st.joined = true;
            if peers.len() > 1 {
                st.pred = oracle.predecessor(p.id).filter(|q| q.node != p.node);
                for s in oracle.successors(p.id, net.cfg.successor_list_len) {
                    net.books.succs.offer(slot, p.id, s);
                }
                for k in 0..crate::id::ID_BITS {
                    if let Some(owner) = oracle.owner(p.id.finger_start(k)) {
                        if owner.node != p.node {
                            net.books.fingers.set(slot, k, owner);
                        }
                    }
                }
            }
            net.nodes[slot] = Some(st);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_node;

    fn peer_of(node: u32) -> Peer {
        Peer::new(hash_node(NodeId(node)), NodeId(node))
    }

    /// Delivers all outbox sends synchronously until quiescence.
    /// Returns the events produced and the number of messages exchanged.
    fn pump(net: &mut ChordNet, out: &mut Outbox) -> (Vec<ChordEvent>, usize) {
        let mut events = Vec::new();
        let mut msgs = 0;
        while !out.sends.is_empty() {
            let sends = std::mem::take(&mut out.sends);
            events.append(&mut out.events);
            for s in sends {
                msgs += 1;
                net.handle(s.to, s.from, s.msg, out);
            }
        }
        events.append(&mut out.events);
        (events, msgs)
    }

    fn converge(net: &mut ChordNet, nodes: &[NodeId], rounds: usize) {
        let mut out = Outbox::new();
        for _ in 0..rounds {
            for &n in nodes {
                net.tick_stabilize(n, &mut out);
                net.tick_fix_fingers(n, &mut out);
            }
            pump(net, &mut out);
        }
    }

    #[test]
    fn static_ring_matches_oracle() {
        let peers: Vec<Peer> = (0..32).map(peer_of).collect();
        let net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = net.oracle();
        for p in &peers {
            let st = net.state(p.node).unwrap();
            assert_eq!(st.successor(), oracle.successor(p.id), "succ of {p:?}");
            assert_eq!(st.predecessor(), oracle.predecessor(p.id), "pred of {p:?}");
            assert!(st.is_joined());
        }
    }

    #[test]
    fn static_ring_routes_to_owner() {
        let peers: Vec<Peer> = (0..64).map(peer_of).collect();
        let net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = net.oracle();
        for i in 0..200u64 {
            let key = ChordId(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let want = oracle.owner(key).unwrap();
            // Walk greedy routing from node 0.
            let mut at = NodeId(0);
            let mut hops = 0;
            loop {
                match net.route_next(at, key).unwrap() {
                    RouteDecision::Deliver => break,
                    RouteDecision::DeliverAt(p) => {
                        at = p.node;
                        hops += 1;
                        let _ = hops;
                        break;
                    }
                    RouteDecision::Forward(p) => {
                        at = p.node;
                        hops += 1;
                        assert!(hops <= 64, "routing loop for key {key:?}");
                    }
                }
            }
            assert_eq!(at, want.node, "key {key:?}");
            assert!(hops <= 12, "hops {hops} way past log2(64) for {key:?}");
        }
    }

    #[test]
    fn app_lookup_on_static_ring() {
        let peers: Vec<Peer> = (0..16).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = net.oracle();
        let key = ChordId(0xDEAD_BEEF);
        let mut out = Outbox::new();
        net.app_lookup(NodeId(3), key, 77, &mut out);
        let (events, _msgs) = pump(&mut net, &mut out);
        let done: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                ChordEvent::AppLookupDone {
                    node,
                    key: k,
                    owner,
                    cookie,
                } => Some((*node, *k, *owner, *cookie)),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), 1);
        let (n, k, owner, cookie) = done[0];
        assert_eq!(n, NodeId(3));
        assert_eq!(k, key);
        assert_eq!(cookie, 77);
        assert_eq!(owner.node, oracle.owner(key).unwrap().node);
    }

    #[test]
    fn sequential_joins_converge_to_oracle() {
        let mut net = ChordNet::new(0, ChordConfig::default());
        let mut out = Outbox::new();
        net.bootstrap(peer_of(0));
        let mut members = vec![NodeId(0)];
        for i in 1..24u32 {
            net.join(peer_of(i), NodeId(0), &mut out);
            let (events, _) = pump(&mut net, &mut out);
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, ChordEvent::JoinComplete { node } if *node == NodeId(i))),
                "join {i} did not complete"
            );
            members.push(NodeId(i));
            converge(&mut net, &members, 3);
        }
        converge(&mut net, &members, 8);
        let oracle = net.oracle();
        for &n in &members {
            let st = net.state(n).unwrap();
            assert_eq!(
                st.successor().map(|p| p.node),
                oracle.successor(st.me().id).map(|p| p.node),
                "successor of {n}"
            );
            assert_eq!(
                st.predecessor().map(|p| p.node),
                oracle.predecessor(st.me().id).map(|p| p.node),
                "predecessor of {n}"
            );
        }
    }

    #[test]
    fn graceful_leave_repairs_ring() {
        let peers: Vec<Peer> = (0..12).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let mut out = Outbox::new();
        let oracle_before = net.oracle();
        let leaver = NodeId(5);
        let leaver_id = peer_of(5).id;
        let pred = oracle_before.predecessor(leaver_id).unwrap();
        let succ = oracle_before.successor(leaver_id).unwrap();

        let (p, s) = net.leave(leaver, &mut out).unwrap();
        assert_eq!(p.unwrap().node, pred.node);
        assert_eq!(s.unwrap().node, succ.node);
        pump(&mut net, &mut out);

        // Predecessor now points past the leaver.
        assert_eq!(
            net.state(pred.node).unwrap().successor().unwrap().node,
            succ.node
        );
        assert_eq!(
            net.state(succ.node).unwrap().predecessor().unwrap().node,
            pred.node
        );
        assert!(net.state(leaver).is_none());
    }

    #[test]
    fn failure_is_detected_by_stabilization() {
        let peers: Vec<Peer> = (0..10).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = net.oracle();
        let victim = NodeId(4);
        let victim_id = peer_of(4).id;
        let pred = oracle.predecessor(victim_id).unwrap();
        let succ = oracle.successor(victim_id).unwrap();

        net.fail(victim);
        let alive: Vec<NodeId> = (0..10).map(NodeId).filter(|&n| n != victim).collect();
        converge(&mut net, &alive, 6);

        let st = net.state(pred.node).unwrap();
        assert_eq!(
            st.successor().unwrap().node,
            succ.node,
            "predecessor routed around the failure"
        );
        assert!(
            !st.successor_list().iter().any(|p| p.node == victim),
            "dead node purged from successor list"
        );
        // No finger still points at the corpse after convergence.
        for &n in &alive {
            let st = net.state(n).unwrap();
            assert!(
                st.fingers()
                    .distinct_peers()
                    .iter()
                    .all(|p| p.node != victim),
                "{n} still fingers the dead node"
            );
        }
    }

    #[test]
    fn routing_works_after_churn() {
        let peers: Vec<Peer> = (0..20).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let mut out = Outbox::new();
        // Kill 3, gracefully remove 2, join 2 new.
        net.fail(NodeId(3));
        net.fail(NodeId(11));
        net.fail(NodeId(17));
        net.leave(NodeId(6), &mut out);
        net.leave(NodeId(13), &mut out);
        pump(&mut net, &mut out);
        net.join(peer_of(20), NodeId(0), &mut out);
        net.join(peer_of(21), NodeId(1), &mut out);
        pump(&mut net, &mut out);
        let alive: Vec<NodeId> = (0..22u32)
            .map(NodeId)
            .filter(|n| ![3u32, 6, 11, 13, 17].contains(&n.0))
            .collect();
        for _ in 0..10 {
            // Joins can be lost through not-yet-repaired fingers; retry
            // like the host's join-retry timer would.
            for &n in &alive {
                if !net.state(n).map(|s| s.is_joined()).unwrap_or(true) {
                    net.retry_join(n, NodeId(0), &mut out);
                }
            }
            converge(&mut net, &alive, 1);
        }

        let oracle = net.oracle();
        assert_eq!(oracle.len(), alive.len());
        for i in 0..100u64 {
            let key = ChordId(i.wrapping_mul(0x6C62_272E_07BB_0142));
            let want = oracle.owner(key).unwrap().node;
            let mut at = alive[i as usize % alive.len()];
            let mut hops = 0;
            loop {
                match net.route_next(at, key).unwrap() {
                    RouteDecision::Deliver => break,
                    RouteDecision::DeliverAt(p) => {
                        at = p.node;
                        hops += 1;
                        let _ = hops;
                        break;
                    }
                    RouteDecision::Forward(p) => {
                        at = p.node;
                        hops += 1;
                        assert!(hops <= 64, "loop for {key:?}");
                    }
                }
            }
            assert_eq!(at, want, "key {key:?} routed to wrong owner");
        }
    }

    #[test]
    fn pred_changed_event_fires_on_new_predecessor() {
        let mut net = ChordNet::new(0, ChordConfig::default());
        let mut out = Outbox::new();
        net.bootstrap(peer_of(0));
        net.join(peer_of(1), NodeId(0), &mut out);
        let (events, _) = pump(&mut net, &mut out);
        assert!(events
            .iter()
            .any(|e| matches!(e, ChordEvent::PredChanged { node, .. } if *node == NodeId(0))));
    }

    #[test]
    fn find_ttl_guards_against_loops() {
        let peers: Vec<Peer> = (0..4).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let mut out = Outbox::new();
        // TTL 0 at a node that must forward → message silently dropped.
        let key_owned_elsewhere = {
            let oracle = net.oracle();
            // pick a key NOT owned by node 0 or its successor.
            let mut k = ChordId(1);
            loop {
                let owner = oracle.owner(k).unwrap();
                let st = net.state(NodeId(0)).unwrap();
                let succ = st.successor().unwrap();
                if owner.node != NodeId(0) && owner.node != succ.node {
                    break k;
                }
                k = ChordId(k.0.wrapping_add(0x1234_5678_9ABC_DEF1));
            }
        };
        net.handle(
            NodeId(0),
            NodeId(1),
            ChordMsg::FindSucc {
                key: key_owned_elsewhere,
                origin: peer_of(1),
                token: RouteToken::App(1),
                ttl: 0,
            },
            &mut out,
        );
        assert!(out.sends.is_empty(), "TTL-0 forward must be dropped");
    }

    #[test]
    fn member_count_and_grow() {
        let mut net = ChordNet::new(2, ChordConfig::default());
        assert_eq!(net.member_count(), 0);
        net.bootstrap(peer_of(7)); // forces grow
        assert_eq!(net.member_count(), 1);
        assert!(net.state(NodeId(7)).is_some());
        assert!(net.state(NodeId(3)).is_none());
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use crate::hash::hash_node;
    use dco_sim::node::NodeId;

    fn peer_of(node: u32) -> Peer {
        Peer::new(hash_node(NodeId(node)), NodeId(node))
    }

    fn pump(net: &mut ChordNet, out: &mut Outbox) {
        while !out.sends.is_empty() {
            let sends = std::mem::take(&mut out.sends);
            for s in sends {
                net.handle(s.to, s.from, s.msg, out);
            }
        }
        out.events.clear();
    }

    #[test]
    fn one_missed_probe_does_not_kill_a_successor() {
        // With suspicion_misses = 3, losing one stabilize reply must not
        // amputate the (alive) successor.
        let peers: Vec<Peer> = (0..6).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let victim_succ = net.state(NodeId(0)).unwrap().successor().unwrap();
        let mut out = Outbox::new();
        // Tick WITHOUT delivering the probes (simulated loss), once.
        net.tick_stabilize(NodeId(0), &mut out);
        out.sends.clear(); // lose every probe
        net.tick_stabilize(NodeId(0), &mut out);
        // One miss recorded; successor still in place.
        assert_eq!(
            net.state(NodeId(0)).unwrap().successor(),
            Some(victim_succ),
            "successor evicted after a single missed probe"
        );
        pump(&mut net, &mut out);
    }

    #[test]
    fn three_missed_probes_do_kill_a_successor() {
        let peers: Vec<Peer> = (0..6).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let succ = net.state(NodeId(0)).unwrap().successor().unwrap();
        net.fail(succ.node);
        let mut out = Outbox::new();
        let mut declared = false;
        for _ in 0..5 {
            net.tick_stabilize(NodeId(0), &mut out);
            // Deliver probes (those to the dead node vanish inside handle).
            pump(&mut net, &mut out);
            if net
                .state(NodeId(0))
                .unwrap()
                .successor()
                .map(|p| p.node != succ.node)
                .unwrap_or(false)
            {
                declared = true;
                break;
            }
        }
        assert!(declared, "dead successor never evicted");
        assert!(net.state(NodeId(0)).unwrap().suspects(succ.node));
    }

    #[test]
    fn tombstones_expire_after_suspect_ttl() {
        let peers: Vec<Peer> = (0..4).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let succ = net.state(NodeId(0)).unwrap().successor().unwrap();
        net.fail(succ.node);
        let mut out = Outbox::new();
        // Drive until declared dead.
        for _ in 0..6 {
            net.tick_stabilize(NodeId(0), &mut out);
            pump(&mut net, &mut out);
        }
        assert!(net.state(NodeId(0)).unwrap().suspects(succ.node));
        // Tick ALL survivors past the TTL (gossip refreshes tombstones only
        // while some replier still carries the death in its recent list, and
        // that list is pruned on the replier's own ticks).
        let alive: Vec<NodeId> = (0..4u32).map(NodeId).filter(|&n| n != succ.node).collect();
        for _ in 0..(2 * SUSPECT_TTL_TICKS) {
            for &n in &alive {
                net.tick_stabilize(n, &mut out);
            }
            pump(&mut net, &mut out);
        }
        assert!(
            !net.state(NodeId(0)).unwrap().suspects(succ.node),
            "tombstone survived past its TTL"
        );
    }

    #[test]
    fn death_gossip_spreads_to_the_predecessor() {
        let peers: Vec<Peer> = (0..8).map(peer_of).collect();
        let mut net = ChordNet::build_static(&peers, ChordConfig::default());
        let oracle = net.oracle();
        // Ring order: a → b → c; kill c, let b detect it, then verify a
        // learns of the death through b's PredReply gossip.
        let a = oracle.iter().next().unwrap();
        let b = oracle.successor(a.id).unwrap();
        let c = oracle.successor(b.id).unwrap();
        net.fail(c.node);
        let mut out = Outbox::new();
        let all: Vec<NodeId> = peers
            .iter()
            .map(|p| p.node)
            .filter(|&n| n != c.node)
            .collect();
        for _ in 0..6 {
            for &n in &all {
                net.tick_stabilize(n, &mut out);
            }
            pump(&mut net, &mut out);
        }
        assert!(
            net.state(a.node).unwrap().suspects(c.node)
                || !net
                    .state(a.node)
                    .unwrap()
                    .successor_list()
                    .iter()
                    .any(|p| p.node == c.node),
            "predecessor never learned of the death"
        );
    }
}
