//! Chord identifier arithmetic.
//!
//! Chord places nodes and keys on a ring of 2^m points; we use m = 64 so an
//! ID is a plain `u64` and all arithmetic is wrapping. Everything in Chord
//! reduces to two primitives implemented here:
//!
//! * clockwise **distance** from `a` to `b`, and
//! * clockwise **interval membership** — is `x` strictly between `a` and `b`
//!   walking clockwise? (With open/closed variants for each endpoint.)
//!
//! The subtle case is a *wrapping* interval (`a > b` numerically) and the
//! degenerate case `a == b`, which by Chord convention denotes the whole
//! ring (minus the endpoints as dictated by openness).

use core::fmt;

use dco_sim::node::NodeId;

/// Number of bits in the identifier space (m in the Chord paper).
pub const ID_BITS: u32 = 64;

/// A point on the Chord ring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChordId(pub u64);

impl ChordId {
    /// Clockwise distance from `self` to `to` (0 when equal).
    #[inline]
    pub const fn distance_to(self, to: ChordId) -> u64 {
        to.0.wrapping_sub(self.0)
    }

    /// The point `2^k` steps clockwise from `self` — the start of finger
    /// `k`. `k` must be below [`ID_BITS`].
    #[inline]
    pub const fn finger_start(self, k: u32) -> ChordId {
        ChordId(self.0.wrapping_add(1u64 << k))
    }

    /// True if `self` lies in the **open** clockwise interval `(a, b)`.
    ///
    /// When `a == b` the interval is the full ring minus the endpoint.
    #[inline]
    pub fn in_open(self, a: ChordId, b: ChordId) -> bool {
        if a == b {
            self != a
        } else {
            a.distance_to(self) > 0 && a.distance_to(self) < a.distance_to(b)
        }
    }

    /// True if `self` lies in the clockwise **half-open** interval `(a, b]`.
    ///
    /// This is the ownership interval: node `b` owns exactly the keys in
    /// `(predecessor(b), b]`. When `a == b` the interval is the full ring.
    #[inline]
    pub fn in_open_closed(self, a: ChordId, b: ChordId) -> bool {
        if a == b {
            true
        } else {
            let d = a.distance_to(self);
            d > 0 && d <= a.distance_to(b)
        }
    }

    /// True if `self` lies in the clockwise **half-open** interval `[a, b)`.
    #[inline]
    pub fn in_closed_open(self, a: ChordId, b: ChordId) -> bool {
        if a == b {
            true
        } else {
            a.distance_to(self) < a.distance_to(b)
        }
    }
}

impl fmt::Debug for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

impl fmt::Display for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

/// A ring member: its Chord ID plus the simulator address to reach it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Peer {
    /// Position on the ring.
    pub id: ChordId,
    /// Simulator address.
    pub node: NodeId,
}

impl Peer {
    /// Convenience constructor.
    pub const fn new(id: ChordId, node: NodeId) -> Self {
        Peer { id, node }
    }
}

impl fmt::Debug for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.node, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ChordId = ChordId(100);
    const B: ChordId = ChordId(200);

    #[test]
    fn distance_wraps() {
        assert_eq!(A.distance_to(B), 100);
        assert_eq!(B.distance_to(A), u64::MAX - 100 + 1);
        assert_eq!(A.distance_to(A), 0);
    }

    #[test]
    fn finger_starts() {
        assert_eq!(A.finger_start(0), ChordId(101));
        assert_eq!(A.finger_start(3), ChordId(108));
        // Wrapping near the top of the space.
        assert_eq!(ChordId(u64::MAX).finger_start(0), ChordId(0));
    }

    #[test]
    fn open_interval_simple() {
        assert!(ChordId(150).in_open(A, B));
        assert!(!ChordId(100).in_open(A, B), "left endpoint excluded");
        assert!(!ChordId(200).in_open(A, B), "right endpoint excluded");
        assert!(!ChordId(250).in_open(A, B));
        assert!(!ChordId(50).in_open(A, B));
    }

    #[test]
    fn open_interval_wrapping() {
        // (200, 100) crosses zero.
        assert!(ChordId(250).in_open(B, A));
        assert!(ChordId(0).in_open(B, A));
        assert!(ChordId(99).in_open(B, A));
        assert!(!ChordId(150).in_open(B, A));
        assert!(!ChordId(200).in_open(B, A));
        assert!(!ChordId(100).in_open(B, A));
    }

    #[test]
    fn open_interval_degenerate_is_ring_minus_point() {
        assert!(ChordId(5).in_open(A, A));
        assert!(!ChordId(100).in_open(A, A));
    }

    #[test]
    fn open_closed_interval() {
        assert!(ChordId(150).in_open_closed(A, B));
        assert!(ChordId(200).in_open_closed(A, B), "right endpoint included");
        assert!(!ChordId(100).in_open_closed(A, B), "left endpoint excluded");
        assert!(!ChordId(201).in_open_closed(A, B));
        // Wrapping.
        assert!(ChordId(100).in_open_closed(B, A));
        assert!(ChordId(0).in_open_closed(B, A));
        assert!(!ChordId(200).in_open_closed(B, A));
        // Degenerate = whole ring.
        assert!(ChordId(100).in_open_closed(A, A));
        assert!(ChordId(0).in_open_closed(A, A));
    }

    #[test]
    fn closed_open_interval() {
        assert!(ChordId(100).in_closed_open(A, B), "left endpoint included");
        assert!(ChordId(150).in_closed_open(A, B));
        assert!(
            !ChordId(200).in_closed_open(A, B),
            "right endpoint excluded"
        );
        assert!(ChordId(0).in_closed_open(B, A));
        assert!(ChordId(42).in_closed_open(A, A), "degenerate = whole ring");
    }

    #[test]
    fn ownership_partition_is_exact() {
        // Three nodes partition the ring into disjoint ownership arcs.
        let nodes = [ChordId(10), ChordId(1_000), ChordId(u64::MAX - 5)];
        for key in [0u64, 9, 10, 11, 500, 1_000, 1_001, u64::MAX - 6, u64::MAX] {
            let key = ChordId(key);
            let owners: Vec<_> = (0..3)
                .filter(|&i| {
                    let pred = nodes[(i + 2) % 3];
                    key.in_open_closed(pred, nodes[i])
                })
                .collect();
            assert_eq!(owners.len(), 1, "key {key:?} must have exactly one owner");
        }
    }

    #[test]
    fn peer_debug_format() {
        let p = Peer::new(ChordId(0xff), NodeId(3));
        assert_eq!(format!("{p:?}"), "N3@#00000000000000ff");
    }
}
