//! The finger table.
//!
//! Finger `k` of a node at `n` points at `successor(n + 2^k)`; greedy
//! routing forwards a lookup to the **closest preceding finger** of the key,
//! halving the remaining ring distance each hop — that is where Chord's
//! `log n` hop bound comes from.

use dco_sim::node::NodeId;

use crate::id::{ChordId, Peer, ID_BITS};

/// A node's finger table (64 entries for the 64-bit ring).
#[derive(Clone, Debug)]
pub struct FingerTable {
    me: ChordId,
    fingers: Vec<Option<Peer>>,
}

impl FingerTable {
    /// An empty table owned by `me`.
    pub fn new(me: ChordId) -> Self {
        FingerTable {
            me,
            fingers: vec![None; ID_BITS as usize],
        }
    }

    /// The owner's ring position.
    pub fn me(&self) -> ChordId {
        self.me
    }

    /// The start of finger `k`: `me + 2^k`.
    pub fn start(&self, k: u32) -> ChordId {
        self.me.finger_start(k)
    }

    /// Sets finger `k` (the successor of `start(k)` as discovered by a
    /// lookup).
    pub fn set(&mut self, k: u32, peer: Peer) {
        self.fingers[k as usize] = Some(peer);
    }

    /// Clears finger `k`.
    pub fn clear(&mut self, k: u32) {
        self.fingers[k as usize] = None;
    }

    /// Current entry of finger `k`.
    pub fn get(&self, k: u32) -> Option<Peer> {
        self.fingers[k as usize]
    }

    /// Number of populated entries.
    pub fn populated(&self) -> usize {
        self.fingers.iter().filter(|f| f.is_some()).count()
    }

    /// Offers a peer opportunistically: it becomes finger `k` whenever it
    /// lies in `[start(k), me)` and is closer to `start(k)` than the current
    /// entry. (Cheap ring repair without a lookup per finger.)
    pub fn offer(&mut self, p: Peer) {
        if p.id == self.me {
            return;
        }
        for k in 0..ID_BITS {
            let start = self.start(k);
            // p can serve finger k only if p ∈ [start, me) clockwise.
            if !p.id.in_closed_open(start, self.me) {
                continue;
            }
            match self.fingers[k as usize] {
                None => self.fingers[k as usize] = Some(p),
                Some(cur) => {
                    // Closer to start = better approximation of
                    // successor(start).
                    if start.distance_to(p.id) < start.distance_to(cur.id) {
                        self.fingers[k as usize] = Some(p);
                    }
                }
            }
        }
    }

    /// Drops every finger pointing at `node` (declared dead). Returns how
    /// many entries were cleared.
    pub fn remove_node(&mut self, node: NodeId) -> usize {
        let mut cleared = 0;
        for f in &mut self.fingers {
            if f.map(|p| p.node == node).unwrap_or(false) {
                *f = None;
                cleared += 1;
            }
        }
        cleared
    }

    /// The populated finger whose ID most closely **precedes** `key`
    /// clockwise from `me` — the next hop of greedy Chord routing. Returns
    /// `None` if no finger lies strictly between `me` and `key`.
    pub fn closest_preceding(&self, key: ChordId) -> Option<Peer> {
        // Scan from the farthest finger down; the first one inside
        // (me, key) is the closest preceding by construction.
        for f in self.fingers.iter().rev().flatten() {
            if f.id.in_open(self.me, key) {
                return Some(*f);
            }
        }
        None
    }

    /// Iterates over distinct populated fingers (deduplicated by node).
    pub fn distinct_peers(&self) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for f in self.fingers.iter().flatten() {
            if !out.iter().any(|p| p.node == f.node) {
                out.push(*f);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, node: u32) -> Peer {
        Peer::new(ChordId(id), NodeId(node))
    }

    #[test]
    fn starts_are_powers_of_two() {
        let t = FingerTable::new(ChordId(100));
        assert_eq!(t.start(0), ChordId(101));
        assert_eq!(t.start(10), ChordId(100 + 1024));
        assert_eq!(t.me(), ChordId(100));
    }

    #[test]
    fn set_get_clear() {
        let mut t = FingerTable::new(ChordId(0));
        assert_eq!(t.get(5), None);
        t.set(5, peer(40, 4));
        assert_eq!(t.get(5), Some(peer(40, 4)));
        assert_eq!(t.populated(), 1);
        t.clear(5);
        assert_eq!(t.get(5), None);
        assert_eq!(t.populated(), 0);
    }

    #[test]
    fn offer_fills_covering_fingers() {
        let mut t = FingerTable::new(ChordId(0));
        // Peer at 100 covers fingers with start ≤ 100, i.e. k = 0..=6
        // (starts 1,2,4,...,64); start 128 > 100 so k=7 not covered.
        t.offer(peer(100, 1));
        for k in 0..=6 {
            assert_eq!(t.get(k), Some(peer(100, 1)), "finger {k}");
        }
        assert_eq!(t.get(7), None);
        // All higher fingers wrap-around-cover too: start(63) .. me covers
        // 100? start(63) = 2^63, interval [2^63, 0) excludes 100.
        assert_eq!(t.get(63), None);
    }

    #[test]
    fn offer_prefers_closer_to_start() {
        let mut t = FingerTable::new(ChordId(0));
        t.offer(peer(100, 1));
        t.offer(peer(50, 2)); // closer to the small starts
        for k in 0..=5 {
            assert_eq!(t.get(k).unwrap().node, NodeId(2), "finger {k}");
        }
        assert_eq!(t.get(6).unwrap().node, NodeId(1), "start 64: 100 wins");
    }

    #[test]
    fn offer_ignores_self() {
        let mut t = FingerTable::new(ChordId(0));
        t.offer(peer(0, 9));
        assert_eq!(t.populated(), 0);
    }

    #[test]
    fn closest_preceding_picks_farthest_below_key() {
        let mut t = FingerTable::new(ChordId(0));
        t.set(3, peer(8, 1));
        t.set(6, peer(70, 2));
        t.set(10, peer(1500, 3));
        let hop = t.closest_preceding(ChordId(1000)).unwrap();
        assert_eq!(hop.node, NodeId(2), "70 is the closest preceding 1000");
        let hop = t.closest_preceding(ChordId(9)).unwrap();
        assert_eq!(hop.node, NodeId(1));
        assert_eq!(t.closest_preceding(ChordId(5)), None, "no finger in (0,5)");
    }

    #[test]
    fn closest_preceding_handles_wrap() {
        let mut t = FingerTable::new(ChordId(u64::MAX - 10));
        t.offer(peer(5, 1)); // just past zero
        let hop = t.closest_preceding(ChordId(100)).unwrap();
        assert_eq!(hop.node, NodeId(1));
    }

    #[test]
    fn remove_node_clears_all_entries() {
        let mut t = FingerTable::new(ChordId(0));
        t.offer(peer(100, 1));
        let cleared = t.remove_node(NodeId(1));
        assert!(cleared >= 7);
        assert_eq!(t.populated(), 0);
        assert_eq!(t.remove_node(NodeId(1)), 0);
    }

    #[test]
    fn distinct_peers_deduplicates() {
        let mut t = FingerTable::new(ChordId(0));
        t.offer(peer(100, 1));
        t.offer(peer(1 << 20, 2));
        let d = t.distinct_peers();
        assert_eq!(d.len(), 2);
    }
}
