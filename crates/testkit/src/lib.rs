//! A small in-tree property-testing kit.
//!
//! The workspace builds offline with zero external crates, so instead of
//! `proptest` the test suites use this kit: a [`check`] driver that runs a
//! property over many deterministically-seeded random cases, and a [`Gen`]
//! handle the property draws its inputs from.
//!
//! Design points:
//!
//! * **Deterministic by construction** — every case seed is derived from
//!   the property name via SplitMix64, so a suite run is bit-identical on
//!   every platform and never flakes. There is no global RNG and no
//!   wall-clock entropy.
//! * **Replayable failures** — a failing case panics with its case seed;
//!   set `DCO_TESTKIT_REPLAY=<seed>` to re-run exactly that case under a
//!   debugger. `DCO_TESTKIT_CASES=<n>` scales the case count up for soak
//!   runs without touching code.
//! * **No shrinking** — cases are cheap and seeds replay exactly, so we
//!   report the seed instead of shrinking. Properties should keep their
//!   input sizes modest (the `Gen` helpers default to small collections).

use dco_sim::rng::{splitmix64, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-case random input source handed to properties.
pub struct Gen {
    rng: SimRng,
    case_seed: u64,
}

impl Gen {
    /// The seed that fully determines this case (printed on failure).
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// A raw 64-bit draw.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// `true` with probability `p`.
    pub fn weighted_bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A vector of `len_lo..len_hi` elements, each drawn by `f`.
    pub fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Gen::pick on empty slice");
        &xs[self.usize_in(0, xs.len())]
    }

    /// A random subset of `xs` where each element is kept with probability
    /// `keep`.
    pub fn subset<T: Clone>(&mut self, xs: &[T], keep: f64) -> Vec<T> {
        xs.iter()
            .filter(|_| self.weighted_bool(keep))
            .cloned()
            .collect()
    }

    /// A shuffled copy of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut xs: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut xs);
        xs
    }
}

/// Outcome of one property case.
pub type CaseResult = Result<(), String>;

/// FNV-1a over the property name: a stable per-property base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `property` over `cases` deterministically-seeded random cases and
/// panics with a replayable seed on the first failure.
///
/// Environment overrides:
/// * `DCO_TESTKIT_REPLAY=<seed>` — run only the case with that exact seed.
/// * `DCO_TESTKIT_CASES=<n>` — override the case count (soak testing).
pub fn check<F>(name: &str, cases: u64, property: F)
where
    F: Fn(&mut Gen) -> CaseResult,
{
    if let Ok(replay) = std::env::var("DCO_TESTKIT_REPLAY") {
        let seed: u64 = parse_seed(&replay)
            .unwrap_or_else(|| panic!("DCO_TESTKIT_REPLAY={replay:?} is not a seed"));
        run_case(name, u64::MAX, seed, &property);
        return;
    }
    let cases = std::env::var("DCO_TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let base = name_seed(name);
    for i in 0..cases {
        let case_seed = splitmix64(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_case(name, i, case_seed, &property);
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn run_case<F>(name: &str, case: u64, case_seed: u64, property: &F)
where
    F: Fn(&mut Gen) -> CaseResult,
{
    let mut g = Gen {
        rng: SimRng::seed_from_u64(case_seed),
        case_seed,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
    let failure = match outcome {
        Ok(Ok(())) => return,
        Ok(Err(msg)) => msg,
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "panicked".to_string()),
    };
    let which = if case == u64::MAX {
        "replayed case".to_string()
    } else {
        format!("case {case}")
    };
    panic!(
        "property '{name}' failed at {which} (seed {case_seed:#x}); \
         replay with DCO_TESTKIT_REPLAY={case_seed} — {failure}"
    );
}

/// `assert!` that returns a [`CaseResult`] error instead of panicking, so
/// the driver can attach the replay seed.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` in [`CaseResult`] form.
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {} (left: {a:?}, right: {b:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} (left: {a:?}, right: {b:?})",
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        check("always-true", 32, |g| {
            let _ = g.any_u64();
            Ok(())
        });
        // `check` has no side channel; count via a second run with state.
        let counter = std::cell::Cell::new(0u64);
        check("counts", 32, |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, 32);
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("fails-on-large", 64, |g| {
                let x = g.u64_in(0, 100);
                tk_assert!(x < 90, "drew {x}");
                Ok(())
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("DCO_TESTKIT_REPLAY="), "{msg}");
        assert!(msg.contains("drew"), "{msg}");
    }

    #[test]
    fn inner_panics_are_reported_with_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("panics", 8, |g| {
                let xs: [u64; 2] = [1, 2];
                // Deliberate out-of-bounds once the index exceeds 1.
                let i = g.usize_in(0, 10);
                let _ = xs[i];
                Ok(())
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("failed at case"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let drawn = std::cell::RefCell::new(Vec::new());
            check("stable-stream", 16, |g| {
                drawn.borrow_mut().push(g.any_u64());
                Ok(())
            });
            drawn.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        check("gen-bounds", 64, |g| {
            let v = g.vec_of(0, 5, |g| g.u64_in(10, 20));
            tk_assert!(v.len() < 5);
            tk_assert!(v.iter().all(|&x| (10..20).contains(&x)));
            let p = g.permutation(6);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            tk_assert_eq!(sorted, (0..6).collect::<Vec<_>>());
            let f = g.f64_in(-1.0, 1.0);
            tk_assert!((-1.0..1.0).contains(&f));
            Ok(())
        });
    }

    #[test]
    fn different_properties_get_different_streams() {
        let stream = |name: &str| {
            let drawn = std::cell::RefCell::new(Vec::new());
            check(name, 4, |g| {
                drawn.borrow_mut().push(g.any_u64());
                Ok(())
            });
            drawn.into_inner()
        };
        assert_ne!(stream("prop-a"), stream("prop-b"));
    }
}
