//! End-to-end tests of the multi-process binaries: the real `dco-perf`
//! sharded mode (re-exec'd workers over stdio pipes) and the real
//! `dco-sweep --fork-seeds` path, spawned via `CARGO_BIN_EXE_*`.
//!
//! The lib tests (`shard_run`) already prove shard-count invariance over
//! in-memory links; these prove the *process* plumbing — spawn, framed
//! pipes, result harvest, exit codes — on the actual binaries.

use std::process::{Command, Stdio};

fn perf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dco-perf"))
}

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dco-sweep"))
}

/// `dco-perf --shards 2` at a toy population: two worker processes must
/// fold back to the single-process canonical digest, and the report must
/// say so. This is the per-push CI smoke in miniature.
#[test]
fn dco_perf_shards_reproduces_canonical_digest_across_processes() {
    let out = perf()
        .args(["--shards", "2", "--populations", "100", "--stdout"])
        .output()
        .expect("spawn dco-perf");
    assert!(
        out.status.success(),
        "dco-perf --shards 2 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("utf8 report");
    assert!(json.contains("\"schema\": \"dco-shard/v1\""), "{json}");
    assert!(
        json.contains("\"digest_matches_single_process\": true"),
        "{json}"
    );
    assert!(json.contains("\"k_shards\": 2"), "{json}");
}

/// A worker whose orchestrator died (stdin at EOF) must exit nonzero
/// promptly instead of hanging on the dead pipe.
#[test]
fn shard_worker_with_dead_pipe_exits_nonzero_without_hanging() {
    let out = perf()
        .args([
            "--shard-worker",
            "0",
            "--shards",
            "2",
            "--populations",
            "100",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn worker");
    assert!(!out.status.success(), "worker must fail on a dead pipe");
}

/// Nonsense worker coordinates are rejected up front.
#[test]
fn shard_worker_index_out_of_range_is_rejected() {
    let out = perf()
        .args([
            "--shard-worker",
            "5",
            "--shards",
            "2",
            "--populations",
            "100",
        ])
        .stdin(Stdio::null())
        .output()
        .expect("spawn worker");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--shard-worker"), "{err}");
}

/// `--fork-seeds` must write a byte-identical report to the in-process
/// thread pool: same grid, same per-cell digests, same aggregation.
#[test]
fn fork_seeds_report_is_bit_identical_to_in_process() {
    let dir = std::env::temp_dir().join(format!("dco-sweep-fork-test-{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf8 temp dir");
    for (tag, fork) in [("inproc", false), ("forked", true)] {
        let mut cmd = sweep();
        cmd.args([
            "--preset", "tiny", "--jobs", "2", "--out", dir_s, "--tag", tag,
        ]);
        if fork {
            cmd.arg("--fork-seeds");
        }
        let out = cmd.output().expect("spawn dco-sweep");
        assert!(
            out.status.success(),
            "dco-sweep ({tag}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read(dir.join("sweep_inproc.json")).expect("in-process report");
    let b = std::fs::read(dir.join("sweep_forked.json")).expect("forked report");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        a == b,
        "forked sweep report diverged from the in-process report"
    );
}
