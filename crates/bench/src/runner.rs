//! One-stop experiment runner: builds a scenario, runs one protocol over
//! it, and extracts every §IV metric from the same run.

use dco_baselines::{BaselineConfig, PullProtocol, PushProtocol, TreeProtocol};
use dco_core::proto::{DcoConfig, DcoProtocol};
use dco_metrics::StreamObserver;
use dco_sim::counters::{CounterSnapshot, Counters};
use dco_sim::engine::{Protocol, Simulator};
use dco_sim::net::NetConfig;
use dco_sim::time::SimTime;
use dco_workload::{ChurnConfig, Scenario};

/// The five methods of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// The paper's contribution.
    Dco,
    /// Pull-based mesh.
    Pull,
    /// Push-based mesh.
    Push,
    /// Tree with out-degree `neighbors / 8` (the paper's default rule).
    Tree,
    /// "tree*": out-degree = the full neighbor count.
    TreeStar,
}

impl Method {
    /// The figure label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::Dco => "DCO",
            Method::Pull => "pull",
            Method::Push => "push",
            Method::Tree => "tree",
            Method::TreeStar => "tree*",
        }
    }

    /// The four methods of the main comparison.
    pub const MAIN: [Method; 4] = [Method::Dco, Method::Push, Method::Pull, Method::Tree];
}

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// Nodes including the server.
    pub n_nodes: u32,
    /// Chunks emitted.
    pub n_chunks: u32,
    /// Neighbor count (mesh degree / DCO successor-list length; the tree
    /// derives its out-degree from this).
    pub neighbors: usize,
    /// Churn, if any.
    pub churn: Option<ChurnConfig>,
    /// Run horizon.
    pub horizon: SimTime,
    /// Overrides the tree baseline's out-degree (None = the paper's
    /// `neighbors / 8` rule). The paper's non-sweep figures run the tree at
    /// its default of 3 children; under our explicit 600 kbps upload
    /// serialization the sustainable equivalent is 2 (3 × 300 kbps exceeds
    /// a peer's uplink), so the churn/time figures pass `Some(2)`.
    pub tree_degree: Option<usize>,
    /// Offset after generation at which the Fig. 6 fill ratio is measured.
    /// The paper samples at +2 s; with explicit 0.5 s store-and-forward
    /// serialization per peer hop, the equivalent dissemination phase sits
    /// around +15 s (see EXPERIMENTS.md).
    pub fill_offset: dco_sim::time::SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl RunParams {
    /// §IV defaults: 512 nodes, 100 chunks, no churn, measured to 200 s.
    pub fn paper_default(seed: u64) -> Self {
        RunParams {
            n_nodes: 512,
            n_chunks: 100,
            neighbors: 32,
            churn: None,
            horizon: SimTime::from_secs(200),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(15),
            seed,
        }
    }

    /// A scaled-down variant for fast tests/benches.
    pub fn small(seed: u64) -> Self {
        RunParams {
            n_nodes: 64,
            n_chunks: 20,
            neighbors: 16,
            churn: None,
            horizon: SimTime::from_secs(80),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(5),
            seed,
        }
    }

    /// The workload scenario these parameters describe. Public so the
    /// sharded runner can install it in the `add_nodes` →
    /// `enable_sharding` → `schedule_membership` order.
    pub fn scenario(&self) -> Scenario {
        let mut s = Scenario::paper_default(self.seed);
        s.n_nodes = self.n_nodes;
        s.n_chunks = self.n_chunks;
        s.horizon = self.horizon;
        s.churn = self.churn.clone();
        s
    }
}

/// Everything a figure needs, extracted from one finished run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Mean mesh delay over chunks (s), unspread chunks capped at the
    /// horizon (metric 1).
    pub mean_mesh_delay: f64,
    /// Mean fill ratio 2 s after each chunk's generation (the paper's
    /// literal Fig. 6 statistic).
    pub fill_at_2s: f64,
    /// Mean fill ratio `fill_offset` after each chunk's generation (the
    /// time-rebased Fig. 6 statistic; see `RunParams::fill_offset`).
    pub fill_at_offset: f64,
    /// Global fill ratio per second over the run (Fig. 7).
    pub fill_timeline: Vec<(f64, f64)>,
    /// Extra overhead: control units excluding DHT ring maintenance
    /// (metric 3).
    pub overhead: u64,
    /// Cumulative control units per second (Fig. 10).
    pub overhead_timeline: Vec<(f64, f64)>,
    /// % of expected chunk deliveries completed by each whole second
    /// (metric 4, Figs. 11–12).
    pub received_timeline: Vec<(f64, f64)>,
    /// % received by the horizon.
    pub received_pct: f64,
    /// Data (chunk) transmissions, duplicates included.
    pub data_msgs: u64,
}

/// Overhead units per the paper's metric: every control transmission except
/// DHT ring maintenance (`chord.*` — stabilization/fingers are structure
/// upkeep, not chunk signalling; the no-churn figures have none anyway).
pub fn overhead_units(counters: &Counters) -> u64 {
    let chord: u64 = counters
        .tags()
        .filter(|(tag, _)| tag.starts_with("chord."))
        .map(|(_, n)| n)
        .sum();
    counters.control_total() - chord
}

fn extract<P: Protocol>(
    sim: &Simulator<P>,
    obs: &StreamObserver,
    horizon: SimTime,
    fill_offset: dco_sim::time::SimDuration,
) -> RunResult {
    let secs = horizon.as_secs();
    // One fold over the reception slab yields every slab-derived statistic
    // — both per-second timelines, the mesh delay, the fill-at-offset means
    // and the received percentage — in O(pairs + seconds) instead of one
    // O(pairs) pass per metric. The fold replays each metric's accumulation
    // order, so every derived float is bit-identical to the per-metric
    // originals (asserted in `dco-metrics`' observer tests).
    let fold = obs.fold_figures(
        horizon,
        &[dco_sim::time::SimDuration::from_secs(2), fill_offset],
    );
    let (cumulative, total) = (&fold.received_by_second, fold.expected_pairs);
    let fill_timeline: Vec<(f64, f64)> = (0..=secs)
        .map(|t| {
            let ratio = if total == 0 {
                0.0
            } else {
                cumulative[t as usize] as f64 / total as f64
            };
            (t as f64, ratio)
        })
        .collect();
    let received_timeline: Vec<(f64, f64)> =
        fill_timeline.iter().map(|&(t, r)| (t, 100.0 * r)).collect();
    let overhead_timeline: Vec<(f64, f64)> = (0..=secs)
        .map(|t| (t as f64, sim.counters().control_through_second(t) as f64))
        .collect();
    RunResult {
        mean_mesh_delay: fold.mean_mesh_delay,
        fill_at_2s: fold.fill_at_offsets[0],
        fill_at_offset: fold.fill_at_offsets[1],
        fill_timeline,
        overhead: overhead_units(sim.counters()),
        overhead_timeline,
        received_timeline,
        received_pct: fold.received_pct,
        data_msgs: sim.counters().data_total(),
    }
}

fn install_and_run<P: Protocol>(params: &RunParams, protocol: P) -> (Simulator<P>, Scenario) {
    let scenario = params.scenario();
    let mut sim = Simulator::with_capacity(
        protocol,
        NetConfig::paper_model(),
        params.seed,
        params.n_nodes as usize,
    );
    scenario.install(&mut sim);
    sim.run_until(params.horizon);
    (sim, scenario)
}

/// Bit-exactness evidence of one finished run: comparing two [`CellProof`]s
/// decides whether the runs were identical event-for-event. The sweep
/// harness records one per cell and the determinism tests compare them
/// across repeats and `--jobs` levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellProof {
    /// [`Simulator::trace_digest`] at the end of the run.
    pub trace_digest: u64,
    /// [`Counters::digest`] at the end of the run.
    pub counters_digest: u64,
    /// The full counter snapshot (strictly stronger than its digest; kept
    /// so test failures show *which* counter diverged).
    pub snapshot: CounterSnapshot,
    /// Events dispatched.
    pub events: u64,
}

/// A run's metrics plus its determinism proof.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// The §IV metrics.
    pub result: RunResult,
    /// The bit-exactness evidence.
    pub proof: CellProof,
}

fn proof_of<P: Protocol>(sim: &Simulator<P>) -> CellProof {
    CellProof {
        trace_digest: sim.trace_digest(),
        counters_digest: sim.counters().digest(),
        snapshot: sim.counters().snapshot(),
        events: sim.stats().events_processed,
    }
}

/// Runs `method` over `params`, extracting the metrics **and** the
/// determinism proof from the same simulation.
pub fn run_with_stats(method: Method, params: &RunParams) -> RunStats {
    match method {
        Method::Dco => {
            let mut cfg = if params.churn.is_some() {
                DcoConfig::paper_churn(params.n_nodes, params.n_chunks)
            } else {
                DcoConfig::paper_default(params.n_nodes, params.n_chunks)
            };
            cfg.neighbors = params.neighbors;
            let (sim, _) = install_and_run(params, DcoProtocol::new(cfg));
            RunStats {
                result: extract(
                    &sim,
                    &sim.protocol().obs,
                    params.horizon,
                    params.fill_offset,
                ),
                proof: proof_of(&sim),
            }
        }
        Method::Pull => {
            let mut cfg = BaselineConfig::paper_default(params.n_nodes, params.n_chunks);
            cfg.neighbors = params.neighbors;
            let (sim, _) = install_and_run(params, PullProtocol::new(cfg));
            RunStats {
                result: extract(
                    &sim,
                    &sim.protocol().obs,
                    params.horizon,
                    params.fill_offset,
                ),
                proof: proof_of(&sim),
            }
        }
        Method::Push => {
            let mut cfg = BaselineConfig::paper_default(params.n_nodes, params.n_chunks);
            cfg.neighbors = params.neighbors;
            let (sim, _) = install_and_run(params, PushProtocol::new(cfg));
            RunStats {
                result: extract(
                    &sim,
                    &sim.protocol().obs,
                    params.horizon,
                    params.fill_offset,
                ),
                proof: proof_of(&sim),
            }
        }
        Method::Tree => {
            let mut cfg = BaselineConfig::paper_default(params.n_nodes, params.n_chunks);
            cfg.neighbors = params.neighbors;
            let tree = match params.tree_degree {
                Some(d) => TreeProtocol::new(cfg, d),
                None => TreeProtocol::with_paper_degree(cfg),
            };
            let (sim, _) = install_and_run(params, tree);
            RunStats {
                result: extract(
                    &sim,
                    &sim.protocol().obs,
                    params.horizon,
                    params.fill_offset,
                ),
                proof: proof_of(&sim),
            }
        }
        Method::TreeStar => {
            let mut cfg = BaselineConfig::paper_default(params.n_nodes, params.n_chunks);
            cfg.neighbors = params.neighbors;
            let (sim, _) = install_and_run(params, TreeProtocol::with_star_degree(cfg));
            RunStats {
                result: extract(
                    &sim,
                    &sim.protocol().obs,
                    params.horizon,
                    params.fill_offset,
                ),
                proof: proof_of(&sim),
            }
        }
    }
}

/// Runs `method` over `params` and extracts the metrics.
pub fn run(method: Method, params: &RunParams) -> RunResult {
    run_with_stats(method, params).result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_complete_a_small_static_run() {
        let params = RunParams {
            n_nodes: 24,
            n_chunks: 8,
            neighbors: 8,
            churn: None,
            horizon: SimTime::from_secs(60),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(5),
            seed: 3,
        };
        for m in [
            Method::Dco,
            Method::Pull,
            Method::Push,
            Method::Tree,
            Method::TreeStar,
        ] {
            let r = run(m, &params);
            assert!(
                r.received_pct > 95.0,
                "{} only delivered {:.1}%",
                m.label(),
                r.received_pct
            );
            assert!(r.mean_mesh_delay > 0.0, "{}", m.label());
            if m == Method::Tree || m == Method::TreeStar {
                assert_eq!(r.overhead, 0, "tree must have zero overhead");
            } else {
                assert!(r.overhead > 0, "{}", m.label());
            }
        }
    }

    #[test]
    fn timelines_are_monotone() {
        let params = RunParams {
            n_nodes: 16,
            n_chunks: 6,
            neighbors: 6,
            churn: None,
            horizon: SimTime::from_secs(40),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(5),
            seed: 5,
        };
        let r = run(Method::Dco, &params);
        for w in r.fill_timeline.windows(2) {
            assert!(w[1].1 >= w[0].1, "fill must be monotone");
        }
        for w in r.overhead_timeline.windows(2) {
            assert!(w[1].1 >= w[0].1, "cumulative overhead must be monotone");
        }
        for w in r.received_timeline.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e9,
                "received% monotone per fixed audience"
            );
        }
    }

    #[test]
    fn overhead_units_excludes_ring_maintenance() {
        use dco_sim::counters::Counters;
        use dco_sim::time::SimTime;
        let mut c = Counters::new();
        c.record_control(SimTime::ZERO, "dco.lookup");
        c.record_control(SimTime::ZERO, "dco.insert");
        c.record_control(SimTime::ZERO, "chord.stab");
        c.record_control(SimTime::ZERO, "chord.find");
        c.record_control(SimTime::ZERO, "pull.bufmap");
        assert_eq!(c.control_total(), 5);
        assert_eq!(overhead_units(&c), 3, "chord.* excluded");
    }

    #[test]
    fn method_labels() {
        assert_eq!(Method::Dco.label(), "DCO");
        assert_eq!(Method::TreeStar.label(), "tree*");
        assert_eq!(Method::MAIN.len(), 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let params = RunParams {
            n_nodes: 16,
            n_chunks: 5,
            neighbors: 6,
            churn: None,
            horizon: SimTime::from_secs(30),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(5),
            seed: 9,
        };
        let a = run(Method::Push, &params);
        let b = run(Method::Push, &params);
        assert_eq!(a.overhead, b.overhead);
        assert_eq!(a.data_msgs, b.data_msgs);
        assert_eq!(a.mean_mesh_delay, b.mean_mesh_delay);
    }

    #[test]
    fn proofs_are_bit_exact_across_repeats_and_seed_sensitive() {
        let params = |seed| RunParams {
            n_nodes: 16,
            n_chunks: 5,
            neighbors: 6,
            churn: None,
            horizon: SimTime::from_secs(30),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(5),
            seed,
        };
        let a = run_with_stats(Method::Dco, &params(9));
        let b = run_with_stats(Method::Dco, &params(9));
        assert_eq!(a.proof, b.proof);
        // Seed sensitivity is asserted on pull, whose mesh shuffles its
        // neighbor candidates. (A static DCO run under the constant-latency
        // paper model consumes no randomness and is seed-invariant.)
        let c = run_with_stats(Method::Pull, &params(10));
        let d = run_with_stats(Method::Pull, &params(9));
        assert_ne!(d.proof.trace_digest, c.proof.trace_digest);
        // Different methods on the same seed run different events.
        assert_ne!(a.proof.trace_digest, d.proof.trace_digest);
        assert!(a.proof.events > 0);
    }
}
