//! A minimal JSON emitter for sweep reports.
//!
//! The workspace carries no serde (offline reproducibility), and the sweep
//! output is a fixed, shallow schema — so a tiny value tree with a
//! deterministic renderer is all that is needed. Numbers render through
//! Rust's shortest-round-trip float formatting; non-finite floats become
//! `null` (JSON has no NaN); u64-range integers that would lose precision
//! in an f64 (digests, counters) should be emitted as strings by the
//! caller ([`Json::hex`] helps).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite renders as `null`).
    Num(f64),
    /// An exact integer (u64 counters; rendered digit-exact).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A `u64` rendered as a lossless `"0x…"` string (for digests, whose
    /// full 64-bit range exceeds f64-exact integers).
    pub fn hex(x: u64) -> Json {
        Json::Str(format!("{x:#018x}"))
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(kvs) => {
                out.push('{');
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    x.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(kvs) if !kvs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip form; it may produce "1.0"
    // (valid JSON) or scientific notation like "1e-7" (also valid).
    let _ = write!(out, "{x:?}");
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Int(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te").render(),
            "\"a\\\"b\\\\c\\nd\\te\""
        );
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure_renders_compact() {
        let v = Json::obj(vec![
            ("name", Json::str("sweep")),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("meta", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"sweep","xs":[1.0,2.5],"meta":{"ok":true}}"#
        );
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Int(2)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let p = v.render_pretty();
        assert!(p.contains("\"a\": 1"));
        assert!(p.contains("\"empty\": []"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn hex_preserves_full_u64_range() {
        assert_eq!(
            Json::hex(0xDEAD_BEEF_DEAD_BEEF).render(),
            "\"0xdeadbeefdeadbeef\""
        );
        assert_eq!(Json::hex(0).render(), "\"0x0000000000000000\"");
    }
}
