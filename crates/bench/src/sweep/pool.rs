//! A minimal scoped-thread worker pool.
//!
//! The sweep harness fans independent simulation cells across cores. Each
//! cell is self-seeded (its RNG streams derive from its own master seed),
//! so the *work* is deterministic regardless of scheduling; all the pool
//! has to guarantee is that results come back **in input order**, which it
//! does by tagging each result with its item index. Thread count therefore
//! affects wall-clock only, never output — the property the determinism
//! tests pin down.
//!
//! Built on `std::thread::scope` + an atomic work index: no external
//! crates, no unsafe, work-stealing-free (cells are coarse enough that a
//! shared counter is contention-free in practice).

use std::sync::atomic::{AtomicUsize, Ordering};

/// The machine's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` using up to `jobs` worker threads, returning
/// results in input order. `jobs <= 1` runs inline on the caller's thread.
/// Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 7] {
            let out = par_map(jobs, &items, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = par_map(4, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map(8, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn jobs_zero_behaves_like_one() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(0, &items, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        par_map(4, &items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
