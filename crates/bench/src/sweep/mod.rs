//! The parallel, deterministic batch-experiment harness.
//!
//! A [`SweepConfig`] names a grid of `(method × population × churn ×
//! seed)` cells. [`run_sweep`] expands it ([`expand`]), runs every cell
//! concurrently on a scoped-thread pool ([`pool`]), and aggregates the
//! per-seed metrics of each `(method, population, churn)` group into
//! mean / stddev / median / 95%-CI rows ([`SweepReport`]), rendered as a
//! human table ([`SweepReport::to_table`]) or JSON
//! ([`SweepReport::to_json`], written to `results/sweep_<tag>.json` by the
//! `dco-sweep` binary).
//!
//! # Determinism contract
//!
//! Every cell's simulation seed is a pure function of the sweep master
//! seed and the cell's **coordinates** ([`ScenarioGrid::cell_seed`]) —
//! never of its position in the grid or the thread that picks it up. Each
//! cell runs a fresh single-threaded [`Simulator`], so a cell's
//! [`CellProof`] (trace digest + counter snapshot) is identical whether
//! the cell runs alone, under `--jobs 1`, or under `--jobs N`. The
//! `determinism` integration tests and the CI smoke job assert exactly
//! this.
//!
//! [`Simulator`]: dco_sim::engine::Simulator
//! [`CellProof`]: crate::runner::CellProof

pub mod json;
pub mod pool;

use dco_metrics::stats::SummaryStats;
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::{ChurnConfig, ChurnLevel, ScenarioGrid};

use crate::runner::{run_with_stats, Method, RunParams, RunStats};
use json::Json;

/// The full specification of a batch sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Scenario axes (population × churn × seed).
    pub grid: ScenarioGrid,
    /// Master seed all cell seeds derive from.
    pub master_seed: u64,
    /// Chunks emitted in static cells.
    pub n_chunks: u32,
    /// Chunks emitted in churn cells (the paper uses a longer stream).
    pub churn_chunks: u32,
    /// Mesh degree / DCO successor-list length.
    pub neighbors: usize,
    /// Horizon of static cells, seconds.
    pub static_horizon: u64,
    /// Horizon of churn cells, seconds.
    pub churn_horizon: u64,
    /// Fill-ratio measurement offset, seconds.
    pub fill_offset_secs: u64,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
}

impl SweepConfig {
    /// A small-scale default: DCO vs pull over two populations, five
    /// seeds, static and 20 s-life churn.
    pub fn small() -> Self {
        SweepConfig {
            methods: vec![Method::Dco, Method::Pull],
            grid: ScenarioGrid {
                populations: vec![32, 64],
                churn: vec![ChurnLevel::Static, ChurnLevel::MeanLife(20)],
                seeds: ScenarioGrid::seed_list(0xD15C0, 5),
            },
            master_seed: 42,
            n_chunks: 20,
            churn_chunks: 30,
            neighbors: 16,
            static_horizon: 60,
            churn_horizon: 90,
            fill_offset_secs: 5,
            jobs: 0,
        }
    }

    /// A minimal grid for CI smoke runs and tests: 2 methods × 1
    /// population × static × 2 seeds at toy scale.
    pub fn tiny() -> Self {
        SweepConfig {
            methods: vec![Method::Dco, Method::Pull],
            grid: ScenarioGrid {
                populations: vec![16],
                churn: vec![ChurnLevel::Static],
                seeds: ScenarioGrid::seed_list(0xD15C0, 2),
            },
            master_seed: 42,
            n_chunks: 6,
            churn_chunks: 8,
            neighbors: 6,
            static_horizon: 30,
            churn_horizon: 40,
            fill_offset_secs: 5,
            jobs: 0,
        }
    }

    /// Paper-scale: the four §IV methods over 512/1024 nodes, static and
    /// 60 s-life churn, five seeds.
    pub fn paper() -> Self {
        SweepConfig {
            methods: Method::MAIN.to_vec(),
            grid: ScenarioGrid {
                populations: vec![512, 1024],
                churn: vec![ChurnLevel::Static, ChurnLevel::MeanLife(60)],
                seeds: ScenarioGrid::seed_list(0xD15C0, 5),
            },
            master_seed: 42,
            n_chunks: 100,
            churn_chunks: 200,
            neighbors: 32,
            static_horizon: 200,
            churn_horizon: 300,
            fill_offset_secs: 15,
            jobs: 0,
        }
    }

    /// A stable code per method, folded into each cell's seed so the same
    /// scenario coordinates under different methods get decorrelated
    /// streams.
    fn method_code(m: Method) -> u64 {
        match m {
            Method::Dco => 1,
            Method::Pull => 2,
            Method::Push => 3,
            Method::Tree => 4,
            Method::TreeStar => 5,
        }
    }

    /// The [`RunParams`] of one cell.
    pub fn params_for(&self, n_nodes: u32, churn: ChurnLevel, sim_seed: u64) -> RunParams {
        let (n_chunks, horizon, churn_cfg) = match churn {
            ChurnLevel::Static => (self.n_chunks, SimTime::from_secs(self.static_horizon), None),
            ChurnLevel::MeanLife(life) => (
                self.churn_chunks,
                SimTime::from_secs(self.churn_horizon),
                Some(ChurnConfig::paper_fig12(life)),
            ),
        };
        RunParams {
            n_nodes,
            n_chunks,
            neighbors: self.neighbors,
            churn: churn_cfg,
            horizon,
            // Under churn the tree runs at its sustainable out-degree, as
            // in the figure harness (see RunParams::tree_degree).
            tree_degree: Some(2),
            fill_offset: SimDuration::from_secs(self.fill_offset_secs),
            seed: sim_seed,
        }
    }
}

/// One expanded cell: full coordinates plus the derived simulation seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepCell {
    /// The method axis.
    pub method: Method,
    /// Population of this cell.
    pub n_nodes: u32,
    /// Churn level of this cell.
    pub churn: ChurnLevel,
    /// Seed label from the grid's seed axis.
    pub seed: u64,
    /// The derived master seed fed to the simulator.
    pub sim_seed: u64,
}

/// One finished cell: coordinates + metrics + determinism proof.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's coordinates.
    pub cell: SweepCell,
    /// Metrics and proof from the run.
    pub stats: RunStats,
}

/// Expands a config into its cell list — deterministic order (method
/// outermost, then the grid's population → churn → seed order) and
/// position-independent cell seeds.
pub fn expand(cfg: &SweepConfig) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(cfg.methods.len() * cfg.grid.len());
    for &method in &cfg.methods {
        for &n_nodes in &cfg.grid.populations {
            for &churn in &cfg.grid.churn {
                for &seed in &cfg.grid.seeds {
                    cells.push(SweepCell {
                        method,
                        n_nodes,
                        churn,
                        seed,
                        sim_seed: ScenarioGrid::cell_seed(
                            cfg.master_seed,
                            SweepConfig::method_code(method),
                            n_nodes,
                            churn,
                            seed,
                        ),
                    });
                }
            }
        }
    }
    cells
}

/// Runs one already-expanded cell.
pub fn run_cell(cfg: &SweepConfig, cell: &SweepCell) -> CellOutcome {
    let params = cfg.params_for(cell.n_nodes, cell.churn, cell.sim_seed);
    CellOutcome {
        cell: *cell,
        stats: run_with_stats(cell.method, &params),
    }
}

/// One aggregated row: a `(method, population, churn)` group summarized
/// over its seeds.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Method of this group.
    pub method: Method,
    /// Population of this group.
    pub n_nodes: u32,
    /// Churn level of this group.
    pub churn: ChurnLevel,
    /// Seeds aggregated.
    pub n_seeds: usize,
    /// Mean mesh delay (s) over seeds.
    pub mesh_delay: SummaryStats,
    /// % received by the horizon over seeds.
    pub received_pct: SummaryStats,
    /// Extra overhead (messages) over seeds.
    pub overhead: SummaryStats,
    /// Data transmissions over seeds.
    pub data_msgs: SummaryStats,
}

/// The result of a whole sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The config's master seed (for provenance in JSON).
    pub master_seed: u64,
    /// Aggregated rows in expansion order.
    pub rows: Vec<SweepRow>,
    /// Every cell's outcome in expansion order.
    pub cells: Vec<CellOutcome>,
}

/// Expands, runs (in parallel) and aggregates a sweep.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let cells = expand(cfg);
    let jobs = if cfg.jobs == 0 {
        pool::default_jobs()
    } else {
        cfg.jobs
    };
    let outcomes = pool::par_map(jobs, &cells, |cell| run_cell(cfg, cell));
    aggregate(cfg, outcomes)
}

/// Aggregates already-run cells into a report. The in-process path
/// (`run_sweep`) and the `--fork-seeds` per-process fan-out both end
/// here, so their reports are comparable field-for-field.
pub fn aggregate_outcomes(cfg: &SweepConfig, cells: Vec<CellOutcome>) -> SweepReport {
    aggregate(cfg, cells)
}

fn aggregate(cfg: &SweepConfig, cells: Vec<CellOutcome>) -> SweepReport {
    let mut rows = Vec::new();
    for &method in &cfg.methods {
        for &n_nodes in &cfg.grid.populations {
            for &churn in &cfg.grid.churn {
                let group: Vec<&CellOutcome> = cells
                    .iter()
                    .filter(|c| {
                        c.cell.method == method
                            && c.cell.n_nodes == n_nodes
                            && c.cell.churn == churn
                    })
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let take = |f: &dyn Fn(&RunStats) -> f64| -> Vec<f64> {
                    group.iter().map(|c| f(&c.stats)).collect()
                };
                rows.push(SweepRow {
                    method,
                    n_nodes,
                    churn,
                    n_seeds: group.len(),
                    mesh_delay: SummaryStats::from_samples(&take(&|s| s.result.mean_mesh_delay)),
                    received_pct: SummaryStats::from_samples(&take(&|s| s.result.received_pct)),
                    overhead: SummaryStats::from_samples(&take(&|s| s.result.overhead as f64)),
                    data_msgs: SummaryStats::from_samples(&take(&|s| s.result.data_msgs as f64)),
                });
            }
        }
    }
    SweepReport {
        master_seed: cfg.master_seed,
        rows,
        cells,
    }
}

/// Runs `metric` on one method across `seeds` (in parallel; `jobs == 0`
/// means all cores) and returns the **median** — the de-flaked statistic
/// the paper-shape tests assert on. `make` builds the per-seed params.
pub fn median_metric(
    method: Method,
    seeds: &[u64],
    jobs: usize,
    make: impl Fn(u64) -> RunParams + Sync,
    metric: impl Fn(&crate::runner::RunResult) -> f64 + Sync,
) -> f64 {
    let jobs = if jobs == 0 {
        pool::default_jobs()
    } else {
        jobs
    };
    let per_seed = pool::par_map(jobs, seeds, |&seed| {
        metric(&crate::runner::run(method, &make(seed)))
    });
    dco_metrics::stats::median(&per_seed)
}

fn stats_json(s: &SummaryStats) -> Json {
    Json::obj(vec![
        ("n", Json::Int(s.n as u64)),
        ("mean", Json::Num(s.mean)),
        ("std_dev", Json::Num(s.std_dev)),
        ("median", Json::Num(s.median)),
        ("min", Json::Num(s.min)),
        ("max", Json::Num(s.max)),
        ("ci95", Json::Num(s.ci95)),
    ])
}

impl SweepReport {
    /// The JSON document the `dco-sweep` binary writes (schema documented
    /// in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("method", Json::str(r.method.label())),
                    ("n_nodes", Json::Int(u64::from(r.n_nodes))),
                    ("churn", Json::str(r.churn.label())),
                    ("n_seeds", Json::Int(r.n_seeds as u64)),
                    ("mesh_delay_s", stats_json(&r.mesh_delay)),
                    ("received_pct", stats_json(&r.received_pct)),
                    ("overhead_msgs", stats_json(&r.overhead)),
                    ("data_msgs", stats_json(&r.data_msgs)),
                ])
            })
            .collect();
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("method", Json::str(c.cell.method.label())),
                    ("n_nodes", Json::Int(u64::from(c.cell.n_nodes))),
                    ("churn", Json::str(c.cell.churn.label())),
                    ("seed", Json::Int(c.cell.seed)),
                    ("sim_seed", Json::hex(c.cell.sim_seed)),
                    ("trace_digest", Json::hex(c.stats.proof.trace_digest)),
                    ("counters_digest", Json::hex(c.stats.proof.counters_digest)),
                    ("events", Json::Int(c.stats.proof.events)),
                    ("mesh_delay_s", Json::Num(c.stats.result.mean_mesh_delay)),
                    ("received_pct", Json::Num(c.stats.result.received_pct)),
                    ("overhead_msgs", Json::Int(c.stats.result.overhead)),
                    ("data_msgs", Json::Int(c.stats.result.data_msgs)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str("dco-sweep/v1")),
            ("master_seed", Json::Int(self.master_seed)),
            ("rows", Json::Arr(rows)),
            ("cells", Json::Arr(cells)),
        ])
        .render_pretty()
    }

    /// An aligned human-readable table of the aggregated rows.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>7} {:>8} {:>6} {:>10} {:>8} {:>11} {:>8} {:>12} {:>11}",
            "method",
            "nodes",
            "churn",
            "seeds",
            "delay(s)",
            "±95%",
            "recv(%)",
            "±95%",
            "overhead",
            "±95%"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>7} {:>8} {:>6} {:>10.3} {:>8.3} {:>11.1} {:>8.1} {:>12.0} {:>11.0}",
                r.method.label(),
                r.n_nodes,
                r.churn.label(),
                r.n_seeds,
                r.mesh_delay.mean,
                r.mesh_delay.ci95,
                r.received_pct.mean,
                r.received_pct.ci95,
                r.overhead.mean,
                r.overhead.ci95,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_covers_the_product_with_distinct_seeds() {
        let cfg = SweepConfig::small();
        let cells = expand(&cfg);
        assert_eq!(cells.len(), 2 * 2 * 2 * 5);
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.sim_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seeds must be distinct");
    }

    #[test]
    fn cell_seed_is_position_independent() {
        let full = SweepConfig::small();
        let mut solo = SweepConfig::small();
        solo.methods = vec![Method::Pull];
        solo.grid.populations = vec![64];
        solo.grid.churn = vec![ChurnLevel::MeanLife(20)];
        solo.grid.seeds = vec![full.grid.seeds[3]];
        let lone = expand(&solo)[0];
        let within = expand(&full)
            .into_iter()
            .find(|c| {
                c.method == Method::Pull
                    && c.n_nodes == 64
                    && c.churn == ChurnLevel::MeanLife(20)
                    && c.seed == full.grid.seeds[3]
            })
            .unwrap();
        assert_eq!(lone, within);
    }

    #[test]
    fn tiny_sweep_aggregates_and_renders() {
        let mut cfg = SweepConfig::tiny();
        cfg.jobs = 2;
        let report = run_sweep(&cfg);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.n_seeds, 2);
            assert!(row.received_pct.mean > 90.0, "{}", row.method.label());
            assert!(row.mesh_delay.mean > 0.0);
        }
        let table = report.to_table();
        assert!(table.contains("DCO"));
        assert!(table.contains("pull"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dco-sweep/v1\""));
        assert!(json.contains("\"trace_digest\""));
        assert!(json.contains("\"ci95\""));
    }

    #[test]
    fn jobs_level_does_not_change_outcomes() {
        let mut one = SweepConfig::tiny();
        one.jobs = 1;
        let mut four = SweepConfig::tiny();
        four.jobs = 4;
        let a = run_sweep(&one);
        let b = run_sweep(&four);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.stats.proof, y.stats.proof, "cell {:?}", x.cell);
        }
    }

    #[test]
    fn median_metric_matches_by_hand() {
        let seeds = [1u64, 2, 3];
        let med = median_metric(
            Method::Pull,
            &seeds,
            2,
            |seed| {
                let mut p = RunParams::small(seed);
                p.n_nodes = 16;
                p.n_chunks = 5;
                p.neighbors = 6;
                p.horizon = SimTime::from_secs(30);
                p
            },
            |r| r.mean_mesh_delay,
        );
        let mut by_hand: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let mut p = RunParams::small(s);
                p.n_nodes = 16;
                p.n_chunks = 5;
                p.neighbors = 6;
                p.horizon = SimTime::from_secs(30);
                crate::runner::run(Method::Pull, &p).mean_mesh_delay
            })
            .collect();
        by_hand.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(med, by_hand[1]);
    }
}
