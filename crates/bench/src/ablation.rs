//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each study runs DCO with one knob flipped and reports the same §IV
//! metrics, so the contribution of each mechanism is measurable:
//!
//! * **provider selection** — the paper's sufficient-bandwidth rule vs a
//!   random provider;
//! * **adaptive prefetch window** — Eq. 2 on vs a fixed base window;
//! * **tier mode** — the §IV flat ring vs §III's hierarchical
//!   coordinators-plus-clients with elastic promotion;
//! * **bandwidth model** — the paper's sender-side-only queueing vs the
//!   full store-and-forward model (both directions charged).

use dco_core::proto::{DcoConfig, DcoProtocol, TierMode};
use dco_metrics::{Figure, Series};
use dco_sim::engine::Simulator;
use dco_sim::net::NetConfig;
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::Scenario;

use crate::figs::FigScale;
use crate::runner::overhead_units;
use crate::sweep::pool;

/// One ablation variant: a label plus the config/network it runs with.
struct Variant {
    label: &'static str,
    cfg: DcoConfig,
    net: NetConfig,
}

/// Metrics of one ablation run.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Mean mesh delay (s).
    pub mesh_delay: f64,
    /// % of expected deliveries completed by the horizon.
    pub received_pct: f64,
    /// Extra overhead (messages, ring maintenance excluded).
    pub overhead: u64,
    /// Fetch failures (timeouts / busy / not-found answers).
    pub fetch_failures: u64,
}

fn run_variant(v: &Variant, scale: &FigScale, seed: u64, churn: bool) -> AblationRow {
    let mut scenario = if churn {
        Scenario::paper_churn(scale.churn_horizon / 5, seed)
    } else {
        Scenario::paper_default(seed)
    };
    scenario.n_nodes = v.cfg.n_nodes;
    scenario.n_chunks = v.cfg.n_chunks;
    scenario.horizon = if churn {
        SimTime::from_secs(scale.churn_horizon)
    } else {
        SimTime::from_secs(scale.static_horizon)
    };
    let mut sim = Simulator::with_capacity(
        DcoProtocol::new(v.cfg.clone()),
        v.net.clone(),
        seed,
        scenario.n_nodes as usize,
    );
    scenario.install(&mut sim);
    sim.run_until(scenario.horizon);
    let p = sim.protocol();
    AblationRow {
        label: v.label.to_string(),
        mesh_delay: p.obs.mean_mesh_delay(scenario.horizon),
        received_pct: p.obs.received_percentage(scenario.horizon),
        overhead: overhead_units(sim.counters()),
        fetch_failures: p.fetch_failures,
    }
}

fn base_cfg(scale: &FigScale, churn: bool) -> DcoConfig {
    let mut cfg = if churn {
        DcoConfig::paper_churn(scale.n_nodes, scale.churn_chunks)
    } else {
        DcoConfig::paper_default(scale.n_nodes, scale.n_chunks)
    };
    cfg.neighbors = scale.default_neighbors;
    cfg
}

/// Provider selection: sufficient-bandwidth round-robin vs random.
pub fn ablate_selection(scale: &FigScale) -> Vec<AblationRow> {
    let mut random = base_cfg(scale, false);
    random.select_policy = dco_core::index::SelectPolicy::Random;
    let mut least = base_cfg(scale, false);
    least.select_policy = dco_core::index::SelectPolicy::LeastLoaded;
    let variants = [
        Variant {
            label: "sufficient-bandwidth (paper)",
            cfg: base_cfg(scale, false),
            net: NetConfig::paper_model(),
        },
        Variant {
            label: "random provider",
            cfg: random,
            net: NetConfig::paper_model(),
        },
        Variant {
            label: "least-loaded (extension)",
            cfg: least,
            net: NetConfig::paper_model(),
        },
    ];
    pool::par_map(scale.jobs.max(variants.len()), &variants, |v| {
        run_variant(v, scale, scale.seeds[0], false)
    })
}

/// Prefetch window: Eq. 2 adaptation vs fixed base window, under churn
/// (where fetch failures actually occur).
pub fn ablate_window(scale: &FigScale) -> Vec<AblationRow> {
    let mut fixed = base_cfg(scale, true);
    fixed.adaptive_window = false;
    let variants = [
        Variant {
            label: "adaptive window (Eq. 2)",
            cfg: base_cfg(scale, true),
            net: NetConfig::paper_model(),
        },
        Variant {
            label: "fixed window",
            cfg: fixed,
            net: NetConfig::paper_model(),
        },
    ];
    pool::par_map(scale.jobs.max(variants.len()), &variants, |v| {
        run_variant(v, scale, scale.seeds[0], true)
    })
}

/// Tier mode: the §IV flat ring vs §III's hierarchical infrastructure.
pub fn ablate_tier(scale: &FigScale) -> Vec<AblationRow> {
    let mut hier = base_cfg(scale, false);
    hier.tier = TierMode::Hierarchical {
        stable_threshold: 0.6,
        overload_lookups: 200,
        check_every: SimDuration::from_secs(5),
    };
    let variants = [
        Variant {
            label: "flat ring (§IV)",
            cfg: base_cfg(scale, false),
            net: NetConfig::paper_model(),
        },
        Variant {
            label: "hierarchical (§III)",
            cfg: hier,
            net: NetConfig::paper_model(),
        },
    ];
    pool::par_map(scale.jobs.max(variants.len()), &variants, |v| {
        run_variant(v, scale, scale.seeds[0], false)
    })
}

/// Bandwidth model: the paper's sender-side-only queueing vs the full
/// store-and-forward model.
pub fn ablate_bandwidth_model(scale: &FigScale) -> Vec<AblationRow> {
    let variants = [
        Variant {
            label: "sender-side queueing (paper)",
            cfg: base_cfg(scale, false),
            net: NetConfig::paper_model(),
        },
        Variant {
            label: "full store-and-forward",
            cfg: base_cfg(scale, false),
            net: NetConfig::default(),
        },
    ];
    pool::par_map(scale.jobs.max(variants.len()), &variants, |v| {
        run_variant(v, scale, scale.seeds[0], false)
    })
}

/// Renders ablation rows as an aligned text table.
pub fn to_table(title: &str, rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<32} {:>12} {:>12} {:>12} {:>12}",
        "variant", "delay (s)", "received %", "overhead", "failures"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<32} {:>12.2} {:>12.1} {:>12} {:>12}",
            r.label, r.mesh_delay, r.received_pct, r.overhead, r.fetch_failures
        );
    }
    out
}

/// A quick series view (delay per variant) for plotting.
pub fn to_series(rows: &[AblationRow]) -> Figure {
    let mut fig = Figure::new("ablation", "variant", "mesh delay (s)");
    for (i, r) in rows.iter().enumerate() {
        let mut s = Series::new(r.label.clone());
        s.push(i as f64, r.mesh_delay);
        fig.push_series(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigScale {
        FigScale {
            n_nodes: 20,
            n_chunks: 8,
            churn_chunks: 12,
            static_horizon: 40,
            churn_horizon: 60,
            neighbor_sweep: vec![4],
            population_sweep: vec![20],
            default_neighbors: 8,
            fill_offset_secs: 5,
            seeds: vec![3],
            jobs: 2,
        }
    }

    #[test]
    fn selection_ablation_produces_complete_rows() {
        let rows = ablate_selection(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.received_pct > 95.0, "{}: {:.1}%", r.label, r.received_pct);
        }
    }

    #[test]
    fn window_ablation_runs_under_churn() {
        let rows = ablate_window(&tiny());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.received_pct > 50.0, "{}: {:.1}%", r.label, r.received_pct);
        }
    }

    #[test]
    fn tier_ablation_both_modes_deliver() {
        let rows = ablate_tier(&tiny());
        for r in &rows {
            assert!(r.received_pct > 90.0, "{}: {:.1}%", r.label, r.received_pct);
        }
    }

    #[test]
    fn bandwidth_model_ablation_shows_slower_full_model() {
        let rows = ablate_bandwidth_model(&tiny());
        let paper = &rows[0];
        let full = &rows[1];
        assert!(
            full.mesh_delay >= paper.mesh_delay,
            "download charging cannot make dissemination faster: {:.2} vs {:.2}",
            full.mesh_delay,
            paper.mesh_delay
        );
    }

    #[test]
    fn table_renders() {
        let rows = ablate_selection(&tiny());
        let t = to_table("test", &rows);
        assert!(t.contains("variant"));
        assert!(t.contains("sufficient-bandwidth"));
        let fig = to_series(&rows);
        assert_eq!(fig.series.len(), 3);
    }
}
