//! # dco-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation (§IV, Figs. 5–12)
//! plus the ablations DESIGN.md calls out:
//!
//! * [`runner`] — builds a scenario, runs one method, extracts all four
//!   metrics from the same simulation.
//! * [`figs`] — one generator per paper figure, parallel across sweep
//!   points and seeds.
//! * [`ablation`] — design-choice studies (provider selection, adaptive
//!   window, tier mode, bandwidth model).
//! * [`sweep`] — the parallel, deterministic batch-experiment harness:
//!   grid expansion, a scoped-thread pool, per-cell determinism proofs,
//!   multi-seed aggregation and JSON/table reports.
//!
//! The `figures` binary prints any subset as text tables and CSV; the
//! `dco-sweep` binary runs batch grids:
//!
//! ```text
//! cargo run --release -p dco-bench --bin figures -- all --scale paper
//! cargo run --release -p dco-bench --bin dco-sweep -- --preset small --jobs 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figs;
pub mod runner;
pub mod shard_run;
pub mod sweep;
pub mod timing;

pub use figs::FigScale;
pub use runner::{run, run_with_stats, CellProof, Method, RunParams, RunResult, RunStats};
pub use sweep::{run_sweep, SweepConfig, SweepReport};
