//! # dco-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation (§IV, Figs. 5–12)
//! plus the ablations DESIGN.md calls out:
//!
//! * [`runner`] — builds a scenario, runs one method, extracts all four
//!   metrics from the same simulation.
//! * [`figs`] — one generator per paper figure, rayon-parallel across sweep
//!   points and seeds.
//! * [`ablation`] — design-choice studies (provider selection, adaptive
//!   window, tier mode, bandwidth model).
//!
//! The `figures` binary prints any subset as text tables and CSV:
//!
//! ```text
//! cargo run --release -p dco-bench --bin figures -- all --scale paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figs;
pub mod runner;

pub use figs::FigScale;
pub use runner::{run, Method, RunParams, RunResult};
