//! The sharded figures runner: one DCO simulation split across `K`
//! workers (threads in tests, processes under `dco-perf --shards`).
//!
//! Each worker builds the *same* workload — `add_nodes`, then
//! `Simulator::enable_sharding` with the contiguous ring-arc map, then
//! `schedule_membership` — and drives its arc through the epoch protocol
//! in [`dco_shard::epoch`]. The worker's `RESULT` frame is a wire-encoded
//! [`WorkerSummary`]; [`orchestrate`] relays the run, decodes the
//! summaries and folds them:
//!
//! * **root digest** — `wrapping_add` of the per-shard set digests (each
//!   runtime dispatch is owned by exactly one shard, and the set digest is
//!   an order-independent sum, so the fold is shard-count invariant);
//! * **counters** — disjoint per-shard sums ([`merge_counters`]);
//! * **observer** — sparse slab union ([`dco_metrics`]'s `absorb_shard`),
//!   after which `fold_figures` is bit-identical to one process.
//!
//! [`run_single_canonical`] is the `K = 1` reference: the same key-ordered
//! sharded engine in one process, whose set digest defines the canonical
//! value every `K` must reproduce.

use std::io;
use std::time::Instant;

use dco_core::proto::{DcoConfig, DcoProtocol};
use dco_dht::hash_node;
use dco_metrics::observer::FigureMetrics;
use dco_metrics::{ObserverShard, StreamObserver};
use dco_shard::epoch::{run_orchestrator, run_worker, RelayReport};
use dco_shard::link::{channel_pair, FrameLink};
use dco_shard::partition::contiguous_arcs;
use dco_sim::counters::perf::PerfMeter;
use dco_sim::counters::CounterSnapshot;
use dco_sim::engine::Simulator;
use dco_sim::net::NetConfig;
use dco_sim::node::NodeId;
use dco_sim::time::SimDuration;
use dco_sim::wire::{decode_exact, encode_to_vec, WireCodec, WireError, WireReader};

use crate::runner::{CellProof, RunParams, RunResult, RunStats};

/// `map[node] = shard` for the figures workload: contiguous arcs of the
/// Chord ring (nodes sorted by `hash_node`), near-equal population.
pub fn ring_partition(n_nodes: u32, k: u8) -> Vec<u8> {
    contiguous_arcs(n_nodes as usize, k, |id| hash_node(NodeId(id)).0)
}

/// One worker's run summary — the payload of its `RESULT` frame.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// This worker's shard index.
    pub shard: u8,
    /// Runtime events dispatched for owned nodes (excludes the shadow
    /// membership replays).
    pub owned_events: u64,
    /// All events this worker's engine dispatched, shadow flips included.
    pub events_processed: u64,
    /// Cross-shard messages this worker sent.
    pub remote_msgs_sent: u64,
    /// Order-independent digest of this worker's owned dispatches.
    pub set_digest: u64,
    /// Worker wall clock, membership install to horizon.
    pub wall_ms: f64,
    /// Allocations during the run (0 without a counting allocator).
    pub allocs: u64,
    /// Bytes requested during the run (cumulative turnover).
    pub alloc_bytes: u64,
    /// Peak bytes simultaneously live during the run.
    pub peak_live_bytes: u64,
    /// This worker's message counters (disjoint across workers: every
    /// send is recorded on the dispatching shard).
    pub counters: CounterSnapshot,
    /// This worker's observer slots, sparse.
    pub obs: ObserverShard,
}

impl WireCodec for WorkerSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.owned_events.encode(out);
        self.events_processed.encode(out);
        self.remote_msgs_sent.encode(out);
        self.set_digest.encode(out);
        self.wall_ms.encode(out);
        self.allocs.encode(out);
        self.alloc_bytes.encode(out);
        self.peak_live_bytes.encode(out);
        self.counters.encode(out);
        self.obs.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WorkerSummary {
            shard: r.get()?,
            owned_events: r.get()?,
            events_processed: r.get()?,
            remote_msgs_sent: r.get()?,
            set_digest: r.get()?,
            wall_ms: r.get()?,
            allocs: r.get()?,
            alloc_bytes: r.get()?,
            peak_live_bytes: r.get()?,
            counters: r.get()?,
            obs: r.get()?,
        })
    }
}

/// Builds one shard's simulator: full node table, sharding enabled on the
/// ring-arc map, full membership script installed. Returns the simulator
/// and the lookahead pinned by the network's constant latency.
fn build_shard_sim(params: &RunParams, k: u8, me: u8) -> (Simulator<DcoProtocol>, SimDuration) {
    let scenario = params.scenario();
    let mut cfg = if params.churn.is_some() {
        DcoConfig::paper_churn(params.n_nodes, params.n_chunks)
    } else {
        DcoConfig::paper_default(params.n_nodes, params.n_chunks)
    };
    cfg.neighbors = params.neighbors;
    let mut sim = Simulator::with_capacity(
        DcoProtocol::new(cfg),
        NetConfig::paper_model(),
        params.seed,
        params.n_nodes as usize,
    );
    scenario.add_nodes(&mut sim);
    let lookahead = sim.enable_sharding(ring_partition(params.n_nodes, k), me, k);
    scenario.schedule_membership(&mut sim);
    (sim, lookahead)
}

/// Runs shard `me` of `k` to completion over `link`, replying with a
/// wire-encoded [`WorkerSummary`] as the `RESULT` frame. This is the body
/// of the hidden `--shard-worker` mode of `dco-perf` and of the
/// thread-based test workers.
pub fn run_shard_worker<L: FrameLink>(
    params: &RunParams,
    k: u8,
    me: u8,
    link: &mut L,
) -> io::Result<()> {
    let (mut sim, lookahead) = build_shard_sim(params, k, me);
    let meter = PerfMeter::start();
    run_worker(&mut sim, params.horizon, lookahead, link, |sim| {
        let stats = sim.shard_stats().expect("sharding enabled");
        let sample = meter.finish(sim.stats().events_processed);
        encode_to_vec(&WorkerSummary {
            shard: me,
            owned_events: stats.owned_events,
            events_processed: sim.stats().events_processed,
            remote_msgs_sent: stats.remote_msgs_sent,
            set_digest: stats.set_digest,
            wall_ms: sample.wall_ms(),
            allocs: sample.alloc.allocs,
            alloc_bytes: sample.alloc.bytes,
            peak_live_bytes: sample.peak_live_bytes,
            counters: sim.counters().snapshot(),
            obs: sim.protocol().obs.export_shard(),
        })
    })
}

/// The folded outcome of one sharded run.
#[derive(Debug)]
pub struct MergedRun {
    /// Per-shard summaries, indexed by shard.
    pub workers: Vec<WorkerSummary>,
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Cross-shard batch frames the orchestrator forwarded.
    pub forwarded_batches: u64,
    /// Bytes of forwarded batch payloads.
    pub forwarded_bytes: u64,
    /// `wrapping_add` of the per-shard set digests — the value that must
    /// equal the `K = 1` canonical digest.
    pub root_digest: u64,
    /// Sum of owned runtime dispatches over shards.
    pub owned_events: u64,
    /// Sum of all dispatches (shadow replays included).
    pub events_processed: u64,
    /// Sum of cross-shard messages sent.
    pub remote_msgs: u64,
    /// Counters folded over shards.
    pub counters: CounterSnapshot,
    /// Figure statistics folded from the merged observer.
    pub figures: FigureMetrics,
}

/// Folds per-shard counter snapshots: sums everywhere, the per-tag map
/// merged by name and the per-second series element-wise. Every record
/// happens on exactly one shard, so the fold equals the one-process
/// snapshot.
pub fn merge_counters<'a>(parts: impl IntoIterator<Item = &'a CounterSnapshot>) -> CounterSnapshot {
    let mut merged = CounterSnapshot {
        control_total: 0,
        data_total: 0,
        by_tag: Vec::new(),
        control_per_sec: Vec::new(),
        dropped_dead: 0,
        dropped_fault: 0,
    };
    let mut tags: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for p in parts {
        merged.control_total += p.control_total;
        merged.data_total += p.data_total;
        merged.dropped_dead += p.dropped_dead;
        merged.dropped_fault += p.dropped_fault;
        for (tag, n) in &p.by_tag {
            *tags.entry(tag.clone()).or_default() += n;
        }
        if merged.control_per_sec.len() < p.control_per_sec.len() {
            merged.control_per_sec.resize(p.control_per_sec.len(), 0);
        }
        for (dst, src) in merged.control_per_sec.iter_mut().zip(&p.control_per_sec) {
            *dst += src;
        }
    }
    merged.by_tag = tags.into_iter().collect();
    merged
}

fn fold_offsets(params: &RunParams) -> [SimDuration; 2] {
    [SimDuration::from_secs(2), params.fill_offset]
}

/// Decodes and folds the workers' `RESULT` frames of a finished relay.
pub fn merge_relay(params: &RunParams, report: &RelayReport) -> io::Result<MergedRun> {
    let mut workers = Vec::with_capacity(report.results.len());
    for (i, bytes) in report.results.iter().enumerate() {
        let s: WorkerSummary = decode_exact(bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard {i}: undecodable summary: {e}"),
            )
        })?;
        if usize::from(s.shard) != i {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("result {i} came from shard {}", s.shard),
            ));
        }
        workers.push(s);
    }
    let mut obs = StreamObserver::new(params.n_nodes as usize, 0);
    for w in &workers {
        obs.absorb_shard(&w.obs);
    }
    let figures = obs.fold_figures(params.horizon, &fold_offsets(params));
    Ok(MergedRun {
        epochs: report.epochs,
        forwarded_batches: report.forwarded_batches,
        forwarded_bytes: report.forwarded_bytes,
        root_digest: workers
            .iter()
            .fold(0u64, |a, w| a.wrapping_add(w.set_digest)),
        owned_events: workers.iter().map(|w| w.owned_events).sum(),
        events_processed: workers.iter().map(|w| w.events_processed).sum(),
        remote_msgs: workers.iter().map(|w| w.remote_msgs_sent).sum(),
        counters: merge_counters(workers.iter().map(|w| &w.counters)),
        figures,
        workers,
    })
}

/// Relays one sharded run over `links` (one per shard, in shard order)
/// and folds the results.
pub fn orchestrate<L: FrameLink>(params: &RunParams, links: &mut [L]) -> io::Result<MergedRun> {
    let report = run_orchestrator(links)?;
    merge_relay(params, &report)
}

/// Runs the whole sharded pipeline with `k` worker *threads* over
/// in-memory links — the test path: same engine, same epoch protocol,
/// same merge, no processes.
pub fn run_sharded_threads(params: &RunParams, k: u8) -> io::Result<MergedRun> {
    let mut orch_links = Vec::with_capacity(usize::from(k));
    let mut handles = Vec::with_capacity(usize::from(k));
    for me in 0..k {
        let (orch_side, worker_side) = channel_pair();
        orch_links.push(orch_side);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let mut link = worker_side;
            run_shard_worker(&params, k, me, &mut link)
        }));
    }
    let merged = orchestrate(params, &mut orch_links);
    // Dropping the orchestrator halves unblocks any worker still waiting
    // on a dead relay, so the joins below can't hang.
    drop(orch_links);
    let mut worker_err = None;
    for h in handles {
        if let Err(e) = h.join().expect("worker thread panicked") {
            worker_err.get_or_insert(e);
        }
    }
    match (merged, worker_err) {
        (Ok(m), None) => Ok(m),
        (Err(e), _) => Err(e),
        (_, Some(e)) => Err(e),
    }
}

/// The `K = 1` canonical run: the sharded (key-ordered) engine in one
/// process, no epoch protocol needed — its set digest is the value every
/// `K > 1` run must fold back to.
pub struct SingleRun {
    /// The canonical set digest.
    pub set_digest: u64,
    /// Owned runtime dispatches (everything, at `K = 1`).
    pub owned_events: u64,
    /// All dispatches.
    pub events_processed: u64,
    /// Wall clock of the run.
    pub wall_ms: f64,
    /// Counter snapshot.
    pub counters: CounterSnapshot,
    /// Figure statistics.
    pub figures: FigureMetrics,
}

/// Runs the canonical single-process reference for `params`.
pub fn run_single_canonical(params: &RunParams) -> SingleRun {
    let (mut sim, _lookahead) = build_shard_sim(params, 1, 0);
    let t0 = Instant::now();
    sim.run_until(params.horizon);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = sim.shard_stats().expect("sharding enabled");
    let figures = sim
        .protocol()
        .obs
        .fold_figures(params.horizon, &fold_offsets(params));
    SingleRun {
        set_digest: stats.set_digest,
        owned_events: stats.owned_events,
        events_processed: sim.stats().events_processed,
        wall_ms,
        counters: sim.counters().snapshot(),
        figures,
    }
}

// ---------------------------------------------------------------------
// Wire codecs for the sweep fork (`dco-sweep --fork-seeds`): a cell
// worker ships its RunStats back as one RESULT frame.
// ---------------------------------------------------------------------

impl WireCodec for RunResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mean_mesh_delay.encode(out);
        self.fill_at_2s.encode(out);
        self.fill_at_offset.encode(out);
        self.fill_timeline.encode(out);
        self.overhead.encode(out);
        self.overhead_timeline.encode(out);
        self.received_timeline.encode(out);
        self.received_pct.encode(out);
        self.data_msgs.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RunResult {
            mean_mesh_delay: r.get()?,
            fill_at_2s: r.get()?,
            fill_at_offset: r.get()?,
            fill_timeline: r.get()?,
            overhead: r.get()?,
            overhead_timeline: r.get()?,
            received_timeline: r.get()?,
            received_pct: r.get()?,
            data_msgs: r.get()?,
        })
    }
}

impl WireCodec for CellProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_digest.encode(out);
        self.counters_digest.encode(out);
        self.snapshot.encode(out);
        self.events.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CellProof {
            trace_digest: r.get()?,
            counters_digest: r.get()?,
            snapshot: r.get()?,
            events: r.get()?,
        })
    }
}

impl WireCodec for RunStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.result.encode(out);
        self.proof.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RunStats {
            result: r.get()?,
            proof: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_sim::time::SimTime;
    use dco_workload::ChurnConfig;

    fn small_params(churn: bool) -> RunParams {
        let mut p = RunParams::small(42);
        if churn {
            p.churn = Some(ChurnConfig::paper_fig12(25));
        }
        p
    }

    fn assert_matches_single(params: &RunParams, single: &SingleRun, k: u8) {
        let m = run_sharded_threads(params, k).unwrap();
        assert_eq!(
            m.root_digest, single.set_digest,
            "K={k}: root digest diverged from the canonical single-process value"
        );
        assert_eq!(m.owned_events, single.owned_events, "K={k}: owned events");
        assert_eq!(m.counters, single.counters, "K={k}: merged counters");
        assert_eq!(
            m.figures.received_pct.to_bits(),
            single.figures.received_pct.to_bits(),
            "K={k}: received% must be bit-identical"
        );
        assert_eq!(
            m.figures.mean_mesh_delay.to_bits(),
            single.figures.mean_mesh_delay.to_bits(),
            "K={k}: mesh delay"
        );
        assert_eq!(
            m.figures.received_by_second,
            single.figures.received_by_second
        );
        assert_eq!(m.figures.expected_pairs, single.figures.expected_pairs);
        if k > 1 {
            assert!(m.forwarded_batches > 0, "K={k}: no cross-shard traffic?");
            assert!(m.remote_msgs > 0);
        }
        assert!(m.epochs > 0);
    }

    /// The tentpole property at test scale: the root digest and every
    /// folded figure are invariant in the shard count, static workload.
    #[test]
    fn sharded_static_run_is_shard_count_invariant() {
        let params = small_params(false);
        let single = run_single_canonical(&params);
        assert!(single.figures.received_pct > 95.0, "workload sanity");
        for k in [1, 2, 4] {
            assert_matches_single(&params, &single, k);
        }
    }

    /// Same invariance under churn: joins/leaves replay as shadow flips
    /// on non-owner shards, so the alive view stays globally consistent.
    #[test]
    fn sharded_churn_run_is_shard_count_invariant() {
        let params = small_params(true);
        let single = run_single_canonical(&params);
        for k in [1, 2, 4] {
            assert_matches_single(&params, &single, k);
        }
    }

    /// The CI-scale property test (release only — run with
    /// `cargo test --release -- --ignored shard_invariance`): the figures
    /// workload at N = 1k, static and churn, K ∈ {1, 2, 4}.
    #[test]
    #[ignore = "release-scale: figures workload at N=1000"]
    fn shard_invariance_figures_1k() {
        for churn in [false, true] {
            let mut params = RunParams::paper_default(42);
            params.n_nodes = 1_000;
            if churn {
                params.churn = Some(ChurnConfig::paper_fig11());
            }
            let single = run_single_canonical(&params);
            for k in [1, 2, 4] {
                assert_matches_single(&params, &single, k);
            }
        }
    }

    /// N = 10k tier of the same property (nightly).
    #[test]
    #[ignore = "release-scale: figures workload at N=10000"]
    fn shard_invariance_figures_10k() {
        for churn in [false, true] {
            let mut params = RunParams::paper_default(42);
            params.n_nodes = 10_000;
            if churn {
                params.churn = Some(ChurnConfig::paper_fig11());
            }
            let single = run_single_canonical(&params);
            for k in [1, 2, 4] {
                assert_matches_single(&params, &single, k);
            }
        }
    }

    #[test]
    fn worker_summary_codec_round_trips() {
        let s = WorkerSummary {
            shard: 3,
            owned_events: 101,
            events_processed: 140,
            remote_msgs_sent: 9,
            set_digest: 0xDEAD_BEEF,
            wall_ms: 12.75,
            allocs: 5,
            alloc_bytes: 4096,
            peak_live_bytes: 1 << 20,
            counters: CounterSnapshot {
                control_total: 7,
                data_total: 2,
                by_tag: vec![("x".to_string(), 7)],
                control_per_sec: vec![3, 4],
                dropped_dead: 0,
                dropped_fault: 0,
            },
            obs: ObserverShard {
                n_nodes: 8,
                n_chunks: 2,
                generated: vec![(0, SimTime::from_secs(1))],
                receptions: vec![(9, SimTime::from_secs(2))],
                expected_rows: 0,
                expected_words: Vec::new(),
                duplicates: 1,
                out_of_order: 0,
            },
        };
        let bytes = encode_to_vec(&s);
        let back: WorkerSummary = decode_exact(&bytes).unwrap();
        assert_eq!(back.set_digest, s.set_digest);
        assert_eq!(back.wall_ms.to_bits(), s.wall_ms.to_bits());
        assert_eq!(back.counters, s.counters);
        assert_eq!(back.obs, s.obs);
    }

    #[test]
    fn merge_counters_sums_disjoint_parts() {
        let a = CounterSnapshot {
            control_total: 5,
            data_total: 1,
            by_tag: vec![("alpha".to_string(), 5)],
            control_per_sec: vec![2, 3],
            dropped_dead: 1,
            dropped_fault: 0,
        };
        let b = CounterSnapshot {
            control_total: 4,
            data_total: 2,
            by_tag: vec![("alpha".to_string(), 1), ("beta".to_string(), 3)],
            control_per_sec: vec![1, 1, 2],
            dropped_dead: 0,
            dropped_fault: 2,
        };
        let m = merge_counters([&a, &b]);
        assert_eq!(m.control_total, 9);
        assert_eq!(m.data_total, 3);
        assert_eq!(
            m.by_tag,
            vec![("alpha".to_string(), 6), ("beta".to_string(), 3)]
        );
        assert_eq!(m.control_per_sec, vec![3, 4, 2]);
        assert_eq!((m.dropped_dead, m.dropped_fault), (1, 2));
    }

    #[test]
    fn ring_partition_is_balanced_and_total() {
        let map = ring_partition(1000, 4);
        assert_eq!(map.len(), 1000);
        for shard in 0..4u8 {
            let pop = map.iter().filter(|&&s| s == shard).count();
            assert_eq!(pop, 250, "shard {shard}");
        }
    }

    #[test]
    fn run_stats_codec_round_trips() {
        let stats = RunStats {
            result: RunResult {
                mean_mesh_delay: 1.5,
                fill_at_2s: 0.25,
                fill_at_offset: 0.75,
                fill_timeline: vec![(0.0, 0.0), (1.0, 0.5)],
                overhead: 42,
                overhead_timeline: vec![(0.0, 1.0)],
                received_timeline: vec![(0.0, 0.0), (1.0, 50.0)],
                received_pct: 99.5,
                data_msgs: 777,
            },
            proof: CellProof {
                trace_digest: 0xABCD,
                counters_digest: 0x1234,
                snapshot: CounterSnapshot {
                    control_total: 1,
                    data_total: 2,
                    by_tag: vec![],
                    control_per_sec: vec![1],
                    dropped_dead: 0,
                    dropped_fault: 0,
                },
                events: 5,
            },
        };
        let back: RunStats = decode_exact(&encode_to_vec(&stats)).unwrap();
        assert_eq!(back.proof, stats.proof);
        assert_eq!(
            back.result.received_pct.to_bits(),
            stats.result.received_pct.to_bits()
        );
        assert_eq!(back.result.fill_timeline, stats.result.fill_timeline);
        assert_eq!(back.result.data_msgs, stats.result.data_msgs);
    }
}
