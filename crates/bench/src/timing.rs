//! A tiny self-contained timing harness for the `benches/` targets.
//!
//! The workspace carries no external bench framework (offline
//! reproducibility), and the benches only need honest wall-clock numbers,
//! not statistical rigor: each [`bench()`] call warms up, runs a fixed
//! number of timed iterations, and prints min / median / mean per
//! iteration. Benches are plain `fn main()` targets (`harness = false`)
//! run via `cargo bench -p dco-bench`.

use std::hint::black_box;
use std::time::Instant;

/// Times `iters` runs of `f` (after one warm-up) and prints one aligned
/// report line. Returns the median duration in nanoseconds.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> u128 {
    black_box(f());
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{name:<40} {:>12} {:>12} {:>12}  ({iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
    median
}

/// Prints the header row matching [`bench()`]'s output columns.
pub fn header(group: &str) {
    println!("\n== {group} ==");
    println!(
        "{:<40} {:>12} {:>12} {:>12}",
        "benchmark", "min", "median", "mean"
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut calls = 0u32;
        let med = bench("noop", 5, || {
            calls += 1;
            calls
        });
        // warm-up + 5 timed iterations
        assert_eq!(calls, 6);
        assert!(med < 1_000_000_000);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
