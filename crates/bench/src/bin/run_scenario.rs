//! Ad-hoc scenario runner: one protocol, one parameter set, all four
//! metrics (plus playback QoS) printed — the quickest way to poke at the
//! system without writing code.
//!
//! ```text
//! run_scenario --method dco --nodes 128 --chunks 60 --neighbors 16 \
//!              [--churn <mean-life-s>] [--horizon <s>] [--seed <n>] \
//!              [--full-model]
//! ```

use dco_bench::{run, Method, RunParams};
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::ChurnConfig;

struct Args {
    method: Method,
    params: RunParams,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut method = Method::Dco;
    let mut params = RunParams::paper_default(42);
    params.n_nodes = 128;
    params.n_chunks = 60;
    params.neighbors = 16;
    params.horizon = SimTime::from_secs(160);
    params.fill_offset = SimDuration::from_secs(10);
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let mut val = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(String::as_str)
                .ok_or(format!("{key} needs a value"))
        };
        match key {
            "--method" => {
                method = match val()? {
                    "dco" => Method::Dco,
                    "pull" => Method::Pull,
                    "push" => Method::Push,
                    "tree" => Method::Tree,
                    "tree*" | "treestar" => Method::TreeStar,
                    other => return Err(format!("unknown method {other}")),
                }
            }
            "--nodes" => params.n_nodes = val()?.parse().map_err(|e| format!("{e}"))?,
            "--chunks" => params.n_chunks = val()?.parse().map_err(|e| format!("{e}"))?,
            "--neighbors" => params.neighbors = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => params.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--horizon" => {
                params.horizon = SimTime::from_secs(val()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--churn" => {
                let life: u64 = val()?.parse().map_err(|e| format!("{e}"))?;
                params.churn = Some(ChurnConfig::paper_fig12(life));
            }
            "--tree-degree" => {
                params.tree_degree = Some(val()?.parse().map_err(|e| format!("{e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(Args { method, params })
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: run_scenario --method dco|pull|push|tree --nodes N --chunks C --neighbors K [--churn LIFE] [--horizon S] [--seed N] [--tree-degree D]");
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    let r = run(args.method, &args.params);
    let wall = t0.elapsed();

    println!(
        "== {} | {} nodes | {} chunks | {} neighbors | churn: {} | seed {} ==",
        args.method.label(),
        args.params.n_nodes,
        args.params.n_chunks,
        args.params.neighbors,
        args.params
            .churn
            .as_ref()
            .map(|c| format!("mean life {}", c.mean_life))
            .unwrap_or_else(|| "none".into()),
        args.params.seed,
    );
    println!("mean mesh delay     : {:>10.2} s", r.mean_mesh_delay);
    println!("fill @ +2 s         : {:>10.3}", r.fill_at_2s);
    println!(
        "fill @ +{} s        : {:>10.3}",
        args.params.fill_offset.as_secs(),
        r.fill_at_offset
    );
    println!("extra overhead      : {:>10} messages", r.overhead);
    println!("data transmissions  : {:>10}", r.data_msgs);
    println!("received by horizon : {:>10.1} %", r.received_pct);
    println!("wall time           : {:>10.1} s", wall.as_secs_f64());
}
