//! Runs the DESIGN.md ablation studies and prints their tables.
//!
//! ```text
//! ablations [--scale paper|small]
//! ```

use dco_bench::ablation;
use dco_bench::figs::FigScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("paper") => FigScale::paper(),
            Some("small") | None => FigScale::small(),
            Some(other) => {
                eprintln!("unknown scale {other} (use paper|small)");
                std::process::exit(2);
            }
        },
        None => FigScale::small(),
    };

    type Study = fn(&FigScale) -> Vec<ablation::AblationRow>;
    let studies: [(&str, Study); 4] = [
        (
            "Ablation A: provider selection (sufficient-bandwidth vs random)",
            ablation::ablate_selection,
        ),
        (
            "Ablation B: prefetch window (adaptive Eq. 2 vs fixed), under churn",
            ablation::ablate_window,
        ),
        (
            "Ablation C: tier mode (flat §IV ring vs hierarchical §III)",
            ablation::ablate_tier,
        ),
        (
            "Ablation D: bandwidth model (sender-side vs full store-and-forward)",
            ablation::ablate_bandwidth_model,
        ),
    ];

    for (title, f) in studies {
        let t0 = std::time::Instant::now();
        let rows = f(&scale);
        println!("{}", ablation::to_table(title, &rows));
        println!("# generated in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
}
