//! The batch-sweep driver: expands a (method × nodes × churn × seed)
//! grid, runs every cell in parallel, and writes the aggregated report.
//!
//! ```text
//! dco-sweep [--preset tiny|small|paper]
//!           [--methods dco,pull,push,tree,tree*]
//!           [--nodes 64,128] [--churn static,life60] [--seeds N]
//!           [--master-seed S] [--jobs N] [--out DIR] [--tag NAME]
//! ```
//!
//! Prints the aggregated table to stdout and writes the full JSON report
//! (schema `dco-sweep/v1`, documented in EXPERIMENTS.md) to
//! `DIR/sweep_<tag>.json` (default `results/sweep_<preset>.json`). The
//! per-cell `trace_digest` values in the JSON are bit-identical across
//! `--jobs` levels — diff two reports to audit determinism.
//!
//! `--fork-seeds` runs each cell in its own re-exec'd *process* instead of
//! a thread (the same worker runner the sharded simulation uses): the
//! parent keeps a `--jobs`-wide wave of children alive, each child
//! re-derives the identical grid from the same argv, runs exactly one cell
//! (hidden `--cell-worker IDX` mode) and sends its wire-encoded
//! [`RunStats`] back as a single frame. Reports are bit-identical to the
//! in-process path; a crashed child fails the sweep with that child's
//! stderr surfaced instead of hanging the parent.

use dco_bench::runner::{Method, RunStats};
use dco_bench::sweep::{
    aggregate_outcomes, expand, run_cell, run_sweep, CellOutcome, SweepConfig, SweepReport,
};
use dco_shard::epoch::tag;
use dco_shard::link::{FrameLink, PipeLink};
use dco_shard::procpool::{reap_failure, spawn_worker, WorkerProc};
use dco_sim::wire::{decode_exact, encode_to_vec};
use dco_workload::{ChurnLevel, ScenarioGrid};

fn parse_methods(s: &str) -> Result<Vec<Method>, String> {
    s.split(',')
        .map(|m| match m.trim() {
            "dco" => Ok(Method::Dco),
            "pull" => Ok(Method::Pull),
            "push" => Ok(Method::Push),
            "tree" => Ok(Method::Tree),
            "tree*" | "treestar" => Ok(Method::TreeStar),
            other => Err(format!("unknown method {other:?}")),
        })
        .collect()
}

fn parse_churn(s: &str) -> Result<Vec<ChurnLevel>, String> {
    s.split(',')
        .map(|c| {
            let c = c.trim();
            if c == "static" {
                Ok(ChurnLevel::Static)
            } else if let Some(life) = c.strip_prefix("life") {
                life.parse()
                    .map(ChurnLevel::MeanLife)
                    .map_err(|e| format!("bad churn level {c:?}: {e}"))
            } else {
                Err(format!("unknown churn level {c:?} (use static or life<S>)"))
            }
        })
        .collect()
}

fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(|n| {
            n.trim()
                .parse()
                .map_err(|e| format!("bad number {n:?}: {e}"))
        })
        .collect()
}

struct Args {
    cfg: SweepConfig,
    out_dir: String,
    tag: String,
    /// Run every cell in its own child process instead of a thread.
    fork_seeds: bool,
    /// Hidden: this process is a forked cell worker — run grid cell `IDX`
    /// and write its wire-encoded `RunStats` to stdout as one frame.
    cell_worker: Option<usize>,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SweepConfig::small();
    let mut out_dir = "results".to_string();
    let mut tag = "small".to_string();
    let mut fork_seeds = false;
    let mut cell_worker = None;
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let mut val = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(String::as_str)
                .ok_or(format!("{key} needs a value"))
        };
        match key {
            "--preset" => {
                let name = val()?;
                cfg = match name {
                    "tiny" => SweepConfig::tiny(),
                    "small" => SweepConfig::small(),
                    "paper" => SweepConfig::paper(),
                    other => return Err(format!("unknown preset {other:?}")),
                };
                tag = name.to_string();
            }
            "--methods" => cfg.methods = parse_methods(val()?)?,
            "--nodes" => cfg.grid.populations = parse_u32_list(val()?)?,
            "--churn" => cfg.grid.churn = parse_churn(val()?)?,
            "--seeds" => {
                let n: usize = val()?.parse().map_err(|e| format!("{e}"))?;
                cfg.grid.seeds = ScenarioGrid::seed_list(0xD15C0, n);
            }
            "--master-seed" => cfg.master_seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => cfg.jobs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--out" => out_dir = val()?.to_string(),
            "--tag" => tag = val()?.to_string(),
            "--fork-seeds" => fork_seeds = true,
            "--cell-worker" => {
                cell_worker = Some(val()?.parse().map_err(|e| format!("--cell-worker: {e}"))?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(Args {
        cfg,
        out_dir,
        tag,
        fork_seeds,
        cell_worker,
    })
}

/// Hidden `--cell-worker` mode: the child re-derived the same grid from
/// the same argv, so `idx` addresses the same cell the parent holds. Run
/// it and ship the stats back as one `RESULT` frame.
fn run_cell_worker(cfg: &SweepConfig, idx: usize) -> Result<(), String> {
    let cells = expand(cfg);
    let cell = cells
        .get(idx)
        .ok_or_else(|| format!("--cell-worker {idx}: grid has {} cells", cells.len()))?;
    let outcome = run_cell(cfg, cell);
    let mut link = PipeLink::new(std::io::stdin(), std::io::stdout());
    link.send(tag::RESULT, &encode_to_vec(&outcome.stats))
        .and_then(|()| link.flush())
        .map_err(|e| format!("cell {idx}: sending result: {e}"))
}

/// `--fork-seeds`: run the grid in `--jobs`-wide waves of child
/// processes, one cell each, and aggregate exactly like the in-process
/// path (the report is bit-identical).
fn run_sweep_forked(cfg: &SweepConfig) -> Result<SweepReport, String> {
    let cells = expand(cfg);
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.jobs
    }
    .max(1);
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(cells.len());
    let mut next = 0usize;
    while next < cells.len() {
        let wave: Vec<usize> = (next..cells.len().min(next + jobs)).collect();
        next += wave.len();
        let mut workers: Vec<(usize, WorkerProc)> = Vec::with_capacity(wave.len());
        let spawn = |idx: usize| -> std::io::Result<WorkerProc> {
            let mut child_args = argv.clone();
            child_args.push("--cell-worker".to_string());
            child_args.push(idx.to_string());
            spawn_worker(&child_args, idx)
        };
        for &idx in &wave {
            match spawn(idx) {
                Ok(w) => workers.push((idx, w)),
                Err(e) => {
                    let pool = workers.into_iter().map(|(_, w)| w).collect();
                    return Err(reap_failure(pool, e).to_string());
                }
            }
        }
        // Harvest in index order: children run concurrently regardless;
        // the recv order only fixes the outcome order for aggregation.
        let mut pending = workers.into_iter();
        while let Some((idx, mut w)) = pending.next() {
            let harvest = w.link.recv().and_then(|(t, payload)| {
                if t != tag::RESULT {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("cell {idx}: unexpected frame tag {t}"),
                    ));
                }
                decode_exact::<RunStats>(&payload).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("cell {idx}: {e}"))
                })
            });
            let stats = match harvest {
                Ok(s) => s,
                Err(e) => {
                    let mut pool = vec![w];
                    pool.extend(pending.map(|(_, w)| w));
                    return Err(reap_failure(pool, e).to_string());
                }
            };
            if let Err(e) = w.finish() {
                let pool = pending.map(|(_, w)| w).collect();
                return Err(reap_failure(pool, e).to_string());
            }
            outcomes.push(CellOutcome {
                cell: cells[idx],
                stats,
            });
        }
    }
    Ok(aggregate_outcomes(cfg, outcomes))
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: dco-sweep [--preset tiny|small|paper] [--methods dco,pull,...] \
                 [--nodes 64,128] [--churn static,life60] [--seeds N] \
                 [--master-seed S] [--jobs N] [--out DIR] [--tag NAME] [--fork-seeds]"
            );
            std::process::exit(2);
        }
    };
    if let Some(idx) = args.cell_worker {
        if let Err(e) = run_cell_worker(&args.cfg, idx) {
            eprintln!("dco-sweep: {e}");
            std::process::exit(1);
        }
        return;
    }
    let cells = args.cfg.methods.len() * args.cfg.grid.len();
    eprintln!(
        "# sweep: {} methods x {} populations x {} churn levels x {} seeds = {} cells, jobs={}",
        args.cfg.methods.len(),
        args.cfg.grid.populations.len(),
        args.cfg.grid.churn.len(),
        args.cfg.grid.seeds.len(),
        cells,
        if args.cfg.jobs == 0 {
            "auto".to_string()
        } else {
            args.cfg.jobs.to_string()
        },
    );
    let t0 = std::time::Instant::now();
    let report = if args.fork_seeds {
        match run_sweep_forked(&args.cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dco-sweep: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_sweep(&args.cfg)
    };
    let wall = t0.elapsed();

    print!("{}", report.to_table());
    println!(
        "# {} cells in {:.1}s ({:.2}s/cell wall)",
        cells,
        wall.as_secs_f64(),
        wall.as_secs_f64() / cells.max(1) as f64
    );

    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = format!("{}/sweep_{}.json", args.out_dir, args.tag);
    std::fs::write(&path, report.to_json()).expect("write report");
    println!("# wrote {path}");
}
