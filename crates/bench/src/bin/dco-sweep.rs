//! The batch-sweep driver: expands a (method × nodes × churn × seed)
//! grid, runs every cell in parallel, and writes the aggregated report.
//!
//! ```text
//! dco-sweep [--preset tiny|small|paper]
//!           [--methods dco,pull,push,tree,tree*]
//!           [--nodes 64,128] [--churn static,life60] [--seeds N]
//!           [--master-seed S] [--jobs N] [--out DIR] [--tag NAME]
//! ```
//!
//! Prints the aggregated table to stdout and writes the full JSON report
//! (schema `dco-sweep/v1`, documented in EXPERIMENTS.md) to
//! `DIR/sweep_<tag>.json` (default `results/sweep_<preset>.json`). The
//! per-cell `trace_digest` values in the JSON are bit-identical across
//! `--jobs` levels — diff two reports to audit determinism.

use dco_bench::runner::Method;
use dco_bench::sweep::{run_sweep, SweepConfig};
use dco_workload::{ChurnLevel, ScenarioGrid};

fn parse_methods(s: &str) -> Result<Vec<Method>, String> {
    s.split(',')
        .map(|m| match m.trim() {
            "dco" => Ok(Method::Dco),
            "pull" => Ok(Method::Pull),
            "push" => Ok(Method::Push),
            "tree" => Ok(Method::Tree),
            "tree*" | "treestar" => Ok(Method::TreeStar),
            other => Err(format!("unknown method {other:?}")),
        })
        .collect()
}

fn parse_churn(s: &str) -> Result<Vec<ChurnLevel>, String> {
    s.split(',')
        .map(|c| {
            let c = c.trim();
            if c == "static" {
                Ok(ChurnLevel::Static)
            } else if let Some(life) = c.strip_prefix("life") {
                life.parse()
                    .map(ChurnLevel::MeanLife)
                    .map_err(|e| format!("bad churn level {c:?}: {e}"))
            } else {
                Err(format!("unknown churn level {c:?} (use static or life<S>)"))
            }
        })
        .collect()
}

fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(|n| {
            n.trim()
                .parse()
                .map_err(|e| format!("bad number {n:?}: {e}"))
        })
        .collect()
}

struct Args {
    cfg: SweepConfig,
    out_dir: String,
    tag: String,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SweepConfig::small();
    let mut out_dir = "results".to_string();
    let mut tag = "small".to_string();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let mut val = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(String::as_str)
                .ok_or(format!("{key} needs a value"))
        };
        match key {
            "--preset" => {
                let name = val()?;
                cfg = match name {
                    "tiny" => SweepConfig::tiny(),
                    "small" => SweepConfig::small(),
                    "paper" => SweepConfig::paper(),
                    other => return Err(format!("unknown preset {other:?}")),
                };
                tag = name.to_string();
            }
            "--methods" => cfg.methods = parse_methods(val()?)?,
            "--nodes" => cfg.grid.populations = parse_u32_list(val()?)?,
            "--churn" => cfg.grid.churn = parse_churn(val()?)?,
            "--seeds" => {
                let n: usize = val()?.parse().map_err(|e| format!("{e}"))?;
                cfg.grid.seeds = ScenarioGrid::seed_list(0xD15C0, n);
            }
            "--master-seed" => cfg.master_seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => cfg.jobs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--out" => out_dir = val()?.to_string(),
            "--tag" => tag = val()?.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(Args { cfg, out_dir, tag })
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: dco-sweep [--preset tiny|small|paper] [--methods dco,pull,...] \
                 [--nodes 64,128] [--churn static,life60] [--seeds N] \
                 [--master-seed S] [--jobs N] [--out DIR] [--tag NAME]"
            );
            std::process::exit(2);
        }
    };
    let cells = args.cfg.methods.len() * args.cfg.grid.len();
    eprintln!(
        "# sweep: {} methods x {} populations x {} churn levels x {} seeds = {} cells, jobs={}",
        args.cfg.methods.len(),
        args.cfg.grid.populations.len(),
        args.cfg.grid.churn.len(),
        args.cfg.grid.seeds.len(),
        cells,
        if args.cfg.jobs == 0 {
            "auto".to_string()
        } else {
            args.cfg.jobs.to_string()
        },
    );
    let t0 = std::time::Instant::now();
    let report = run_sweep(&args.cfg);
    let wall = t0.elapsed();

    print!("{}", report.to_table());
    println!(
        "# {} cells in {:.1}s ({:.2}s/cell wall)",
        cells,
        wall.as_secs_f64(),
        wall.as_secs_f64() / cells.max(1) as f64
    );

    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = format!("{}/sweep_{}.json", args.out_dir, args.tag);
    std::fs::write(&path, report.to_json()).expect("write report");
    println!("# wrote {path}");
}
