//! `dco-perf` — the recorded performance baseline of the simulator core.
//!
//! Times the figures workload (§IV parameters — 100 chunks, 32 neighbors,
//! 200 s horizon, static DCO ring — with the population scaled up) and
//! writes `BENCH_sim_core.json` in a `dco-perf/v1` schema modelled on the
//! sweep report's `dco-sweep/v1`. The committed JSON carries both the
//! pre-optimization baseline (pinned in [`PRE_PR_BASELINE`], measured on
//! the seed engine with this same harness) and the current measurement, so
//! later PRs have a trajectory to beat.
//!
//! ```text
//! dco-perf [--populations 1000,5000,10000] [--runs 5]
//!          [--out BENCH_sim_core.json] [--label NAME] [--stdout]
//! dco-perf --scale        # large-N memory ladder → BENCH_scale.json
//! dco-perf --scale-churn  # churn (figs 11-12) ladder → BENCH_churn_scale.json
//! dco-perf --digests      # golden trace-digest table for tests/determinism.rs
//! dco-perf --shards 4 --populations 100000   # multi-process run → BENCH_shard.json
//! ```
//!
//! `--shards K` runs the figures workload once per population as a
//! *sharded multi-process* simulation: `K` re-execs of this binary (the
//! hidden `--shard-worker` mode), each owning a contiguous ring arc,
//! exchanging cross-shard messages in lookahead-sized epochs over their
//! stdio pipes. For every population the single-process canonical run
//! (the same key-ordered engine at `K = 1`) executes first; the sharded
//! run's folded root digest must reproduce its set digest bit-for-bit or
//! the run fails. `BENCH_shard.json` records per-shard event counts,
//! cross-shard message volume, the peak-live-bytes maximum over workers,
//! both wall clocks and the speedup — plus the host's core count, since
//! K workers on fewer than K cores time-slice rather than parallelize
//! (`--churn` switches the workload onto the figs 11–12 churn model).
//!
//! Every run also records its trace digest: static DCO runs are
//! deterministic, so the digest per population doubles as a cross-engine
//! determinism check (an optimized engine must reproduce it bit-for-bit).
//!
//! `--scale` runs the memory ladder (N = 1k → 100k, one run each) and
//! writes `BENCH_scale.json`: per tier, wall clock, peak live bytes (from
//! the counting allocator's high-water mark) and bytes per node. The
//! bytes/node column is the flat-layout check — it must stay roughly
//! constant as N grows (no super-linear memory).
//!
//! `--scale-churn` is the same ladder under the figures 11–12 churn model
//! (`ChurnConfig::paper_fig11`: mean lifetime = join interval = 60 s, all
//! departures abrupt, dynamic Chord ring with live stabilization), writing
//! `BENCH_churn_scale.json`. Churn runs at a fixed seed are deterministic,
//! so each tier's digest is pinned the same way as the static ladder —
//! [`PRE_FLAT_CHURN_DIGESTS`] carries the pre-flattening values and any
//! drift hard-fails the run.

use std::process::ExitCode;
use std::time::Instant;

use dco_bench::shard_run::{orchestrate, run_shard_worker, run_single_canonical, MergedRun};
use dco_bench::sweep::json::Json;
use dco_bench::{run_with_stats, Method, RunParams};
use dco_shard::link::PipeLink;
use dco_shard::procpool::{reap_failure, spawn_worker, WorkerProc};
use dco_sim::counters::perf::{CountingAlloc, PerfMeter, PerfSample};
use dco_sim::time::{SimDuration, SimTime};
use dco_workload::{ChurnConfig, ScenarioGrid};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Medians measured on the pre-PR engine (binary-heap calendar, deep-copy
/// fan-out, BTreeMap DHT stores) with this harness: `(n_nodes,
/// wall_ms_median, events, trace_digest)`. Regenerate by checking out the
/// commit before the hot-path overhaul and running `dco-perf --stdout`.
const PRE_PR_BASELINE: &[(u32, f64, u64, u64)] = &[
    (1_000, 3596.764587, 7_258_472, 0xfedd_21ae_0462_f672),
    (5_000, 42267.476771, 42_659_350, 0xabe2_aa4c_859a_84cc),
    (10_000, 141439.299442, 91_365_887, 0x10ef_10a0_8935_a8b8),
];

/// Digests of the figures workload measured on the retained-observer
/// engine (the commit before the flat-layout PR) at the large-N tiers the
/// seed engine could not reach in reasonable time. The flat engine must
/// reproduce them bit-for-bit: the layout change is not allowed to move a
/// single event.
const PRE_FLAT_DIGESTS: &[(u32, u64, u64)] = &[
    (50_000, 572_125_634, 0x5b90_2f59_2f12_da68),
    (100_000, 1_270_885_329, 0x79c2_50f0_fd68_ba07),
];

/// Digests of the churn figures workload (figs 11–12 shape,
/// `ChurnConfig::paper_fig11`, seed 42) measured on the engine *before*
/// the churn books were flattened, at the tiers that engine could reach
/// (1k/10k). The flat churn path must reproduce them bit-for-bit — the
/// CI `churn-scale-smoke` job asserts this on every PR. The 50k entry was
/// recorded on the flat engine (the first that fits the tier) and pins
/// the tier against future drift.
const PRE_FLAT_CHURN_DIGESTS: &[(u32, u64, u64)] = &[
    (1_000, 13_019_723, 0x7054_7214_70b6_2603),
    (10_000, 152_428_043, 0x8f05_16e3_66f1_8e2e),
    (50_000, 830_212_465, 0xb2e5_7273_57d3_b252),
];

/// Canonical single-process set digests of the sharded (key-ordered)
/// engine on the figures workload: `(n_nodes, churn, owned_events,
/// set_digest)`. The `K = 1` run defines them; every `K` must fold back
/// to the same root digest, and the `shard-smoke` CI job re-checks the
/// small tiers on each push. Regenerate with
/// `dco-perf --shards 1 --populations N [--churn] --stdout`.
const SHARD_CANONICAL_DIGESTS: &[(u32, bool, u64, u64)] = &[
    (1_000, false, 7_280_215, 0x2afc_390e_2ce4_91bd),
    (10_000, false, 90_461_498, 0x88ef_a932_000b_b76d),
    (1_000, true, 13_000_317, 0x9c2b_e5aa_ec6f_2a3c),
    (10_000, true, 153_109_518, 0x506c_0da9_4974_3478),
];

const PRE_PR_LABEL: &str = "pre-pr2-seed-engine";
const DEFAULT_POPULATIONS: [u32; 3] = [1_000, 5_000, 10_000];
/// The `--scale` memory ladder.
const SCALE_POPULATIONS: [u32; 4] = [1_000, 10_000, 50_000, 100_000];
/// The `--scale-churn` ladder (churn runs cost ~7x static per node, so
/// the ladder tops out at 50k; the 50k tier runs nightly, not per-PR).
const CHURN_SCALE_POPULATIONS: [u32; 3] = [1_000, 10_000, 50_000];
const DEFAULT_RUNS: usize = 5;
const DEFAULT_OUT: &str = "BENCH_sim_core.json";
const SCALE_OUT: &str = "BENCH_scale.json";
const CHURN_SCALE_OUT: &str = "BENCH_churn_scale.json";
const SHARD_OUT: &str = "BENCH_shard.json";
/// Default populations of the `--shards` mode (CI smoke overrides with
/// `--populations`; the headline run passes `--populations 100000`).
const SHARD_POPULATIONS: [u32; 2] = [1_000, 10_000];

/// The figures workload at population `n`: §IV defaults with the node
/// count overridden and the seed fixed (static DCO is seed-invariant).
fn figures_params(n_nodes: u32) -> RunParams {
    let mut p = RunParams::paper_default(42);
    p.n_nodes = n_nodes;
    p
}

/// The churn figures workload (figs 11–12 shape) at population `n`: the
/// same §IV defaults under `ChurnConfig::paper_fig11` — mean lifetime =
/// join interval = 60 s, all departures abrupt — which switches the run
/// onto the dynamic Chord ring (live stabilization, finger repair,
/// coordinator churn).
fn churn_figures_params(n_nodes: u32) -> RunParams {
    let mut p = figures_params(n_nodes);
    p.churn = Some(ChurnConfig::paper_fig11());
    p
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

struct PopulationReport {
    n_nodes: u32,
    samples: Vec<PerfSample>,
    trace_digest: u64,
}

impl PopulationReport {
    /// Peak live bytes over the runs (they are deterministic, so max ≈
    /// median; max is robust against a cold first run).
    fn peak_live_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.peak_live_bytes)
            .max()
            .unwrap_or(0)
    }
}

fn measure_population(n_nodes: u32, runs: usize) -> PopulationReport {
    measure_workload(n_nodes, runs, false)
}

fn measure_workload(n_nodes: u32, runs: usize, churn: bool) -> PopulationReport {
    let params = if churn {
        churn_figures_params(n_nodes)
    } else {
        figures_params(n_nodes)
    };
    let mut samples = Vec::with_capacity(runs);
    let mut trace_digest = None;
    for run in 0..runs {
        let meter = PerfMeter::start();
        let stats = run_with_stats(Method::Dco, &params);
        let sample = meter.finish(stats.proof.events);
        eprintln!(
            "  n={n_nodes} run {}/{}: {:.1} ms, {} events ({:.2} Mev/s), {} allocs, peak {:.1} MiB",
            run + 1,
            runs,
            sample.wall_ms(),
            sample.events,
            sample.events_per_sec() / 1e6,
            sample.alloc.allocs,
            sample.peak_live_bytes as f64 / (1024.0 * 1024.0),
        );
        match trace_digest {
            None => trace_digest = Some(stats.proof.trace_digest),
            Some(d) => assert_eq!(
                d, stats.proof.trace_digest,
                "n={n_nodes}: repeat run diverged — determinism bug"
            ),
        }
        samples.push(sample);
    }
    let report = PopulationReport {
        n_nodes,
        samples,
        trace_digest: trace_digest.expect("runs >= 1"),
    };
    let pinned = if churn {
        PRE_FLAT_CHURN_DIGESTS
    } else {
        PRE_FLAT_DIGESTS
    };
    if let Some((_, events, digest)) = pinned.iter().find(|(n, ..)| *n == n_nodes) {
        let sample_events = report.samples[0].events;
        assert_eq!(
            *digest, report.trace_digest,
            "n={n_nodes}: trace digest {:#018x} diverged from the pre-flat engine — \
             the layout change moved an event",
            report.trace_digest
        );
        assert_eq!(*events, sample_events, "n={n_nodes}: event count diverged");
        eprintln!("  n={n_nodes}: digest matches pre-flat engine");
    }
    report
}

fn population_json(rep: &PopulationReport) -> Json {
    let mut wall: Vec<f64> = rep.samples.iter().map(|s| s.wall_ms()).collect();
    let runs_json = Json::Arr(wall.iter().map(|w| Json::Num(*w)).collect());
    let wall_median = median(&mut wall);
    let wall_min = wall.first().copied().unwrap_or(0.0);
    let wall_mean = wall.iter().sum::<f64>() / wall.len().max(1) as f64;
    let events = rep.samples.first().map(|s| s.events).unwrap_or(0);
    let events_per_sec = if wall_median > 0.0 {
        events as f64 / (wall_median / 1e3)
    } else {
        0.0
    };
    let allocs = rep
        .samples
        .iter()
        .map(|s| s.alloc.allocs)
        .min()
        .unwrap_or(0);
    let alloc_bytes = rep.samples.iter().map(|s| s.alloc.bytes).min().unwrap_or(0);
    let peak_live = rep.peak_live_bytes();
    let live_end = rep
        .samples
        .iter()
        .map(|s| s.live_bytes_end)
        .max()
        .unwrap_or(0);
    let baseline = PRE_PR_BASELINE.iter().find(|(n, ..)| *n == rep.n_nodes);
    let mut pairs = vec![
        ("n_nodes", Json::Int(u64::from(rep.n_nodes))),
        ("wall_ms_median", Json::Num(wall_median)),
        ("wall_ms_min", Json::Num(wall_min)),
        ("wall_ms_mean", Json::Num(wall_mean)),
        ("wall_ms_runs", runs_json),
        ("events", Json::Int(events)),
        ("events_per_sec_median", Json::Num(events_per_sec)),
        ("allocs_min", Json::Int(allocs)),
        ("alloc_bytes_min", Json::Int(alloc_bytes)),
        ("peak_live_bytes", Json::Int(peak_live)),
        (
            "bytes_per_node",
            Json::Int(peak_live / u64::from(rep.n_nodes.max(1))),
        ),
        ("live_bytes_end", Json::Int(live_end)),
        ("trace_digest", Json::hex(rep.trace_digest)),
    ];
    if let Some((_, base_ms, base_events, base_digest)) = baseline {
        pairs.push(("baseline_wall_ms_median", Json::Num(*base_ms)));
        pairs.push((
            "speedup_vs_baseline",
            if wall_median > 0.0 {
                Json::Num(base_ms / wall_median)
            } else {
                Json::Null
            },
        ));
        pairs.push((
            "events_match_baseline",
            Json::Bool(*base_events == 0 || *base_events == events),
        ));
        pairs.push((
            "trace_digest_matches_baseline",
            Json::Bool(*base_digest == 0 || *base_digest == rep.trace_digest),
        ));
    }
    Json::obj(pairs)
}

fn baseline_json() -> Json {
    Json::obj(vec![
        ("label", Json::str(PRE_PR_LABEL)),
        (
            "populations",
            Json::Arr(
                PRE_PR_BASELINE
                    .iter()
                    .map(|(n, ms, events, digest)| {
                        Json::obj(vec![
                            ("n_nodes", Json::Int(u64::from(*n))),
                            ("wall_ms_median", Json::Num(*ms)),
                            ("events", Json::Int(*events)),
                            ("trace_digest", Json::hex(*digest)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn report_json(label: &str, runs: usize, reports: &[PopulationReport]) -> Json {
    let params = figures_params(0);
    Json::obj(vec![
        ("schema", Json::str("dco-perf/v1")),
        (
            "scenario",
            Json::obj(vec![
                ("method", Json::str("DCO")),
                ("n_chunks", Json::Int(u64::from(params.n_chunks))),
                ("neighbors", Json::Int(params.neighbors as u64)),
                ("horizon_s", Json::Int(params.horizon.as_secs())),
                ("seed", Json::Int(params.seed)),
                ("churn", Json::Bool(false)),
            ]),
        ),
        ("runs_per_population", Json::Int(runs as u64)),
        ("baseline", baseline_json()),
        (
            "current",
            Json::obj(vec![
                ("label", Json::str(label)),
                (
                    "populations",
                    Json::Arr(reports.iter().map(population_json).collect()),
                ),
            ]),
        ),
    ])
}

/// Runs the `--scale` / `--scale-churn` memory ladder: the (static or
/// churn) figures workload at each tier, one run each, reporting peak
/// live bytes and bytes/node. Returns the report JSON.
fn run_scale(label: &str, churn: bool, tiers: &[u32]) -> Json {
    let reports: Vec<PopulationReport> = tiers
        .iter()
        .map(|&n| measure_workload(n, 1, churn))
        .collect();
    // Linearity check: bytes/node at the largest tier vs the smallest.
    // Flat layouts keep this ratio near 1; the retained observer's
    // audience × chunk growth pushed it well above.
    let bytes_per_node =
        |rep: &PopulationReport| rep.peak_live_bytes() as f64 / f64::from(rep.n_nodes.max(1));
    let growth = match (reports.first(), reports.last()) {
        (Some(a), Some(b)) if bytes_per_node(a) > 0.0 => bytes_per_node(b) / bytes_per_node(a),
        _ => 0.0,
    };
    eprintln!("dco-perf: bytes/node growth smallest→largest tier: {growth:.2}x");
    let tiers = reports
        .iter()
        .map(|rep| {
            let sample = &rep.samples[0];
            Json::obj(vec![
                ("n_nodes", Json::Int(u64::from(rep.n_nodes))),
                ("wall_ms", Json::Num(sample.wall_ms())),
                ("events", Json::Int(sample.events)),
                ("events_per_sec", Json::Num(sample.events_per_sec())),
                ("peak_live_bytes", Json::Int(rep.peak_live_bytes())),
                (
                    "bytes_per_node",
                    Json::Int(rep.peak_live_bytes() / u64::from(rep.n_nodes.max(1))),
                ),
                ("live_bytes_end", Json::Int(sample.live_bytes_end)),
                ("trace_digest", Json::hex(rep.trace_digest)),
            ])
        })
        .collect();
    let params = figures_params(0);
    Json::obj(vec![
        ("schema", Json::str("dco-scale/v1")),
        ("label", Json::str(label)),
        (
            "scenario",
            Json::obj(vec![
                ("method", Json::str("DCO")),
                ("n_chunks", Json::Int(u64::from(params.n_chunks))),
                ("neighbors", Json::Int(params.neighbors as u64)),
                ("horizon_s", Json::Int(params.horizon.as_secs())),
                ("seed", Json::Int(params.seed)),
                ("churn", Json::Bool(churn)),
            ]),
        ),
        (
            "bytes_per_node_growth_smallest_to_largest",
            Json::Num(growth),
        ),
        ("populations", Json::Arr(tiers)),
    ])
}

fn shard_params(n_nodes: u32, churn: bool) -> RunParams {
    if churn {
        churn_figures_params(n_nodes)
    } else {
        figures_params(n_nodes)
    }
}

/// Hidden `--shard-worker` mode: run one shard's arc of the figures
/// workload, speaking the epoch protocol over this process's stdio.
fn shard_worker_main(args: &Args) -> Result<(), String> {
    let me = args.shard_worker.expect("worker mode");
    if args.shards == 0 || me >= args.shards {
        return Err(format!("--shard-worker {me} needs --shards > {me}"));
    }
    let n = *args
        .populations
        .first()
        .ok_or("worker needs --populations N")?;
    let params = shard_params(n, args.churn);
    let mut link = PipeLink::new(std::io::stdin(), std::io::stdout());
    run_shard_worker(&params, args.shards, me, &mut link).map_err(|e| format!("worker {me}: {e}"))
}

/// One population tier of the `--shards` mode: canonical single-process
/// run, then the K-process run, digests cross-checked.
struct ShardTier {
    n_nodes: u32,
    single: dco_bench::shard_run::SingleRun,
    single_peak_live: u64,
    merged: MergedRun,
    sharded_wall_ms: f64,
}

fn run_shard_tier(n: u32, churn: bool, k: u8) -> Result<ShardTier, String> {
    let params = shard_params(n, churn);
    eprintln!("dco-perf: n={n} churn={churn}: single-process canonical run");
    let meter = PerfMeter::start();
    let single = run_single_canonical(&params);
    let single_sample = meter.finish(single.events_processed);
    eprintln!(
        "  single: {:.1} ms, {} owned events, set digest {:#018x}, peak {:.1} MiB",
        single.wall_ms,
        single.owned_events,
        single.set_digest,
        single_sample.peak_live_bytes as f64 / (1024.0 * 1024.0),
    );
    if let Some(&(_, _, events, digest)) = SHARD_CANONICAL_DIGESTS
        .iter()
        .find(|&&(nn, ch, ..)| nn == n && ch == churn)
    {
        if digest != single.set_digest || events != single.owned_events {
            return Err(format!(
                "n={n} churn={churn}: canonical run drifted from the pinned table: \
                 owned={} set={:#018x}, pinned owned={events} set={digest:#018x}",
                single.owned_events, single.set_digest
            ));
        }
        eprintln!("  canonical digest matches the pinned table");
    }

    eprintln!("  spawning {k} shard workers");
    let t0 = Instant::now();
    let mut workers: Vec<WorkerProc> = Vec::with_capacity(usize::from(k));
    for me in 0..k {
        let mut argv = vec![
            "--shard-worker".to_string(),
            me.to_string(),
            "--shards".to_string(),
            k.to_string(),
            "--populations".to_string(),
            n.to_string(),
        ];
        if churn {
            argv.push("--churn".to_string());
        }
        match spawn_worker(&argv, usize::from(me)) {
            Ok(w) => workers.push(w),
            Err(e) => return Err(reap_failure(workers, e).to_string()),
        }
    }
    let merged = {
        let mut links: Vec<_> = workers.iter_mut().map(|w| &mut w.link).collect();
        orchestrate(&params, &mut links)
    };
    let merged = match merged {
        Ok(m) => m,
        Err(e) => return Err(reap_failure(workers, e).to_string()),
    };
    let mut finish_err = None;
    for w in workers {
        if let Err(e) = w.finish() {
            finish_err.get_or_insert(e);
        }
    }
    if let Some(e) = finish_err {
        return Err(e.to_string());
    }
    let sharded_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    if merged.root_digest != single.set_digest {
        return Err(format!(
            "n={n} K={k}: root digest {:#018x} != canonical {:#018x} — sharding moved an event",
            merged.root_digest, single.set_digest
        ));
    }
    if merged.owned_events != single.owned_events {
        return Err(format!(
            "n={n} K={k}: owned event count {} != canonical {}",
            merged.owned_events, single.owned_events
        ));
    }
    if merged.counters != single.counters {
        return Err(format!(
            "n={n} K={k}: merged counters diverged from canonical"
        ));
    }
    if merged.figures.received_pct.to_bits() != single.figures.received_pct.to_bits() {
        return Err(format!(
            "n={n} K={k}: merged received% {} != canonical {}",
            merged.figures.received_pct, single.figures.received_pct
        ));
    }
    eprintln!(
        "  sharded K={k}: {sharded_wall_ms:.1} ms wall ({:.2}x vs single), {} epochs, \
         {} cross-shard msgs in {} batches ({} bytes), root digest OK",
        single.wall_ms / sharded_wall_ms.max(1e-9),
        merged.epochs,
        merged.remote_msgs,
        merged.forwarded_batches,
        merged.forwarded_bytes,
    );
    Ok(ShardTier {
        n_nodes: n,
        single,
        single_peak_live: single_sample.peak_live_bytes,
        merged,
        sharded_wall_ms,
    })
}

fn shard_tier_json(tier: &ShardTier) -> Json {
    let m = &tier.merged;
    let peak_max = m
        .workers
        .iter()
        .map(|w| w.peak_live_bytes)
        .max()
        .unwrap_or(0);
    let workers = m
        .workers
        .iter()
        .map(|w| {
            Json::obj(vec![
                ("shard", Json::Int(u64::from(w.shard))),
                ("owned_events", Json::Int(w.owned_events)),
                ("events_processed", Json::Int(w.events_processed)),
                ("remote_msgs_sent", Json::Int(w.remote_msgs_sent)),
                ("set_digest", Json::hex(w.set_digest)),
                ("wall_ms", Json::Num(w.wall_ms)),
                ("allocs", Json::Int(w.allocs)),
                ("peak_live_bytes", Json::Int(w.peak_live_bytes)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("n_nodes", Json::Int(u64::from(tier.n_nodes))),
        (
            "single_process",
            Json::obj(vec![
                ("wall_ms", Json::Num(tier.single.wall_ms)),
                ("owned_events", Json::Int(tier.single.owned_events)),
                ("set_digest", Json::hex(tier.single.set_digest)),
                ("peak_live_bytes", Json::Int(tier.single_peak_live)),
                ("received_pct", Json::Num(tier.single.figures.received_pct)),
            ]),
        ),
        (
            "sharded",
            Json::obj(vec![
                ("wall_ms", Json::Num(tier.sharded_wall_ms)),
                ("root_digest", Json::hex(m.root_digest)),
                ("digest_matches_single_process", Json::Bool(true)),
                ("owned_events", Json::Int(m.owned_events)),
                ("events_processed_total", Json::Int(m.events_processed)),
                ("epochs", Json::Int(m.epochs)),
                ("cross_shard_msgs", Json::Int(m.remote_msgs)),
                ("cross_shard_batches", Json::Int(m.forwarded_batches)),
                ("cross_shard_bytes", Json::Int(m.forwarded_bytes)),
                ("peak_live_bytes_max_over_workers", Json::Int(peak_max)),
                ("received_pct", Json::Num(m.figures.received_pct)),
                ("workers", Json::Arr(workers)),
            ]),
        ),
        (
            "speedup_vs_single_process",
            if tier.sharded_wall_ms > 0.0 {
                Json::Num(tier.single.wall_ms / tier.sharded_wall_ms)
            } else {
                Json::Null
            },
        ),
    ])
}

fn run_shards(args: &Args) -> Result<Json, String> {
    let k = args.shards;
    let tiers: Vec<u32> = if args.populations_explicit {
        args.populations.clone()
    } else {
        SHARD_POPULATIONS.to_vec()
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    eprintln!(
        "dco-perf: sharded mode, K={k}, populations {tiers:?}, churn={}, host cores {host_cores}",
        args.churn
    );
    if host_cores < u64::from(k) {
        eprintln!(
            "dco-perf: note: {k} workers on {host_cores} core(s) time-slice — \
             expect speedup <= 1; digests are still fully checked"
        );
    }
    let reports: Vec<ShardTier> = tiers
        .iter()
        .map(|&n| run_shard_tier(n, args.churn, k))
        .collect::<Result<_, _>>()?;
    let params = shard_params(0, args.churn);
    Ok(Json::obj(vec![
        ("schema", Json::str("dco-shard/v1")),
        ("label", Json::str(&args.label)),
        ("k_shards", Json::Int(u64::from(k))),
        ("host_cores", Json::Int(host_cores)),
        (
            "scenario",
            Json::obj(vec![
                ("method", Json::str("DCO")),
                ("n_chunks", Json::Int(u64::from(params.n_chunks))),
                ("neighbors", Json::Int(params.neighbors as u64)),
                ("horizon_s", Json::Int(params.horizon.as_secs())),
                ("seed", Json::Int(params.seed)),
                ("churn", Json::Bool(args.churn)),
            ]),
        ),
        (
            "populations",
            Json::Arr(reports.iter().map(shard_tier_json).collect()),
        ),
    ]))
}

/// Prints the golden trace-digest table for the five cross-protocol seeds:
/// every method, with and without churn, on the small determinism cell.
/// The output is the Rust table pinned in `tests/determinism.rs`.
fn print_digest_table() {
    let seeds = ScenarioGrid::seed_list(0xC2055, 5);
    println!("const GOLDEN_DIGESTS: &[(&str, bool, u64, u64)] = &[");
    for method in [
        Method::Dco,
        Method::Pull,
        Method::Push,
        Method::Tree,
        Method::TreeStar,
    ] {
        for churn in [false, true] {
            for &seed in &seeds {
                let params = RunParams {
                    n_nodes: 20,
                    n_chunks: 8,
                    neighbors: 8,
                    churn: churn.then(|| ChurnConfig::paper_fig12(25)),
                    horizon: SimTime::from_secs(50),
                    tree_degree: Some(2),
                    fill_offset: SimDuration::from_secs(5),
                    seed,
                };
                let stats = run_with_stats(method, &params);
                println!(
                    "    ({:?}, {churn}, {seed:#x}, {:#018x}),",
                    method.label(),
                    stats.proof.trace_digest
                );
            }
        }
    }
    println!("];");
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        populations: DEFAULT_POPULATIONS.to_vec(),
        populations_explicit: false,
        runs: DEFAULT_RUNS,
        out: DEFAULT_OUT.to_string(),
        label: "current".to_string(),
        stdout: false,
        digests: false,
        scale: false,
        scale_churn: false,
        churn: false,
        shards: 0,
        shard_worker: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--populations" => {
                args.populations = value("--populations")?
                    .split(',')
                    .map(|s| s.trim().parse::<u32>().map_err(|e| format!("{s}: {e}")))
                    .collect::<Result<_, _>>()?;
                args.populations_explicit = true;
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--label" => args.label = value("--label")?,
            "--stdout" => args.stdout = true,
            "--digests" => args.digests = true,
            "--scale" => args.scale = true,
            "--scale-churn" => args.scale_churn = true,
            "--churn" => args.churn = true,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards needs at least 1".to_string());
                }
            }
            "--shard-worker" => {
                args.shard_worker = Some(
                    value("--shard-worker")?
                        .parse()
                        .map_err(|e| format!("--shard-worker: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.runs == 0 || args.populations.is_empty() {
        return Err("need at least one run and one population".to_string());
    }
    Ok(args)
}

struct Args {
    populations: Vec<u32>,
    /// True when `--populations` was given on the command line — lets the
    /// scale ladders run a subset of tiers (CI smoke runs 1k/10k only).
    populations_explicit: bool,
    runs: usize,
    out: String,
    label: String,
    stdout: bool,
    digests: bool,
    scale: bool,
    scale_churn: bool,
    /// `--shards` mode only: run the churn (figs 11–12) workload instead
    /// of the static one.
    churn: bool,
    /// Worker-process count of the sharded mode (0 = sharded mode off).
    shards: u8,
    /// Hidden: this process is shard worker `me` of `shards` — speak the
    /// epoch protocol on stdin/stdout and exit.
    shard_worker: Option<u8>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dco-perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.digests {
        print_digest_table();
        return ExitCode::SUCCESS;
    }
    if args.shard_worker.is_some() {
        return match shard_worker_main(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("dco-perf: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.shards > 0 {
        let json = match run_shards(&args) {
            Ok(j) => j.render_pretty(),
            Err(e) => {
                eprintln!("dco-perf: {e}");
                return ExitCode::FAILURE;
            }
        };
        let out = if args.out != DEFAULT_OUT {
            args.out.as_str()
        } else {
            SHARD_OUT
        };
        if args.stdout {
            print!("{json}");
        } else if let Err(e) = std::fs::write(out, &json) {
            eprintln!("dco-perf: writing {out}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("dco-perf: wrote {out}");
        }
        return ExitCode::SUCCESS;
    }
    if args.scale || args.scale_churn {
        let churn = args.scale_churn;
        let tiers: Vec<u32> = if args.populations_explicit {
            args.populations.clone()
        } else if churn {
            CHURN_SCALE_POPULATIONS.to_vec()
        } else {
            SCALE_POPULATIONS.to_vec()
        };
        eprintln!(
            "dco-perf: {} ladder, populations {:?}, 1 run each",
            if churn {
                "churn-scale (figs 11-12)"
            } else {
                "memory-scale"
            },
            tiers
        );
        let json = run_scale(&args.label, churn, &tiers).render_pretty();
        let out = if args.out != DEFAULT_OUT {
            args.out.as_str()
        } else if churn {
            CHURN_SCALE_OUT
        } else {
            SCALE_OUT
        };
        if args.stdout {
            print!("{json}");
        } else if let Err(e) = std::fs::write(out, &json) {
            eprintln!("dco-perf: writing {out}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("dco-perf: wrote {out}");
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "dco-perf: figures workload, populations {:?}, {} runs each",
        args.populations, args.runs
    );
    let reports: Vec<PopulationReport> = args
        .populations
        .iter()
        .map(|&n| measure_population(n, args.runs))
        .collect();
    let json = report_json(&args.label, args.runs, &reports).render_pretty();
    if args.stdout {
        print!("{json}");
    } else if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("dco-perf: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    } else {
        eprintln!("dco-perf: wrote {}", args.out);
    }
    for rep in &reports {
        let mut wall: Vec<f64> = rep.samples.iter().map(|s| s.wall_ms()).collect();
        let med = median(&mut wall);
        let base = PRE_PR_BASELINE
            .iter()
            .find(|(n, ..)| *n == rep.n_nodes)
            .map(|(_, ms, ..)| *ms);
        match base {
            Some(b) if med > 0.0 => {
                eprintln!(
                    "  n={}: median {med:.1} ms ({:.2}x vs baseline)",
                    rep.n_nodes,
                    b / med
                )
            }
            _ => eprintln!("  n={}: median {med:.1} ms", rep.n_nodes),
        }
    }
    ExitCode::SUCCESS
}
