//! Regenerates the paper's figures as text tables and CSV files.
//!
//! Usage:
//!
//! ```text
//! figures [fig5 fig6 ... fig12 | all] [--scale paper|small] [--seeds N] [--jobs N] [--out DIR]
//! ```
//!
//! With `--out DIR` each figure is also written as `DIR/<fig>.csv`.

use std::io::Write as _;

use dco_bench::figs::{self, FigScale};
use dco_metrics::Figure;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = FigScale::paper();
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("paper") => FigScale::paper(),
                    Some("small") => FigScale::small(),
                    other => {
                        eprintln!("unknown scale {other:?} (use paper|small)");
                        std::process::exit(2);
                    }
                };
            }
            "--seeds" => {
                i += 1;
                let n: u64 = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seeds needs a number");
                    std::process::exit(2);
                });
                scale.seeds = dco_workload::ScenarioGrid::seed_list(42, n as usize);
            }
            "--jobs" => {
                i += 1;
                scale.jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            name => which.push(name.to_string()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = (5..=12).map(|k| format!("fig{k}")).collect();
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for name in &which {
        let t0 = std::time::Instant::now();
        let fig: Figure = match name.as_str() {
            "fig5" => figs::fig5(&scale),
            "fig6" => figs::fig6(&scale),
            "fig7" => figs::fig7(&scale),
            "fig8" => figs::fig8(&scale),
            "fig9" => figs::fig9(&scale),
            "fig10" => figs::fig10(&scale),
            "fig11" => figs::fig11(&scale),
            "fig12" => figs::fig12(&scale),
            other => {
                eprintln!("unknown figure {other} (fig5..fig12 or all)");
                std::process::exit(2);
            }
        };
        let elapsed = t0.elapsed();
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, "{}", fig.to_text_table());
        let _ = writeln!(stdout, "# generated in {:.1}s\n", elapsed.as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            let _ = writeln!(stdout, "# wrote {path}\n");
        }
    }
}
