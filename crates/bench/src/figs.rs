//! Generators for every figure in the paper's evaluation (§IV, Figs. 5–12).
//!
//! Each generator returns a [`Figure`] whose series carry the same labels
//! and axes as the paper. Sweep points are independent simulations, so they
//! run in parallel on the sweep harness's scoped-thread pool
//! ([`crate::sweep::pool`]): each figure flattens its `(seed × method ×
//! point)` product into one job list and maps it once — no nested pools,
//! and full parallelism even with a single seed. Every point is averaged
//! over the scale's seeds. [`FigScale::paper`] reproduces the published
//! parameters; [`FigScale::small`] is a fast proportional variant for
//! tests and benches.

use dco_metrics::{average_figures, Figure, Series};
use dco_sim::time::SimTime;
use dco_workload::{ChurnConfig, ScenarioGrid};

use crate::runner::{run, Method, RunParams, RunResult};
use crate::sweep::pool;

/// Experiment sizing.
#[derive(Clone, Debug)]
pub struct FigScale {
    /// Nodes including the server.
    pub n_nodes: u32,
    /// Chunks for the static figures (5–10).
    pub n_chunks: u32,
    /// Chunks for the churn figures (11–12).
    pub churn_chunks: u32,
    /// Horizon of the static runs, seconds.
    pub static_horizon: u64,
    /// Horizon / last deadline of the churn runs, seconds.
    pub churn_horizon: u64,
    /// Neighbor sweep for Figs. 5, 6, 8.
    pub neighbor_sweep: Vec<usize>,
    /// Population sweep for Fig. 9.
    pub population_sweep: Vec<u32>,
    /// Default neighbor count for the non-sweep figures.
    pub default_neighbors: usize,
    /// Fill-ratio measurement offset for Fig. 6 (time-rebased; the paper's
    /// +2 s instant corresponds to ~+15 s under explicit store-and-forward
    /// serialization — see EXPERIMENTS.md).
    pub fill_offset_secs: u64,
    /// Seeds averaged per point.
    pub seeds: Vec<u64>,
    /// Worker threads for the sweep pool (0 = all cores).
    pub jobs: usize,
}

impl FigScale {
    /// The paper's published parameters.
    pub fn paper() -> Self {
        FigScale {
            n_nodes: 512,
            n_chunks: 100,
            churn_chunks: 200,
            static_horizon: 200,
            churn_horizon: 300,
            neighbor_sweep: (1..=8).map(|k| k * 8).collect(),
            population_sweep: vec![128, 256, 384, 512, 640, 768, 896, 1024],
            default_neighbors: 32,
            fill_offset_secs: 15,
            seeds: ScenarioGrid::seed_list(42, 5),
            jobs: 0,
        }
    }

    /// A proportional fast variant (~8× smaller) for tests and benches.
    pub fn small() -> Self {
        FigScale {
            n_nodes: 64,
            n_chunks: 20,
            churn_chunks: 30,
            static_horizon: 60,
            churn_horizon: 90,
            neighbor_sweep: vec![4, 8, 16, 32],
            population_sweep: vec![32, 48, 64, 96],
            default_neighbors: 16,
            fill_offset_secs: 5,
            seeds: vec![42],
            jobs: 0,
        }
    }

    fn static_params(&self, neighbors: usize, seed: u64) -> RunParams {
        RunParams {
            n_nodes: self.n_nodes,
            n_chunks: self.n_chunks,
            neighbors,
            churn: None,
            horizon: SimTime::from_secs(self.static_horizon),
            tree_degree: None,
            fill_offset: dco_sim::time::SimDuration::from_secs(self.fill_offset_secs),
            seed,
        }
    }

    /// Non-sweep params: the tree runs at out-degree 2, the sustainable
    /// equivalent of the paper's default of 3 children (see
    /// `RunParams::tree_degree`).
    fn default_params(&self, seed: u64) -> RunParams {
        RunParams {
            tree_degree: Some(2),
            ..self.static_params(self.default_neighbors, seed)
        }
    }

    fn pool_jobs(&self) -> usize {
        if self.jobs == 0 {
            pool::default_jobs()
        } else {
            self.jobs
        }
    }

    fn churn_params(&self, mean_life: u64, seed: u64) -> RunParams {
        RunParams {
            n_nodes: self.n_nodes,
            n_chunks: self.churn_chunks,
            neighbors: self.default_neighbors,
            churn: Some(ChurnConfig::paper_fig12(mean_life)),
            horizon: SimTime::from_secs(self.churn_horizon),
            tree_degree: Some(2),
            fill_offset: dco_sim::time::SimDuration::from_secs(self.fill_offset_secs),
            seed,
        }
    }
}

/// Sweeps `points` × methods × seeds in parallel and folds each method's
/// seed-averaged metric into a series. The full product is flattened into
/// one job list and mapped once on the pool.
#[allow(clippy::too_many_arguments)]
fn sweep_figure<X, F>(
    title: &str,
    x_label: &str,
    y_label: &str,
    methods: &[Method],
    points: &[X],
    scale: &FigScale,
    make_params: impl Fn(&FigScale, &X, Method, u64) -> RunParams + Sync,
    metric: F,
) -> Figure
where
    X: Sync + Clone + Into<f64> + Copy,
    F: Fn(&RunResult) -> f64 + Sync,
{
    // Jobs in (seed, method, point) lexicographic order.
    let mut jobs: Vec<(u64, Method, X)> = Vec::new();
    for &seed in &scale.seeds {
        for &m in methods {
            for &x in points {
                jobs.push((seed, m, x));
            }
        }
    }
    let values = pool::par_map(scale.pool_jobs(), &jobs, |&(seed, m, x)| {
        metric(&run(m, &make_params(scale, &x, m, seed)))
    });
    let per_seed: Vec<Figure> = scale
        .seeds
        .iter()
        .enumerate()
        .map(|(si, _)| {
            let mut fig = Figure::new(title, x_label, y_label);
            for (mi, &m) in methods.iter().enumerate() {
                let mut s = Series::new(m.label());
                for (pi, x) in points.iter().enumerate() {
                    let idx = (si * methods.len() + mi) * points.len() + pi;
                    s.push((*x).into(), values[idx]);
                }
                fig.push_series(s);
            }
            fig
        })
        .collect();
    average_figures(&per_seed)
}

/// Runs one full simulation per `(seed, method)` pair in parallel and
/// hands each seed's results to `build` to shape the figure.
fn per_run_figure(
    scale: &FigScale,
    methods: &[Method],
    make_params: impl Fn(&FigScale, Method, u64) -> RunParams + Sync,
    build: impl Fn(&[RunResult]) -> Figure,
) -> Figure {
    let mut jobs: Vec<(u64, Method)> = Vec::new();
    for &seed in &scale.seeds {
        for &m in methods {
            jobs.push((seed, m));
        }
    }
    let results = pool::par_map(scale.pool_jobs(), &jobs, |&(seed, m)| {
        run(m, &make_params(scale, m, seed))
    });
    let per_seed: Vec<Figure> = scale
        .seeds
        .iter()
        .enumerate()
        .map(|(si, _)| build(&results[si * methods.len()..(si + 1) * methods.len()]))
        .collect();
    average_figures(&per_seed)
}

/// Fig. 5 — mean mesh delay vs neighbors per node; curves DCO, push, pull,
/// tree (`d = nb/8`) and tree* (`d = nb`).
pub fn fig5(scale: &FigScale) -> Figure {
    let points: Vec<u32> = scale.neighbor_sweep.iter().map(|&k| k as u32).collect();
    let methods = [
        Method::Dco,
        Method::Push,
        Method::Pull,
        Method::Tree,
        Method::TreeStar,
    ];
    sweep_figure(
        "Fig. 5: mesh delay vs number of neighbors per node",
        "neighbors",
        "mean mesh delay (s)",
        &methods,
        &points,
        scale,
        |s, &nb, _m, seed| s.static_params(nb as usize, seed),
        |r| r.mean_mesh_delay,
    )
}

/// Fig. 6 — fill ratio 2 s after generation vs neighbors per node.
pub fn fig6(scale: &FigScale) -> Figure {
    let points: Vec<u32> = scale.neighbor_sweep.iter().map(|&k| k as u32).collect();
    let methods = [Method::Dco, Method::Push, Method::Pull, Method::Tree];
    let title = format!(
        "Fig. 6: fill ratio +{}s after chunk generation vs neighbors (paper: +2s; time-rebased)",
        scale.fill_offset_secs
    );
    let y = format!("fill ratio at +{}s", scale.fill_offset_secs);
    sweep_figure(
        &title,
        "neighbors",
        &y,
        &methods,
        &points,
        scale,
        |s, &nb, _m, seed| s.static_params(nb as usize, seed),
        |r| r.fill_at_offset,
    )
}

/// Fig. 7 — global fill ratio vs elapsed time, measured every second from
/// the instant the last chunk was generated.
pub fn fig7(scale: &FigScale) -> Figure {
    let start = scale.n_chunks as u64; // generation ends here (1 chunk/s)
    let window = 10u64.min(scale.static_horizon.saturating_sub(start));
    let methods = [Method::Dco, Method::Push, Method::Pull, Method::Tree];
    per_run_figure(
        scale,
        &methods,
        |s, _m, seed| s.default_params(seed),
        |results| {
            let mut fig = Figure::new(
                "Fig. 7: fill ratio vs elapsed time",
                "time (s)",
                "global fill ratio",
            );
            for (mi, &m) in methods.iter().enumerate() {
                let mut s = Series::new(m.label());
                for t in start..=start + window {
                    let y = results[mi]
                        .fill_timeline
                        .iter()
                        .find(|(x, _)| *x == t as f64)
                        .map(|&(_, y)| y)
                        .unwrap_or(1.0);
                    s.push(t as f64, y);
                }
                fig.push_series(s);
            }
            fig
        },
    )
}

/// Fig. 8 — total extra overhead vs neighbors per node.
pub fn fig8(scale: &FigScale) -> Figure {
    let points: Vec<u32> = scale.neighbor_sweep.iter().map(|&k| k as u32).collect();
    sweep_figure(
        "Fig. 8: extra overhead vs number of neighbors per node",
        "neighbors",
        "extra overhead (messages)",
        &Method::MAIN,
        &points,
        scale,
        |s, &nb, _m, seed| s.static_params(nb as usize, seed),
        |r| r.overhead as f64,
    )
}

/// Fig. 9 — total extra overhead vs number of participants.
pub fn fig9(scale: &FigScale) -> Figure {
    let points: Vec<u32> = scale.population_sweep.clone();
    sweep_figure(
        "Fig. 9: extra overhead vs number of participants",
        "nodes",
        "extra overhead (messages)",
        &Method::MAIN,
        &points,
        scale,
        |s, &n, _m, seed| {
            let mut p = s.static_params(s.default_neighbors, seed);
            p.n_nodes = n;
            p
        },
        |r| r.overhead as f64,
    )
}

/// Fig. 10 — cumulative extra overhead vs elapsed time.
pub fn fig10(scale: &FigScale) -> Figure {
    let methods = Method::MAIN;
    let step = (scale.static_horizon / 10).max(1);
    per_run_figure(
        scale,
        &methods,
        |s, _m, seed| s.default_params(seed),
        |results| {
            let mut fig = Figure::new(
                "Fig. 10: extra overhead vs elapsed time",
                "time (s)",
                "cumulative extra overhead (messages)",
            );
            for (mi, &m) in methods.iter().enumerate() {
                let mut s = Series::new(m.label());
                for t in (0..=scale.static_horizon).step_by(step as usize) {
                    let y = results[mi]
                        .overhead_timeline
                        .iter()
                        .find(|(x, _)| *x == t as f64)
                        .map(|&(_, y)| y)
                        .unwrap_or(0.0);
                    s.push(t as f64, y);
                }
                fig.push_series(s);
            }
            fig
        },
    )
}

/// Fig. 11 — % received chunks vs dissemination-time budget under churn
/// (mean life = 60 s scaled).
pub fn fig11(scale: &FigScale) -> Figure {
    let methods = Method::MAIN;
    // Budget sweep: the last third of the horizon, 10 steps (the paper
    // sweeps 200–300 s of a 300 s run).
    let start = scale.churn_horizon * 2 / 3;
    let step = ((scale.churn_horizon - start) / 10).max(1);
    let mean_life = scale.churn_horizon / 5; // paper: 60 s of 300 s
    per_run_figure(
        scale,
        &methods,
        |s, _m, seed| s.churn_params(mean_life, seed),
        |results| {
            let mut fig = Figure::new(
                "Fig. 11: % received chunks vs dissemination time (churn)",
                "deadline (s)",
                "% received chunks",
            );
            for (mi, &m) in methods.iter().enumerate() {
                let mut s = Series::new(m.label());
                let mut t = start;
                while t <= scale.churn_horizon {
                    let y = results[mi]
                        .received_timeline
                        .iter()
                        .find(|(x, _)| *x == t as f64)
                        .map(|&(_, y)| y)
                        .unwrap_or(f64::NAN);
                    s.push(t as f64, y);
                    t += step;
                }
                fig.push_series(s);
            }
            fig
        },
    )
}

/// Fig. 12 — % received chunks vs mean node life.
pub fn fig12(scale: &FigScale) -> Figure {
    // The paper sweeps 60–120 s mean life on a 300 s run; scale
    // proportionally.
    let base = scale.churn_horizon / 5;
    let points: Vec<u32> = (0..=6).map(|i| (base + i * base / 6) as u32).collect();
    sweep_figure(
        "Fig. 12: % received chunks vs mean node life (churn)",
        "mean life (s)",
        "% received chunks",
        &Method::MAIN,
        &points,
        scale,
        |s, &life, _m, seed| s.churn_params(life as u64, seed),
        |r| r.received_pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigScale {
        FigScale {
            n_nodes: 16,
            n_chunks: 6,
            churn_chunks: 10,
            static_horizon: 30,
            churn_horizon: 45,
            neighbor_sweep: vec![4, 8],
            population_sweep: vec![12, 16],
            default_neighbors: 6,
            fill_offset_secs: 5,
            seeds: vec![1],
            jobs: 2,
        }
    }

    #[test]
    fn fig5_has_five_curves_over_the_sweep() {
        let f = fig5(&tiny());
        assert_eq!(f.series.len(), 5);
        assert_eq!(f.x_values(), vec![4.0, 8.0]);
        for s in &f.series {
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{}", s.label);
        }
    }

    #[test]
    fn fig8_tree_is_zero_and_meshes_positive() {
        let f = fig8(&tiny());
        let tree = f.series_by_label("tree").unwrap();
        assert!(tree.points.iter().all(|&(_, y)| y == 0.0));
        for label in ["DCO", "push", "pull"] {
            let s = f.series_by_label(label).unwrap();
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{label}");
        }
    }

    #[test]
    fn fig10_is_cumulative() {
        let f = fig10(&tiny());
        for s in &f.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} not cumulative", s.label);
            }
        }
    }

    #[test]
    fn fig12_has_expected_x_axis() {
        let f = fig12(&tiny());
        assert_eq!(f.series.len(), 4);
        let xs = f.x_values();
        assert_eq!(xs.len(), 7);
        assert_eq!(xs[0], 9.0, "base life = churn_horizon / 5");
    }
}
