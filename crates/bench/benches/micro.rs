//! Microbenchmarks for the hot paths of the substrates: the event
//! calendar, Chord routing, consistent hashing, index-table selection and
//! the buffer-map bit operations. Plain timing mains (no external bench
//! framework); run with `cargo bench -p dco-bench --bench micro`.

use std::hint::black_box;

use dco_bench::timing::{bench, header};
use dco_core::buffer::BufferMap;
use dco_core::chunk::ChunkSeq;
use dco_core::index::{ChunkIndex, IndexTable, SelectPolicy};
use dco_dht::chord::{ChordConfig, ChordNet, RouteDecision, RouteStep};
use dco_dht::hash::{hash_name, hash_node};
use dco_dht::id::{ChordId, Peer};
use dco_metrics::{RetainedObserver, StreamObserver};
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::queue::EventQueue;
use dco_sim::rng::SimRng;
use dco_sim::time::SimTime;

fn bench_event_queue() {
    bench("event_queue/push_pop_1k", 200, || {
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1024u64 {
            q.push(SimTime::from_micros(i * 37 % 4096), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
}

fn bench_hashing() {
    bench("hash/chunk_name", 1000, || {
        hash_name(black_box("CNN1230773442"))
    });
    bench("hash/node_id", 1000, || {
        hash_node(black_box(NodeId(271828)))
    });
}

fn bench_chord_routing() {
    let peers: Vec<Peer> = (0..512)
        .map(|i| Peer::new(hash_node(NodeId(i)), NodeId(i)))
        .collect();
    let net = ChordNet::build_static(&peers, ChordConfig::default());
    let mut rng = SimRng::seed_from_u64(1);
    bench("chord/route_walk_512", 1000, || {
        let key = ChordId(rng.gen());
        let mut at = NodeId(rng.gen_range(0..512u32));
        let mut hops = 0u32;
        loop {
            match net.route_next(at, key).unwrap() {
                RouteDecision::Deliver => break,
                RouteDecision::DeliverAt(_) => break,
                RouteDecision::Forward(p) => {
                    at = p.node;
                    hops += 1;
                }
            }
        }
        hops
    });
    // The memoized variant the DCO hop-by-hop hot path uses. Keys repeat
    // (as stream chunk names do), so after warm-up each hop is one probe
    // of the per-node decision row.
    let mut net = net;
    let keys: Vec<ChordId> = {
        let mut rng = SimRng::seed_from_u64(2);
        (0..100).map(|_| ChordId(rng.gen())).collect()
    };
    // Warm every (node, key) decision so the bench measures steady state,
    // which is what the simulation hot loop sees after the first pass of
    // each chunk through the ring.
    for &key in &keys {
        for node in 0..512u32 {
            net.route_next_cached(NodeId(node), key);
        }
    }
    let mut rng = SimRng::seed_from_u64(3);
    bench("chord/route_walk_512_cached", 1000, || {
        let key = keys[rng.gen_range(0..keys.len())];
        let mut at = NodeId(rng.gen_range(0..512u32));
        let mut hops = 0u32;
        loop {
            match net.route_next_cached(at, key).unwrap() {
                RouteStep::Deliver => break,
                RouteStep::DeliverAt(_) => break,
                RouteStep::Forward(n) => {
                    at = n;
                    hops += 1;
                }
            }
        }
        hops
    });
}

fn bench_index_table() {
    let mut table = IndexTable::new();
    let key = ChordId(42);
    for h in 0..64u32 {
        table.register(
            key,
            ChunkIndex {
                seq: ChunkSeq(1),
                holder: NodeId(h),
                avail: Kbps(100 + h * 20),
                held_count: h,
            },
        );
    }
    let mut rng = SimRng::seed_from_u64(2);
    bench("index/select_64_providers", 1000, || {
        table.select(
            key,
            Kbps(300),
            SelectPolicy::SufficientBandwidth,
            &[NodeId(3)],
            &mut rng,
        )
    });
}

fn bench_buffer_map() {
    bench("bufmap/insert_scan_200", 500, || {
        let mut m = BufferMap::new(200);
        for s in (0..200u32).step_by(3) {
            m.insert(ChunkSeq(s));
        }
        m.missing_in(ChunkSeq(0), ChunkSeq(199)).len()
    });
    let mut a = BufferMap::new(200);
    let mut bmap = BufferMap::new(200);
    for s in 0..150u32 {
        a.insert(ChunkSeq(s));
    }
    for s in 0..100u32 {
        bmap.insert(ChunkSeq(s * 2 % 200));
    }
    bench("bufmap/gap_computation", 500, || {
        a.held_that_other_misses(&bmap, ChunkSeq(0), ChunkSeq(199))
            .len()
    });
}

/// One reception script: 1k nodes × 100 chunks, each pair hit once plus a
/// 10% duplicate tail — the observer record path the simulation drives
/// once per chunk delivery.
fn observer_script() -> Vec<(u32, NodeId, SimTime)> {
    const NODES: u32 = 1_000;
    const CHUNKS: u32 = 100;
    let mut rng = SimRng::seed_from_u64(7);
    let mut script = Vec::with_capacity((NODES * CHUNKS + NODES * CHUNKS / 10) as usize);
    for seq in 0..CHUNKS {
        for node in 0..NODES {
            let t = SimTime::from_micros(u64::from(seq) * 1_000_000 + rng.gen_range(0..900_000u64));
            script.push((seq, NodeId(node), t));
        }
    }
    for _ in 0..(NODES * CHUNKS / 10) {
        let seq = rng.gen_range(0..CHUNKS);
        let node = rng.gen_range(0..NODES);
        let t = SimTime::from_micros(u64::from(seq) * 1_000_000 + rng.gen_range(0..900_000u64));
        script.push((seq, NodeId(node), t));
    }
    script
}

fn bench_observer_record() {
    let script = observer_script();
    bench("observer/flat_record_110k", 20, || {
        let mut obs = StreamObserver::new(1_000, 100);
        for seq in 0..100u32 {
            obs.record_generated(seq, SimTime::from_micros(u64::from(seq) * 1_000_000));
        }
        for &(seq, node, t) in &script {
            obs.record_received(seq, node, t);
        }
        obs.duplicate_receptions()
    });
    bench("observer/retained_record_110k", 20, || {
        let mut obs = RetainedObserver::new(1_000, 100);
        for seq in 0..100u32 {
            obs.record_generated(seq, SimTime::from_micros(u64::from(seq) * 1_000_000));
        }
        for &(seq, node, t) in &script {
            obs.record_received(seq, node, t);
        }
        obs.rereceptions()
    });
    // Query side: the timeline fold the figure extractor runs once per run.
    let mut obs = StreamObserver::new(1_000, 100);
    for seq in 0..100u32 {
        obs.record_generated(seq, SimTime::from_micros(u64::from(seq) * 1_000_000));
        for node in 1..1_000u32 {
            obs.mark_expected(seq, NodeId(node));
        }
    }
    for &(seq, node, t) in &script {
        obs.record_received(seq, node, t);
    }
    bench("observer/received_by_second_200s", 50, || {
        black_box(obs.received_by_second(200)).1
    });
}

fn main() {
    header("micro");
    bench_event_queue();
    bench_hashing();
    bench_chord_routing();
    bench_index_table();
    bench_buffer_map();
    bench_observer_record();
}
