//! One timing entry per paper figure, at a tiny proportional scale —
//! these keep the figure pipelines exercised (and timed) on every
//! `cargo bench`, while the full-scale tables come from the `figures`
//! binary (`cargo run --release -p dco-bench --bin figures -- all`).

use dco_bench::figs::{self, FigScale};
use dco_bench::timing::{bench, header};

fn bench_scale() -> FigScale {
    FigScale {
        n_nodes: 24,
        n_chunks: 8,
        churn_chunks: 10,
        static_horizon: 30,
        churn_horizon: 45,
        neighbor_sweep: vec![4, 8],
        population_sweep: vec![16, 24],
        default_neighbors: 8,
        fill_offset_secs: 5,
        seeds: vec![42],
        jobs: 0,
    }
}

fn main() {
    let scale = bench_scale();
    header("figures (tiny scale)");
    bench("fig5", 5, || figs::fig5(&scale));
    bench("fig6", 5, || figs::fig6(&scale));
    bench("fig7", 5, || figs::fig7(&scale));
    bench("fig8", 5, || figs::fig8(&scale));
    bench("fig9", 5, || figs::fig9(&scale));
    bench("fig10", 5, || figs::fig10(&scale));
    bench("fig11", 5, || figs::fig11(&scale));
    bench("fig12", 5, || figs::fig12(&scale));
}
