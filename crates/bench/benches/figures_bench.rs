//! One Criterion bench per paper figure, at a tiny proportional scale —
//! these keep the figure pipelines exercised (and timed) on every
//! `cargo bench`, while the full-scale tables come from the `figures`
//! binary (`cargo run --release -p dco-bench --bin figures -- all`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dco_bench::figs::{self, FigScale};

fn bench_scale() -> FigScale {
    FigScale {
        n_nodes: 24,
        n_chunks: 8,
        churn_chunks: 10,
        static_horizon: 30,
        churn_horizon: 45,
        neighbor_sweep: vec![4, 8],
        population_sweep: vec![16, 24],
        default_neighbors: 8,
        fill_offset_secs: 5,
        seeds: vec![42],
    }
}

macro_rules! fig_bench {
    ($fn_name:ident, $fig:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let scale = bench_scale();
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.bench_function(stringify!($fig), |b| {
                b.iter(|| black_box(figs::$fig(&scale)))
            });
            g.finish();
        }
    };
}

fig_bench!(bench_fig5, fig5);
fig_bench!(bench_fig6, fig6);
fig_bench!(bench_fig7, fig7);
fig_bench!(bench_fig8, fig8);
fig_bench!(bench_fig9, fig9);
fig_bench!(bench_fig10, fig10);
fig_bench!(bench_fig11, fig11);
fig_bench!(bench_fig12, fig12);

criterion_group!(
    figures,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
