//! End-to-end protocol benches: one small streaming run per method, plus
//! the ablation pipelines and a tiny batch sweep. These time the simulator
//! itself (events/sec) under each protocol's message mix.

use dco_bench::ablation;
use dco_bench::figs::FigScale;
use dco_bench::sweep::{run_sweep, SweepConfig};
use dco_bench::timing::{bench, header};
use dco_bench::{run, Method, RunParams};

fn tiny_params() -> RunParams {
    let mut p = RunParams::small(42);
    p.n_nodes = 32;
    p.n_chunks = 10;
    p.neighbors = 8;
    p.horizon = dco_sim::time::SimTime::from_secs(40);
    p
}

fn bench_protocol_runs() {
    header("protocol_run_32n_10c");
    for m in [Method::Dco, Method::Push, Method::Pull, Method::Tree] {
        let p = tiny_params();
        bench(m.label(), 10, || run(m, &p).received_pct);
    }
}

fn bench_ablations() {
    let scale = FigScale {
        n_nodes: 20,
        n_chunks: 8,
        churn_chunks: 10,
        static_horizon: 30,
        churn_horizon: 45,
        neighbor_sweep: vec![4],
        population_sweep: vec![20],
        default_neighbors: 8,
        fill_offset_secs: 5,
        seeds: vec![3],
        jobs: 0,
    };
    header("ablations");
    bench("selection", 10, || ablation::ablate_selection(&scale));
    bench("window", 10, || ablation::ablate_window(&scale));
    bench("tier", 10, || ablation::ablate_tier(&scale));
    bench("bandwidth_model", 10, || {
        ablation::ablate_bandwidth_model(&scale)
    });
}

fn bench_sweep() {
    header("sweep");
    let mut cfg = SweepConfig::tiny();
    cfg.jobs = 0;
    bench("tiny_grid", 5, || run_sweep(&cfg).rows.len());
}

fn main() {
    bench_protocol_runs();
    bench_ablations();
    bench_sweep();
}
