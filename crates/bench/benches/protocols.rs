//! End-to-end protocol benches: one small streaming run per method, plus
//! the ablation pipelines. These time the simulator itself (events/sec)
//! under each protocol's message mix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dco_bench::ablation;
use dco_bench::figs::FigScale;
use dco_bench::{run, Method, RunParams};

fn tiny_params() -> RunParams {
    let mut p = RunParams::small(42);
    p.n_nodes = 32;
    p.n_chunks = 10;
    p.neighbors = 8;
    p.horizon = dco_sim::time::SimTime::from_secs(40);
    p
}

fn bench_protocol_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_run_32n_10c");
    g.sample_size(10);
    for m in [Method::Dco, Method::Push, Method::Pull, Method::Tree] {
        g.bench_function(m.label(), |b| {
            let p = tiny_params();
            b.iter(|| black_box(run(m, &p).received_pct))
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let scale = FigScale {
        n_nodes: 20,
        n_chunks: 8,
        churn_chunks: 10,
        static_horizon: 30,
        churn_horizon: 45,
        neighbor_sweep: vec![4],
        population_sweep: vec![20],
        default_neighbors: 8,
        fill_offset_secs: 5,
        seeds: vec![3],
    };
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("selection", |b| {
        b.iter(|| black_box(ablation::ablate_selection(&scale)))
    });
    g.bench_function("window", |b| {
        b.iter(|| black_box(ablation::ablate_window(&scale)))
    });
    g.bench_function("tier", |b| {
        b.iter(|| black_box(ablation::ablate_tier(&scale)))
    });
    g.bench_function("bandwidth_model", |b| {
        b.iter(|| black_box(ablation::ablate_bandwidth_model(&scale)))
    });
    g.finish();
}

criterion_group!(protocols, bench_protocol_runs, bench_ablations);
criterion_main!(protocols);
