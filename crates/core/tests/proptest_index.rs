//! Property tests for the coordinator index table's selection fast path.
//!
//! [`dco_core::index::IndexTable`] answers the paper's sufficient-bandwidth
//! selection from per-key acceleration state instead of scanning the
//! provider list. These tests drive random interleavings of registration,
//! refresh, holder removal, purges and selections (with 0–2 exclusions and
//! occasional floor changes) against a trivially-correct reference model of
//! the scanning semantics, and require identical picks and identical table
//! contents throughout. In debug builds the table additionally
//! self-checks every fast selection against the scan, so a divergence
//! fails twice over.

use std::collections::HashMap;

use dco_core::chunk::ChunkSeq;
use dco_core::index::{ChunkIndex, IndexTable, SelectPolicy};
use dco_dht::id::ChordId;
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;
use dco_testkit::{check, tk_assert_eq, Gen};

/// Reference model: the scanning semantics, straight from the original
/// collect-into-Vec implementation.
#[derive(Default)]
struct RefTable {
    lists: Vec<(u64, Vec<ChunkIndex>)>,
    cursors: HashMap<u64, usize>,
}

impl RefTable {
    fn list_mut(&mut self, key: u64) -> &mut Vec<ChunkIndex> {
        if let Some(i) = self.lists.iter().position(|(k, _)| *k == key) {
            return &mut self.lists[i].1;
        }
        self.lists.push((key, Vec::new()));
        &mut self.lists.last_mut().expect("just pushed").1
    }

    fn register(&mut self, key: u64, idx: ChunkIndex) {
        let list = self.list_mut(key);
        match list.iter_mut().find(|e| e.holder == idx.holder) {
            Some(e) => *e = idx,
            None => list.push(idx),
        }
    }

    fn remove_holder(&mut self, key: u64, holder: NodeId) -> bool {
        let list = self.list_mut(key);
        let before = list.len();
        list.retain(|e| e.holder != holder);
        list.len() != before
    }

    fn purge_holder(&mut self, holder: NodeId) {
        for (_, list) in &mut self.lists {
            list.retain(|e| e.holder != holder);
        }
    }

    fn select(&mut self, key: u64, floor: Kbps, exclude: &[NodeId]) -> Option<ChunkIndex> {
        let entries = self
            .lists
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| l.as_slice())
            .unwrap_or(&[]);
        let candidates: Vec<ChunkIndex> = entries
            .iter()
            .filter(|e| !exclude.contains(&e.holder))
            .copied()
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let sufficient: Vec<ChunkIndex> = candidates
            .iter()
            .filter(|e| e.avail >= floor)
            .copied()
            .collect();
        if sufficient.is_empty() {
            return candidates.into_iter().max_by_key(|e| e.avail);
        }
        let cursor = self.cursors.entry(key).or_insert(0);
        let i = *cursor % sufficient.len();
        *cursor = cursor.wrapping_add(1);
        Some(sufficient[i])
    }
}

fn gen_index(g: &mut Gen) -> ChunkIndex {
    ChunkIndex {
        seq: ChunkSeq(g.u64_in(0, 4) as u32),
        holder: NodeId(g.u64_in(1, 13) as u32),
        // Straddle the floors used below so sufficient/degraded both occur.
        avail: Kbps(*g.pick(&[0, 50, 100, 250, 300, 350, 600])),
        held_count: g.u64_in(0, 5) as u32,
    }
}

fn gen_exclude(g: &mut Gen) -> Vec<NodeId> {
    // Up to 3 exclusions: 0–2 exercise the fast path, 3 its scan fallback.
    (0..g.usize_in(0, 4))
        .map(|_| NodeId(g.u64_in(1, 13) as u32))
        .collect()
}

/// Random op soup: the table and the reference must agree on every
/// selection and on the full provider lists after every mutation.
#[test]
fn fast_selection_matches_scanning_reference() {
    check("fast_selection_matches_scanning_reference", 300, |g| {
        let mut table = IndexTable::new();
        let mut reference = RefTable::default();
        let mut floor = Kbps(300);
        for step in 0..g.usize_in(10, 120) {
            match g.usize_in(0, 10) {
                0..=3 => {
                    let key = g.u64_in(0, 4);
                    let idx = gen_index(g);
                    table.register(ChordId(key), idx);
                    reference.register(key, idx);
                }
                4 => {
                    let key = g.u64_in(0, 4);
                    let holder = NodeId(g.u64_in(1, 13) as u32);
                    tk_assert_eq!(
                        table.remove_holder(ChordId(key), holder),
                        reference.remove_holder(key, holder),
                        "remove_holder presence at step {step}"
                    );
                }
                5 => {
                    let holder = NodeId(g.u64_in(1, 13) as u32);
                    table.purge_holder(holder);
                    reference.purge_holder(holder);
                }
                6 if g.weighted_bool(0.3) => {
                    // Rare floor change: forces the per-key rebuild path.
                    floor = Kbps(*g.pick(&[100, 300]));
                }
                _ => {
                    let key = g.u64_in(0, 4);
                    let exclude = gen_exclude(g);
                    // RNG is unused by the sufficient-bandwidth policy; a
                    // fixed seed keeps the call signature satisfied.
                    let mut rng = SimRng::seed_from_u64(1);
                    tk_assert_eq!(
                        table.select(
                            ChordId(key),
                            floor,
                            SelectPolicy::SufficientBandwidth,
                            &exclude,
                            &mut rng,
                        ),
                        reference.select(key, floor, &exclude),
                        "selection at step {step} (key {key}, floor {floor:?}, \
                         exclude {exclude:?})"
                    );
                }
            }
            for key in 0..4 {
                let want: &[ChunkIndex] = reference
                    .lists
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, l)| l.as_slice())
                    .unwrap_or(&[]);
                tk_assert_eq!(
                    table.providers(ChordId(key)),
                    want,
                    "provider list for key {key} at step {step}"
                );
            }
        }
        Ok(())
    });
}

/// Round-robin rotation order survives mutations between selections: a
/// fresh burst of selections after each mutation batch must walk the
/// sufficient set in exactly the reference order.
#[test]
fn rotation_order_is_preserved_across_mutations() {
    check("rotation_order_is_preserved_across_mutations", 200, |g| {
        let mut table = IndexTable::new();
        let mut reference = RefTable::default();
        let floor = Kbps(300);
        let key = 7u64;
        for _ in 0..g.usize_in(1, 8) {
            for _ in 0..g.usize_in(1, 6) {
                let idx = gen_index(g);
                table.register(ChordId(key), idx);
                reference.register(key, idx);
            }
            if g.weighted_bool(0.4) {
                let holder = NodeId(g.u64_in(1, 13) as u32);
                table.remove_holder(ChordId(key), holder);
                reference.remove_holder(key, holder);
            }
            for burst in 0..g.usize_in(1, 10) {
                let mut rng = SimRng::seed_from_u64(1);
                tk_assert_eq!(
                    table.select(
                        ChordId(key),
                        floor,
                        SelectPolicy::SufficientBandwidth,
                        &[],
                        &mut rng,
                    ),
                    reference.select(key, floor, &[]),
                    "rotation pick {burst}"
                );
            }
        }
        Ok(())
    });
}
