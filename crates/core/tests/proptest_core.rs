//! Property tests for DCO's core data structures: index-table selection,
//! the adaptive window (Eq. 2), buffer maps and chunk naming.

use dco_core::buffer::BufferMap;
use dco_core::chunk::{ChunkNamer, ChunkSeq};
use dco_core::index::{ChunkIndex, IndexTable, SelectPolicy};
use dco_core::window::{PrefetchWindow, WindowConfig};
use dco_dht::id::ChordId;
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::time::SimDuration;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection never returns an excluded holder and, under the paper's
    /// rule, returns a sufficient provider whenever one qualifies.
    #[test]
    fn selection_respects_exclusion_and_floor(
        providers in vec((0u32..32, 0u32..1200), 1..24),
        excluded in vec(0u32..32, 0..6),
        floor in 100u32..800,
        seed: u64,
    ) {
        let key = ChordId(7);
        let mut table = IndexTable::new();
        for &(holder, avail) in &providers {
            table.register(key, ChunkIndex {
                seq: ChunkSeq(0),
                holder: NodeId(holder),
                avail: Kbps(avail),
                held_count: 1,
            });
        }
        let excl: Vec<NodeId> = excluded.iter().map(|&n| NodeId(n)).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for policy in [
            SelectPolicy::SufficientBandwidth,
            SelectPolicy::Random,
            SelectPolicy::LeastLoaded,
        ] {
            if let Some(pick) = table.select(key, Kbps(floor), policy, &excl, &mut rng) {
                prop_assert!(!excl.contains(&pick.holder), "{policy:?} returned excluded");
                prop_assert!(
                    providers.iter().any(|&(h, _)| NodeId(h) == pick.holder),
                    "{policy:?} invented a provider"
                );
            } else {
                // None is only allowed when every provider is excluded.
                prop_assert!(
                    providers.iter().all(|&(h, _)| excl.contains(&NodeId(h))),
                    "{policy:?} returned None with candidates available"
                );
            }
        }
        // The paper's rule must return a sufficient provider when any
        // non-excluded candidate clears the floor. Registration refreshes
        // in place, so only each holder's LAST advertisement counts.
        let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &(h, a) in &providers {
            last.insert(h, a);
        }
        let any_sufficient = last
            .iter()
            .any(|(&h, &a)| a >= floor && !excl.contains(&NodeId(h)));
        if any_sufficient {
            let pick = table
                .select(key, Kbps(floor), SelectPolicy::SufficientBandwidth, &excl, &mut rng)
                .unwrap();
            // The registry may hold several entries per holder id after
            // registration refresh; verify via the pick's own record.
            prop_assert!(pick.avail >= Kbps(floor), "picked {pick:?} below floor");
        }
    }

    /// Eq. 2 monotonicity: the window never shrinks when bandwidth drops or
    /// the failure estimate rises, and is always within the clamps.
    #[test]
    fn window_is_monotone_and_clamped(
        b1 in 50u32..2000,
        b2 in 50u32..2000,
        failures in 0usize..30,
    ) {
        let cfg = WindowConfig::default();
        let (slow, fast) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let w_slow = PrefetchWindow::new(cfg.clone(), Kbps(slow)).size_chunks();
        let w_fast = PrefetchWindow::new(cfg.clone(), Kbps(fast)).size_chunks();
        prop_assert!(w_slow >= w_fast, "slower node must not get a smaller window");

        let mut w = PrefetchWindow::new(cfg.clone(), Kbps(600));
        let before = w.size_chunks();
        for _ in 0..failures {
            w.record_failure();
        }
        let after = w.size_chunks();
        prop_assert!(after >= before, "failures must not shrink the window");
        prop_assert!(after >= cfg.min_chunks && after <= cfg.max_chunks);
    }

    /// Buffer-map algebra: held + missing partitions any range.
    #[test]
    fn buffer_map_partitions_ranges(
        held in vec(0u32..300, 0..80),
        from in 0u32..300,
        len in 0u32..100,
    ) {
        let mut m = BufferMap::new(300);
        for &s in &held {
            m.insert(ChunkSeq(s));
        }
        let to = from.saturating_add(len).min(299);
        prop_assume!(from <= to);
        let missing = m.missing_in(ChunkSeq(from), ChunkSeq(to));
        for s in from..=to {
            let is_missing = missing.contains(&ChunkSeq(s));
            prop_assert_eq!(is_missing, !m.has(ChunkSeq(s)));
        }
        // held_count equals the number of distinct inserted seqs.
        let distinct: std::collections::HashSet<u32> = held.iter().copied().collect();
        prop_assert_eq!(m.held_count(), distinct.len());
    }

    /// Chunk names (and thus ring IDs) are unique per sequence number for
    /// any base timestamp.
    #[test]
    fn chunk_names_are_unique(base in 1u64..10_000_000_000, n in 1u32..128) {
        let namer = ChunkNamer::new("X", base, SimDuration::from_secs(1), n);
        let mut names = std::collections::HashSet::new();
        let mut ids = std::collections::HashSet::new();
        for s in 0..n {
            prop_assert!(names.insert(namer.name_of(ChunkSeq(s))));
            prop_assert!(ids.insert(namer.id_of(ChunkSeq(s))));
        }
    }
}
