//! Property tests for DCO's core data structures: index-table selection,
//! the adaptive window (Eq. 2), buffer maps and chunk naming. Driven by
//! the in-tree `dco-testkit` (deterministic seeds, `DCO_TESTKIT_REPLAY`
//! to reproduce a failure).

use dco_core::buffer::BufferMap;
use dco_core::chunk::{ChunkNamer, ChunkSeq};
use dco_core::index::{ChunkIndex, IndexTable, SelectPolicy};
use dco_core::window::{PrefetchWindow, WindowConfig};
use dco_dht::id::ChordId;
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;
use dco_sim::time::SimDuration;
use dco_testkit::{check, tk_assert, tk_assert_eq};

/// Selection never returns an excluded holder and, under the paper's
/// rule, returns a sufficient provider whenever one qualifies.
#[test]
fn selection_respects_exclusion_and_floor() {
    check("selection_respects_exclusion_and_floor", 64, |g| {
        let providers: Vec<(u32, u32)> = g.vec_of(1, 24, |g| {
            (g.u64_in(0, 32) as u32, g.u64_in(0, 1200) as u32)
        });
        let excluded: Vec<u32> = g.vec_of(0, 6, |g| g.u64_in(0, 32) as u32);
        let floor = g.u64_in(100, 800) as u32;
        let seed = g.any_u64();

        let key = ChordId(7);
        let mut table = IndexTable::new();
        for &(holder, avail) in &providers {
            table.register(
                key,
                ChunkIndex {
                    seq: ChunkSeq(0),
                    holder: NodeId(holder),
                    avail: Kbps(avail),
                    held_count: 1,
                },
            );
        }
        let excl: Vec<NodeId> = excluded.iter().map(|&n| NodeId(n)).collect();
        let mut rng = SimRng::seed_from_u64(seed);
        for policy in [
            SelectPolicy::SufficientBandwidth,
            SelectPolicy::Random,
            SelectPolicy::LeastLoaded,
        ] {
            if let Some(pick) = table.select(key, Kbps(floor), policy, &excl, &mut rng) {
                tk_assert!(!excl.contains(&pick.holder), "{policy:?} returned excluded");
                tk_assert!(
                    providers.iter().any(|&(h, _)| NodeId(h) == pick.holder),
                    "{policy:?} invented a provider"
                );
            } else {
                // None is only allowed when every provider is excluded.
                tk_assert!(
                    providers.iter().all(|&(h, _)| excl.contains(&NodeId(h))),
                    "{policy:?} returned None with candidates available"
                );
            }
        }
        // The paper's rule must return a sufficient provider when any
        // non-excluded candidate clears the floor. Registration refreshes
        // in place, so only each holder's LAST advertisement counts.
        let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &(h, a) in &providers {
            last.insert(h, a);
        }
        let any_sufficient = last
            .iter()
            .any(|(&h, &a)| a >= floor && !excl.contains(&NodeId(h)));
        if any_sufficient {
            let pick = table
                .select(
                    key,
                    Kbps(floor),
                    SelectPolicy::SufficientBandwidth,
                    &excl,
                    &mut rng,
                )
                .unwrap();
            // The registry may hold several entries per holder id after
            // registration refresh; verify via the pick's own record.
            tk_assert!(pick.avail >= Kbps(floor), "picked {pick:?} below floor");
        }
        Ok(())
    });
}

/// Eq. 2 shape: `W_pf = W·B/(b·(1−p_f))` is monotone non-increasing in
/// the node's bandwidth `b` and non-decreasing in the failure estimate
/// `p_f`, matches the closed form away from the clamps, and never leaves
/// `[min_chunks, max_chunks]`.
#[test]
fn window_matches_eq2_and_is_monotone_and_clamped() {
    check("window_matches_eq2_and_is_monotone_and_clamped", 128, |g| {
        let cfg = WindowConfig::default();
        let b1 = g.u64_in(50, 2000) as u32;
        let b2 = g.u64_in(50, 2000) as u32;
        let failures = g.usize_in(0, 30);

        // Monotone in b.
        let (slow, fast) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let w_slow = PrefetchWindow::new(cfg.clone(), Kbps(slow)).size_chunks();
        let w_fast = PrefetchWindow::new(cfg.clone(), Kbps(fast)).size_chunks();
        tk_assert!(
            w_slow >= w_fast,
            "slower node must not get a smaller window"
        );

        // Closed form away from the clamps (p_f = 0 for a fresh window).
        let w = PrefetchWindow::new(cfg.clone(), Kbps(b1));
        let closed =
            (cfg.base_chunks as f64 * cfg.avg_bandwidth.0 as f64 / b1 as f64).ceil() as u32;
        if closed > cfg.min_chunks && closed < cfg.max_chunks {
            tk_assert_eq!(w.size_chunks(), closed, "Eq. 2 closed form at p_f = 0");
        }

        // Monotone in p_f: each failure raises the EWMA estimate, and the
        // window never shrinks along the way. Also clamped throughout.
        let mut w = PrefetchWindow::new(cfg.clone(), Kbps(600));
        let mut prev_size = w.size_chunks();
        let mut prev_pf = w.failure_rate();
        for _ in 0..failures {
            w.record_failure();
            let pf = w.failure_rate();
            let size = w.size_chunks();
            tk_assert!(pf >= prev_pf, "p_f EWMA must rise on failure");
            tk_assert!(size >= prev_size, "window must not shrink as p_f rises");
            tk_assert!(size >= cfg.min_chunks && size <= cfg.max_chunks);
            prev_pf = pf;
            prev_size = size;
        }

        // Boundary clamping: absurd bandwidths pin to the clamps.
        tk_assert_eq!(
            PrefetchWindow::new(cfg.clone(), Kbps(0)).size_chunks(),
            cfg.max_chunks,
            "b → 0 clamps high without dividing by zero"
        );
        tk_assert_eq!(
            PrefetchWindow::new(cfg.clone(), Kbps(u32::MAX)).size_chunks(),
            cfg.min_chunks,
            "b → ∞ clamps low"
        );
        Ok(())
    });
}

/// Buffer-map algebra: held + missing partitions any range.
#[test]
fn buffer_map_partitions_ranges() {
    check("buffer_map_partitions_ranges", 64, |g| {
        let held: Vec<u32> = g.vec_of(0, 80, |g| g.u64_in(0, 300) as u32);
        let from = g.u64_in(0, 300) as u32;
        let len = g.u64_in(0, 100) as u32;

        let mut m = BufferMap::new(300);
        for &s in &held {
            m.insert(ChunkSeq(s));
        }
        let to = from.saturating_add(len).min(299);
        if from > to {
            return Ok(());
        }
        let missing = m.missing_in(ChunkSeq(from), ChunkSeq(to));
        for s in from..=to {
            let is_missing = missing.contains(&ChunkSeq(s));
            tk_assert_eq!(is_missing, !m.has(ChunkSeq(s)));
        }
        // held_count equals the number of distinct inserted seqs.
        let distinct: std::collections::HashSet<u32> = held.iter().copied().collect();
        tk_assert_eq!(m.held_count(), distinct.len());
        Ok(())
    });
}

/// Chunk names (and thus ring IDs) are unique per sequence number for
/// any base timestamp.
#[test]
fn chunk_names_are_unique() {
    check("chunk_names_are_unique", 64, |g| {
        let base = g.u64_in(1, 10_000_000_000);
        let n = g.u64_in(1, 128) as u32;
        let namer = ChunkNamer::new("X", base, SimDuration::from_secs(1), n);
        let mut names = std::collections::HashSet::new();
        let mut ids = std::collections::HashSet::new();
        for s in 0..n {
            tk_assert!(names.insert(namer.name_of(ChunkSeq(s))));
            tk_assert!(ids.insert(namer.id_of(ChunkSeq(s))));
        }
        Ok(())
    });
}
