//! The adaptive prefetching window (§III-B2, Eq. 2).
//!
//! The prefetch window hides DHT lookup latency: a node fetches chunks up to
//! `W_pf` positions ahead of its playhead. The paper sizes it adaptively:
//!
//! ```text
//! W_pf = W · B / (b · (1 − p_f))
//! ```
//!
//! where `W` is the predefined base window, `B` the network-average download
//! bandwidth, `b` the node's own download bandwidth, and `p_f` the node's
//! observed chunk-fetch failure probability. Slower nodes and nodes seeing
//! more failures prefetch further ahead.

use dco_sim::net::Kbps;

/// Configuration of the adaptive window.
#[derive(Clone, Debug)]
pub struct WindowConfig {
    /// The predefined base window `W`, in chunks.
    pub base_chunks: u32,
    /// Network-average download bandwidth `B`.
    pub avg_bandwidth: Kbps,
    /// Lower clamp for the adapted window.
    pub min_chunks: u32,
    /// Upper clamp for the adapted window.
    pub max_chunks: u32,
    /// EWMA smoothing factor for the failure estimate (0 < α ≤ 1).
    pub failure_alpha: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            base_chunks: 10,
            avg_bandwidth: Kbps(600),
            min_chunks: 2,
            max_chunks: 60,
            failure_alpha: 0.2,
        }
    }
}

/// Per-node adaptive prefetch window state.
#[derive(Clone, Debug)]
pub struct PrefetchWindow {
    cfg: WindowConfig,
    /// This node's download bandwidth `b`.
    my_bandwidth: Kbps,
    /// EWMA estimate of the fetch-failure probability `p_f`.
    failure_rate: f64,
    /// Fetch outcomes observed (diagnostics).
    fetches: u64,
    failures: u64,
}

impl PrefetchWindow {
    /// A window for a node with download bandwidth `my_bandwidth`.
    pub fn new(cfg: WindowConfig, my_bandwidth: Kbps) -> Self {
        PrefetchWindow {
            cfg,
            my_bandwidth,
            failure_rate: 0.0,
            fetches: 0,
            failures: 0,
        }
    }

    /// Records a successful chunk fetch.
    pub fn record_success(&mut self) {
        self.fetches += 1;
        self.failure_rate *= 1.0 - self.cfg.failure_alpha;
    }

    /// Records a failed chunk fetch (timeout / busy provider).
    pub fn record_failure(&mut self) {
        self.fetches += 1;
        self.failures += 1;
        self.failure_rate =
            self.failure_rate * (1.0 - self.cfg.failure_alpha) + self.cfg.failure_alpha;
    }

    /// The current failure estimate `p_f` in `[0, 1)`.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Lifetime totals `(fetches, failures)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.fetches, self.failures)
    }

    /// Eq. 2: the adapted window size in chunks, clamped to
    /// `[min_chunks, max_chunks]`.
    pub fn size_chunks(&self) -> u32 {
        let b = self.my_bandwidth.0.max(1) as f64;
        let big_b = self.cfg.avg_bandwidth.0.max(1) as f64;
        let pf = self.failure_rate.clamp(0.0, 0.99);
        let w = self.cfg.base_chunks as f64 * big_b / (b * (1.0 - pf));
        (w.ceil() as u32).clamp(self.cfg.min_chunks, self.cfg.max_chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig::default()
    }

    #[test]
    fn average_node_gets_base_window() {
        let w = PrefetchWindow::new(cfg(), Kbps(600));
        assert_eq!(w.size_chunks(), 10, "b = B, p_f = 0 ⇒ W");
    }

    #[test]
    fn slower_node_gets_larger_window() {
        let slow = PrefetchWindow::new(cfg(), Kbps(300));
        let fast = PrefetchWindow::new(cfg(), Kbps(1200));
        assert_eq!(slow.size_chunks(), 20, "half bandwidth ⇒ double window");
        assert!(fast.size_chunks() < 10);
        assert!(fast.size_chunks() >= cfg().min_chunks);
    }

    #[test]
    fn failures_grow_the_window() {
        let mut w = PrefetchWindow::new(cfg(), Kbps(600));
        let before = w.size_chunks();
        for _ in 0..20 {
            w.record_failure();
        }
        assert!(w.failure_rate() > 0.9);
        assert!(w.size_chunks() > before * 5, "p_f → 1 inflates the window");
        // Successes shrink it back.
        for _ in 0..40 {
            w.record_success();
        }
        assert!(w.failure_rate() < 0.01);
        assert!(
            w.size_chunks() <= before + 1,
            "residual ε only adds ≤1 chunk"
        );
    }

    #[test]
    fn window_is_clamped() {
        let mut w = PrefetchWindow::new(cfg(), Kbps(10)); // absurdly slow
        assert_eq!(w.size_chunks(), cfg().max_chunks);
        for _ in 0..50 {
            w.record_failure();
        }
        assert_eq!(w.size_chunks(), cfg().max_chunks);

        let w = PrefetchWindow::new(cfg(), Kbps(1_000_000)); // absurdly fast
        assert_eq!(w.size_chunks(), cfg().min_chunks);
    }

    #[test]
    fn totals_track_outcomes() {
        let mut w = PrefetchWindow::new(cfg(), Kbps(600));
        w.record_success();
        w.record_failure();
        w.record_success();
        assert_eq!(w.totals(), (3, 1));
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let w = PrefetchWindow::new(cfg(), Kbps(0));
        assert_eq!(w.size_chunks(), cfg().max_chunks);
    }
}
