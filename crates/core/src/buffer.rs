//! Playback buffers and buffer maps.
//!
//! A mesh-based node "maintains a buffer map which summarizes the chunks
//! that it currently has cached" (§I). [`BufferMap`] is that bitmap: one bit
//! per chunk sequence number. DCO nodes use the same structure to track
//! their own holdings; the mesh baselines also *exchange* these maps every
//! second, which is where their overhead comes from.

use crate::chunk::ChunkSeq;

/// A chunk-possession bitmap over dense sequence numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferMap {
    words: Vec<u64>,
    held: usize,
}

impl BufferMap {
    /// An empty map sized for `n_chunks`.
    pub fn new(n_chunks: u32) -> Self {
        BufferMap {
            words: vec![0; (n_chunks as usize).div_ceil(64)],
            held: 0,
        }
    }

    /// Number of chunks currently held.
    #[inline]
    pub fn held_count(&self) -> usize {
        self.held
    }

    /// True if no chunk is held.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }

    /// True if chunk `seq` is held.
    #[inline]
    pub fn has(&self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        i / 64 < self.words.len() && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks chunk `seq` held; grows as needed. Returns `true` if this is a
    /// new chunk.
    pub fn insert(&mut self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask == 0 {
            self.words[i / 64] |= mask;
            self.held += 1;
            true
        } else {
            false
        }
    }

    /// Drops chunk `seq` (sliding-window eviction). Returns `true` if it
    /// was held.
    pub fn remove(&mut self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        if i / 64 >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.held -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over held sequence numbers in increasing order.
    pub fn iter_held(&self) -> impl Iterator<Item = ChunkSeq> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            core::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(ChunkSeq((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// The missing chunks in `[from, to]`, in order.
    pub fn missing_in(&self, from: ChunkSeq, to: ChunkSeq) -> Vec<ChunkSeq> {
        (from.0..=to.0)
            .map(ChunkSeq)
            .filter(|&s| !self.has(s))
            .collect()
    }

    /// Chunks held here that `other` is missing, restricted to `[from, to]`
    /// (what a push-mesh node offers a neighbor).
    pub fn held_that_other_misses(
        &self,
        other: &BufferMap,
        from: ChunkSeq,
        to: ChunkSeq,
    ) -> Vec<ChunkSeq> {
        (from.0..=to.0)
            .map(ChunkSeq)
            .filter(|&s| self.has(s) && !other.has(s))
            .collect()
    }

    /// Buffering level: the number of **consecutive** held chunks starting
    /// at `playhead` — the paper's streaming-quality covariate for the
    /// longevity model (§III-B1a).
    pub fn buffering_level(&self, playhead: ChunkSeq) -> u32 {
        let mut n = 0;
        let mut s = playhead;
        while self.has(s) {
            n += 1;
            s = s.next();
        }
        n
    }

    /// A compact wire copy of the bitmap (what mesh nodes exchange).
    pub fn snapshot(&self) -> BufferMap {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: u32) -> ChunkSeq {
        ChunkSeq(s)
    }

    #[test]
    fn insert_query_remove() {
        let mut m = BufferMap::new(100);
        assert!(!m.has(c(5)));
        assert!(m.insert(c(5)));
        assert!(!m.insert(c(5)), "idempotent insert");
        assert!(m.has(c(5)));
        assert_eq!(m.held_count(), 1);
        assert!(m.remove(c(5)));
        assert!(!m.remove(c(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut m = BufferMap::new(1);
        assert!(m.insert(c(1000)));
        assert!(m.has(c(1000)));
        assert!(!m.has(c(999)));
        assert!(!m.remove(c(100_000)), "far-out remove is a no-op");
    }

    #[test]
    fn iter_held_in_order() {
        let mut m = BufferMap::new(200);
        for s in [70u32, 3, 64, 128, 0] {
            m.insert(c(s));
        }
        let got: Vec<u32> = m.iter_held().map(|s| s.0).collect();
        assert_eq!(got, vec![0, 3, 64, 70, 128]);
    }

    #[test]
    fn missing_ranges() {
        let mut m = BufferMap::new(10);
        m.insert(c(2));
        m.insert(c(4));
        assert_eq!(
            m.missing_in(c(1), c(5))
                .iter()
                .map(|s| s.0)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert!(m.missing_in(c(2), c(2)).is_empty());
    }

    #[test]
    fn push_offer_computation() {
        let mut mine = BufferMap::new(10);
        let mut theirs = BufferMap::new(10);
        mine.insert(c(1));
        mine.insert(c(2));
        mine.insert(c(3));
        theirs.insert(c(2));
        let offer = mine.held_that_other_misses(&theirs, c(0), c(9));
        assert_eq!(offer.iter().map(|s| s.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn buffering_level_counts_consecutive_run() {
        let mut m = BufferMap::new(20);
        for s in [5u32, 6, 7, 9] {
            m.insert(c(s));
        }
        assert_eq!(m.buffering_level(c(5)), 3, "5,6,7 then gap at 8");
        assert_eq!(m.buffering_level(c(8)), 0);
        assert_eq!(m.buffering_level(c(9)), 1);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut m = BufferMap::new(10);
        m.insert(c(1));
        let snap = m.snapshot();
        m.insert(c(2));
        assert!(snap.has(c(1)));
        assert!(!snap.has(c(2)));
    }
}
