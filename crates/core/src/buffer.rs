//! Playback buffers and buffer maps.
//!
//! A mesh-based node "maintains a buffer map which summarizes the chunks
//! that it currently has cached" (§I). [`BufferMap`] is that bitmap: one bit
//! per chunk sequence number. DCO nodes use the same structure to track
//! their own holdings; the mesh baselines also *exchange* these maps every
//! second, which is where their overhead comes from.

use crate::chunk::ChunkSeq;

/// A chunk-possession bitmap over dense sequence numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferMap {
    words: Vec<u64>,
    held: usize,
}

impl BufferMap {
    /// An empty map sized for `n_chunks`.
    pub fn new(n_chunks: u32) -> Self {
        BufferMap {
            words: vec![0; (n_chunks as usize).div_ceil(64)],
            held: 0,
        }
    }

    /// Number of chunks currently held.
    #[inline]
    pub fn held_count(&self) -> usize {
        self.held
    }

    /// True if no chunk is held.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }

    /// True if chunk `seq` is held.
    #[inline]
    pub fn has(&self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        i / 64 < self.words.len() && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks chunk `seq` held; grows as needed. Returns `true` if this is a
    /// new chunk.
    pub fn insert(&mut self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask == 0 {
            self.words[i / 64] |= mask;
            self.held += 1;
            true
        } else {
            false
        }
    }

    /// Drops chunk `seq` (sliding-window eviction). Returns `true` if it
    /// was held.
    pub fn remove(&mut self, seq: ChunkSeq) -> bool {
        let i = seq.index();
        if i / 64 >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.held -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over held sequence numbers in increasing order.
    pub fn iter_held(&self) -> impl Iterator<Item = ChunkSeq> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            core::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(ChunkSeq((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// The word at index `wi`, treating anything past the allocation as
    /// all-zeros (not held).
    #[inline]
    fn word(&self, wi: usize) -> u64 {
        self.words.get(wi).copied().unwrap_or(0)
    }

    /// Iterates the set bits of `f(wi)` restricted to `[from, to]`, in
    /// increasing order — the shared word-at-a-time kernel behind the range
    /// scans below.
    fn range_bits<'a>(
        from: ChunkSeq,
        to: ChunkSeq,
        f: impl Fn(usize) -> u64 + 'a,
    ) -> impl Iterator<Item = ChunkSeq> + 'a {
        // An inverted range (`from > to`) is naturally empty: across words
        // `w_lo..=w_hi` yields nothing, and within one word the two edge
        // masks below are disjoint.
        let (lo, hi) = (from.index(), to.index());
        let (w_lo, w_hi) = (lo / 64, hi / 64);
        (w_lo..=w_hi).flat_map(move |wi| {
            let mut bits = f(wi);
            if wi == w_lo {
                bits &= !0u64 << (lo % 64);
            }
            if wi == w_hi && hi % 64 < 63 {
                bits &= (1u64 << (hi % 64 + 1)) - 1;
            }
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChunkSeq((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Iterates the missing chunks in `[from, to]` in order, one bitmap
    /// word at a time — the allocation-free form of
    /// [`BufferMap::missing_in`] for per-tick scan loops.
    pub fn missing_in_iter(
        &self,
        from: ChunkSeq,
        to: ChunkSeq,
    ) -> impl Iterator<Item = ChunkSeq> + '_ {
        Self::range_bits(from, to, |wi| !self.word(wi))
    }

    /// The missing chunks in `[from, to]`, in order.
    pub fn missing_in(&self, from: ChunkSeq, to: ChunkSeq) -> Vec<ChunkSeq> {
        self.missing_in_iter(from, to).collect()
    }

    /// Chunks held here that `other` is missing, restricted to `[from, to]`
    /// (what a push-mesh node offers a neighbor).
    pub fn held_that_other_misses(
        &self,
        other: &BufferMap,
        from: ChunkSeq,
        to: ChunkSeq,
    ) -> Vec<ChunkSeq> {
        Self::range_bits(from, to, |wi| self.word(wi) & !other.word(wi)).collect()
    }

    /// Buffering level: the number of **consecutive** held chunks starting
    /// at `playhead` — the paper's streaming-quality covariate for the
    /// longevity model (§III-B1a). Counted a word at a time.
    pub fn buffering_level(&self, playhead: ChunkSeq) -> u32 {
        let mut i = playhead.index();
        let mut n = 0u32;
        loop {
            let Some(&w) = self.words.get(i / 64) else {
                return n;
            };
            let off = (i % 64) as u32;
            // Zeros of `w >> off` are the first break in the run; the shift
            // feeds zeros in at the top, so the run can't overrun the word.
            let run = (!(w >> off)).trailing_zeros();
            n += run;
            if run < 64 - off {
                return n;
            }
            i += run as usize;
        }
    }

    /// Merges every chunk held by `other` into this map (word-level OR) —
    /// equivalent to inserting each of `other.iter_held()` one by one.
    pub fn union_with(&mut self, other: &BufferMap) {
        // Grow only to the other's last *set* word, so the union's
        // representation matches what element-wise inserts would build
        // (insert grows lazily; derived equality compares the word vec).
        let needed = other.words.len() - other.words.iter().rev().take_while(|&&w| w == 0).count();
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
        for (w, &ow) in self.words.iter_mut().zip(&other.words) {
            *w |= ow;
        }
        self.held = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// A compact wire copy of the bitmap (what mesh nodes exchange).
    pub fn snapshot(&self) -> BufferMap {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: u32) -> ChunkSeq {
        ChunkSeq(s)
    }

    #[test]
    fn insert_query_remove() {
        let mut m = BufferMap::new(100);
        assert!(!m.has(c(5)));
        assert!(m.insert(c(5)));
        assert!(!m.insert(c(5)), "idempotent insert");
        assert!(m.has(c(5)));
        assert_eq!(m.held_count(), 1);
        assert!(m.remove(c(5)));
        assert!(!m.remove(c(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut m = BufferMap::new(1);
        assert!(m.insert(c(1000)));
        assert!(m.has(c(1000)));
        assert!(!m.has(c(999)));
        assert!(!m.remove(c(100_000)), "far-out remove is a no-op");
    }

    #[test]
    fn iter_held_in_order() {
        let mut m = BufferMap::new(200);
        for s in [70u32, 3, 64, 128, 0] {
            m.insert(c(s));
        }
        let got: Vec<u32> = m.iter_held().map(|s| s.0).collect();
        assert_eq!(got, vec![0, 3, 64, 70, 128]);
    }

    #[test]
    fn missing_ranges() {
        let mut m = BufferMap::new(10);
        m.insert(c(2));
        m.insert(c(4));
        assert_eq!(
            m.missing_in(c(1), c(5))
                .iter()
                .map(|s| s.0)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert!(m.missing_in(c(2), c(2)).is_empty());
    }

    #[test]
    fn push_offer_computation() {
        let mut mine = BufferMap::new(10);
        let mut theirs = BufferMap::new(10);
        mine.insert(c(1));
        mine.insert(c(2));
        mine.insert(c(3));
        theirs.insert(c(2));
        let offer = mine.held_that_other_misses(&theirs, c(0), c(9));
        assert_eq!(offer.iter().map(|s| s.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn buffering_level_counts_consecutive_run() {
        let mut m = BufferMap::new(20);
        for s in [5u32, 6, 7, 9] {
            m.insert(c(s));
        }
        assert_eq!(m.buffering_level(c(5)), 3, "5,6,7 then gap at 8");
        assert_eq!(m.buffering_level(c(8)), 0);
        assert_eq!(m.buffering_level(c(9)), 1);
    }

    #[test]
    fn missing_matches_naive_scan_across_word_boundaries() {
        let mut m = BufferMap::new(200);
        for s in [0u32, 1, 63, 64, 65, 127, 128, 130, 190] {
            m.insert(c(s));
        }
        for (lo, hi) in [(0, 199), (60, 70), (63, 64), (5, 5), (120, 140), (190, 260)] {
            let naive: Vec<u32> = (lo..=hi).filter(|&s| !m.has(c(s))).collect();
            let fast: Vec<u32> = m.missing_in(c(lo), c(hi)).iter().map(|s| s.0).collect();
            assert_eq!(fast, naive, "range [{lo}, {hi}]");
            let it: Vec<u32> = m.missing_in_iter(c(lo), c(hi)).map(|s| s.0).collect();
            assert_eq!(it, naive, "iter form, range [{lo}, {hi}]");
        }
        assert!(m.missing_in(c(10), c(5)).is_empty(), "inverted range");
    }

    #[test]
    fn offer_matches_naive_scan_across_word_boundaries() {
        let mut mine = BufferMap::new(200);
        let mut theirs = BufferMap::new(200);
        for s in [0u32, 5, 63, 64, 100, 130, 131] {
            mine.insert(c(s));
        }
        for s in [5u32, 64, 131] {
            theirs.insert(c(s));
        }
        for (lo, hi) in [(0, 199), (60, 70), (100, 131), (132, 150)] {
            let naive: Vec<u32> = (lo..=hi)
                .filter(|&s| mine.has(c(s)) && !theirs.has(c(s)))
                .collect();
            let fast: Vec<u32> = mine
                .held_that_other_misses(&theirs, c(lo), c(hi))
                .iter()
                .map(|s| s.0)
                .collect();
            assert_eq!(fast, naive, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn buffering_level_spans_words() {
        let mut m = BufferMap::new(300);
        for s in 10..200u32 {
            m.insert(c(s));
        }
        assert_eq!(m.buffering_level(c(10)), 190);
        assert_eq!(m.buffering_level(c(64)), 136);
        assert_eq!(m.buffering_level(c(199)), 1);
        assert_eq!(m.buffering_level(c(200)), 0);
        // A run that ends exactly at the allocation boundary.
        let mut full = BufferMap::new(64);
        for s in 0..64u32 {
            full.insert(c(s));
        }
        assert_eq!(full.buffering_level(c(0)), 64);
    }

    #[test]
    fn union_matches_elementwise_insert() {
        let mut a = BufferMap::new(100);
        let mut b = BufferMap::new(200);
        for s in [1u32, 64, 65] {
            a.insert(c(s));
        }
        for s in [1u32, 2, 150] {
            b.insert(c(s));
        }
        let mut naive = a.clone();
        for s in b.iter_held() {
            naive.insert(s);
        }
        a.union_with(&b);
        assert_eq!(a, naive);
        assert_eq!(a.held_count(), 5);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut m = BufferMap::new(10);
        m.insert(c(1));
        let snap = m.snapshot();
        m.insert(c(2));
        assert!(snap.has(c(1)));
        assert!(!snap.has(c(2)));
    }
}
