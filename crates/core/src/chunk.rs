//! Chunk identity and naming.
//!
//! §III-A1: "Each chunk is named uniquely in the format of channel name plus
//! its generation timestamp … The naming mechanism ensures that every chunk
//! name is unique." A chunk's DHT ID is the consistent hash of its name.
//!
//! Internally protocols track chunks by dense sequence number ([`ChunkSeq`]);
//! [`ChunkNamer`] maps sequence numbers to paper-style names and
//! (pre-computed) ring IDs.

use core::fmt;

use dco_dht::hash::hash_name;
use dco_dht::id::ChordId;
use dco_sim::time::{SimDuration, SimTime};

/// Dense chunk sequence number (chunk `k` is generated at `start + k·len`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkSeq(pub u32);

impl ChunkSeq {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The next sequence number.
    #[inline]
    pub const fn next(self) -> ChunkSeq {
        ChunkSeq(self.0 + 1)
    }
}

impl fmt::Debug for ChunkSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ChunkSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Channel naming: maps sequence numbers to `<channel><timestamp>` names
/// and pre-computes their ring IDs.
#[derive(Clone, Debug)]
pub struct ChunkNamer {
    channel: String,
    /// Wall-clock-style timestamp of chunk 0 (the paper uses
    /// `NBC20090101013001`; we keep a numeric epoch-second base).
    base_timestamp: u64,
    /// Seconds of media per chunk (for the timestamp step).
    chunk_len: SimDuration,
    /// Pre-computed ring IDs per sequence number.
    ids: Vec<ChordId>,
}

impl ChunkNamer {
    /// A namer for `n_chunks` chunks of channel `channel`.
    pub fn new(channel: &str, base_timestamp: u64, chunk_len: SimDuration, n_chunks: u32) -> Self {
        let mut namer = ChunkNamer {
            channel: channel.to_string(),
            base_timestamp,
            chunk_len,
            ids: Vec::with_capacity(n_chunks as usize),
        };
        for seq in 0..n_chunks {
            let name = namer.name_of(ChunkSeq(seq));
            namer.ids.push(hash_name(&name));
        }
        namer
    }

    /// The paper-style default: channel `CNN`, 1-second chunks.
    pub fn paper_default(n_chunks: u32) -> Self {
        // 2009-01-01 01:30:01 UTC, the paper's example timestamp.
        ChunkNamer::new("CNN", 1_230_773_401, SimDuration::from_secs(1), n_chunks)
    }

    /// The channel name.
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// Number of pre-computed chunks.
    pub fn n_chunks(&self) -> u32 {
        self.ids.len() as u32
    }

    /// The unique name of chunk `seq`: channel + generation timestamp.
    pub fn name_of(&self, seq: ChunkSeq) -> String {
        let ts = self.base_timestamp + u64::from(seq.0) * self.chunk_len.as_secs().max(1);
        format!("{}{}", self.channel, ts)
    }

    /// The ring ID of chunk `seq` (pre-computed; panics past `n_chunks`).
    #[inline]
    pub fn id_of(&self, seq: ChunkSeq) -> ChordId {
        self.ids[seq.index()]
    }

    /// Reverse lookup: the sequence number with the given ring ID, if any
    /// (linear scan; used by tests and handover paths only).
    pub fn seq_of_id(&self, id: ChordId) -> Option<ChunkSeq> {
        self.ids
            .iter()
            .position(|&x| x == id)
            .map(|i| ChunkSeq(i as u32))
    }

    /// When chunk `seq` is generated on the simulation clock (chunk 0 at
    /// `t = 0`).
    pub fn generation_time(&self, seq: ChunkSeq) -> SimTime {
        SimTime::ZERO + self.chunk_len * u64::from(seq.0)
    }

    /// The newest chunk generated at or before `now` (`None` before chunk 0
    /// exists or when `n_chunks == 0`).
    pub fn latest_at(&self, now: SimTime) -> Option<ChunkSeq> {
        if self.ids.is_empty() || self.chunk_len.is_zero() {
            return None;
        }
        let k = (now.as_micros() / self.chunk_len.as_micros()) as u32;
        Some(ChunkSeq(k.min(self.n_chunks() - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_channel_plus_timestamp() {
        let n = ChunkNamer::paper_default(10);
        assert_eq!(n.name_of(ChunkSeq(0)), "CNN1230773401");
        assert_eq!(n.name_of(ChunkSeq(9)), "CNN1230773410");
        assert_eq!(n.channel(), "CNN");
    }

    #[test]
    fn names_are_unique_and_ids_match_hash() {
        let n = ChunkNamer::paper_default(100);
        let mut seen = std::collections::HashSet::new();
        for seq in 0..100 {
            let name = n.name_of(ChunkSeq(seq));
            assert!(seen.insert(name.clone()), "duplicate name {name}");
            assert_eq!(n.id_of(ChunkSeq(seq)), hash_name(&name));
        }
    }

    #[test]
    fn reverse_lookup() {
        let n = ChunkNamer::paper_default(20);
        let id = n.id_of(ChunkSeq(7));
        assert_eq!(n.seq_of_id(id), Some(ChunkSeq(7)));
        assert_eq!(n.seq_of_id(ChordId(12345)), None);
    }

    #[test]
    fn generation_schedule() {
        let n = ChunkNamer::paper_default(100);
        assert_eq!(n.generation_time(ChunkSeq(0)), SimTime::ZERO);
        assert_eq!(n.generation_time(ChunkSeq(42)), SimTime::from_secs(42));
        assert_eq!(n.latest_at(SimTime::from_millis(500)), Some(ChunkSeq(0)));
        assert_eq!(n.latest_at(SimTime::from_secs(42)), Some(ChunkSeq(42)));
        assert_eq!(
            n.latest_at(SimTime::from_secs(500)),
            Some(ChunkSeq(99)),
            "clamped to last chunk"
        );
    }

    #[test]
    fn empty_namer() {
        let n = ChunkNamer::paper_default(0);
        assert_eq!(n.latest_at(SimTime::from_secs(5)), None);
        assert_eq!(n.n_chunks(), 0);
    }

    #[test]
    fn seq_ordering_and_display() {
        assert!(ChunkSeq(3) < ChunkSeq(5));
        assert_eq!(ChunkSeq(3).next(), ChunkSeq(4));
        assert_eq!(format!("{}", ChunkSeq(8)), "c8");
        assert_eq!(ChunkSeq(8).index(), 8);
    }
}
