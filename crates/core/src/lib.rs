//! # dco-core — the DHT-Aided Chunk-Driven Overlay
//!
//! The paper's contribution (Shen, Zhao, Li & Li, ICPP 2010): a P2P live
//! streaming overlay where a Chord DHT of coordinators indexes every live
//! chunk, so any node can locate a provider with spare upload bandwidth in
//! `O(log n)` hops instead of gossiping buffer maps with its neighbors.
//!
//! * [`chunk`] — chunk naming (`channel + timestamp`) and ring IDs.
//! * [`buffer`] — playback buffers / buffer-map bitmaps.
//! * [`window`] — the adaptive prefetching window (Eq. 2).
//! * [`longevity`] — the Cox proportional-hazards stability model (Eq. 1).
//! * [`index`] — coordinator index tables and the sufficient-bandwidth
//!   provider selection rule.
//! * [`proto`] — the full protocol (Algorithm 1) over `dco-sim`, in both
//!   the flat (§IV) and hierarchical (§III) tier modes.
//!
//! ## Quickstart
//!
//! ```
//! use dco_core::proto::{DcoConfig, DcoProtocol};
//! use dco_sim::prelude::*;
//!
//! let cfg = DcoConfig::paper_default(16, 5); // 16 nodes, 5 chunks
//! let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::default(), 42);
//! for i in 0..16 {
//!     let caps = if i == 0 { NodeCaps::server_default() } else { NodeCaps::peer_default() };
//!     let id = sim.add_node(caps);
//!     sim.schedule_join(id, SimTime::ZERO);
//! }
//! sim.run_until(SimTime::from_secs(30));
//! let done = sim.protocol().obs.received_percentage(SimTime::from_secs(30));
//! assert!(done > 99.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod chunk;
pub mod index;
pub mod longevity;
pub mod proto;
pub mod window;
pub mod wire;

pub use buffer::BufferMap;
pub use chunk::{ChunkNamer, ChunkSeq};
pub use index::{ChunkIndex, IndexTable, SelectPolicy};
pub use longevity::{Covariates, CoxModel};
pub use proto::{DcoConfig, DcoMsg, DcoProtocol, DcoTimer, Role, TierMode};
pub use window::{PrefetchWindow, WindowConfig};
