//! Coordinator index tables and provider selection (§III-B2, Fig. 3).
//!
//! "Each coordinator maintains an index table where each entry holds the
//! indices of a chunk. A chunk index includes the chunk's ID, name, the IP
//! address of its holder node, the chunk owner's buffer map and available
//! bandwidth." On a `Lookup(ID)`, the coordinator "responds … a chunk
//! provider with sufficient available bandwidth for the chunk transmission".
//!
//! [`IndexTable`] wraps the DHT [`KeyStore`] with chunk-index semantics:
//! registration refresh, holder removal (departure/failure), and the
//! sufficient-bandwidth selection rule with a round-robin tiebreak so load
//! spreads across equally capable providers. A `Random` policy is provided
//! as the ablation baseline.

use dco_dht::id::ChordId;
use dco_dht::store::KeyStore;
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;

use crate::chunk::ChunkSeq;

/// One row of a coordinator's index table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkIndex {
    /// The chunk this index advertises.
    pub seq: ChunkSeq,
    /// The provider holding the chunk.
    pub holder: NodeId,
    /// The provider's advertised spare upload bandwidth.
    pub avail: Kbps,
    /// How many chunks the provider held when it registered (a compact
    /// stand-in for the full buffer map the paper stores per index).
    pub held_count: u32,
}

/// Provider-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectPolicy {
    /// The paper's rule: among providers whose advertised bandwidth covers
    /// the stream rate, rotate round-robin; if none qualify, take the one
    /// with the most spare bandwidth.
    SufficientBandwidth,
    /// Ablation: uniformly random provider, ignoring bandwidth.
    Random,
    /// Extension (the paper's future-work "optimal peer selection"):
    /// always the provider advertising the most spare bandwidth,
    /// tie-broken by the smallest holdings (spreads load toward nodes
    /// serving little).
    LeastLoaded,
}

/// A coordinator's index table.
#[derive(Clone, Debug)]
pub struct IndexTable {
    store: KeyStore<ChunkIndex>,
    /// Round-robin cursor per chunk key.
    cursors: std::collections::HashMap<u64, usize>,
}

impl Default for IndexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexTable {
    /// An empty table.
    pub fn new() -> Self {
        IndexTable {
            store: KeyStore::new(),
            cursors: std::collections::HashMap::new(),
        }
    }

    /// Registers (or refreshes) a chunk index. A holder re-registering the
    /// same chunk updates its bandwidth advertisement in place.
    pub fn register(&mut self, key: ChordId, idx: ChunkIndex) {
        if let Some(entries) = self.store.get_mut(key) {
            if let Some(e) = entries.iter_mut().find(|e| e.holder == idx.holder) {
                *e = idx;
                return;
            }
        }
        self.store.insert(key, idx);
    }

    /// Removes one holder's index for `key`. Returns `true` if present.
    pub fn remove_holder(&mut self, key: ChordId, holder: NodeId) -> bool {
        match self.store.get_mut(key) {
            Some(entries) => {
                let before = entries.len();
                entries.retain(|e| e.holder != holder);
                entries.len() != before
            }
            None => false,
        }
    }

    /// Removes a holder from **every** entry (graceful-departure cleanup on
    /// a coordinator that received a deregistration without a key list).
    pub fn purge_holder(&mut self, holder: NodeId) -> usize {
        let mut removed = 0;
        self.store.retain_values(|_, e| {
            if e.holder == holder {
                removed += 1;
                false
            } else {
                true
            }
        });
        removed
    }

    /// All indices registered under `key`.
    pub fn providers(&self, key: ChordId) -> &[ChunkIndex] {
        self.store.get(key)
    }

    /// Number of distinct chunk keys with at least one provider.
    pub fn key_count(&self) -> usize {
        self.store.key_count()
    }

    /// Total registered indices.
    pub fn index_count(&self) -> usize {
        self.store.value_count()
    }

    /// Picks a provider for `key` under `policy`, excluding `exclude`
    /// (e.g. the requester itself, or a provider just reported dead).
    ///
    /// `floor` is the stream rate the provider must sustain.
    pub fn select(
        &mut self,
        key: ChordId,
        floor: Kbps,
        policy: SelectPolicy,
        exclude: &[NodeId],
        rng: &mut SimRng,
    ) -> Option<ChunkIndex> {
        let entries = self.store.get(key);
        let candidates: Vec<&ChunkIndex> = entries
            .iter()
            .filter(|e| !exclude.contains(&e.holder))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match policy {
            SelectPolicy::Random => {
                let i = rng.gen_range(0..candidates.len());
                Some(*candidates[i])
            }
            SelectPolicy::SufficientBandwidth => {
                let sufficient: Vec<&&ChunkIndex> =
                    candidates.iter().filter(|e| e.avail >= floor).collect();
                if sufficient.is_empty() {
                    // Degraded mode: the least-loaded holder.
                    return candidates.iter().max_by_key(|e| e.avail).map(|e| **e);
                }
                let cursor = self.cursors.entry(key.0).or_insert(0);
                let pick = **sufficient[*cursor % sufficient.len()];
                *cursor = cursor.wrapping_add(1);
                Some(pick)
            }
            SelectPolicy::LeastLoaded => candidates
                .iter()
                .max_by_key(|e| (e.avail, std::cmp::Reverse(e.held_count)))
                .map(|e| **e),
        }
    }

    /// Drains the whole table for a handover (coordinator departure), as
    /// `(key, indices)` pairs.
    pub fn drain_all(&mut self) -> Vec<(ChordId, Vec<ChunkIndex>)> {
        self.cursors.clear();
        self.store.extract_range(ChordId(0), ChordId(0))
    }

    /// Removes and returns the entries in the clockwise arc `(from, to]`
    /// (ownership split when a new coordinator joins).
    pub fn extract_range(&mut self, from: ChordId, to: ChordId) -> Vec<(ChordId, Vec<ChunkIndex>)> {
        self.store.extract_range(from, to)
    }

    /// Bulk-inserts handed-over entries.
    pub fn absorb(&mut self, entries: Vec<(ChordId, Vec<ChunkIndex>)>) {
        for (key, idxs) in entries {
            for idx in idxs {
                self.register(key, idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(holder: u32, avail: u32) -> ChunkIndex {
        ChunkIndex {
            seq: ChunkSeq(1),
            holder: NodeId(holder),
            avail: Kbps(avail),
            held_count: 1,
        }
    }

    const KEY: ChordId = ChordId(42);
    const FLOOR: Kbps = Kbps(300);

    #[test]
    fn register_and_refresh() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 600));
        assert_eq!(t.providers(KEY).len(), 2);
        // Refresh in place.
        t.register(KEY, idx(1, 100));
        assert_eq!(t.providers(KEY).len(), 2);
        let e = t
            .providers(KEY)
            .iter()
            .find(|e| e.holder == NodeId(1))
            .unwrap();
        assert_eq!(e.avail, Kbps(100));
        assert_eq!(t.key_count(), 1);
        assert_eq!(t.index_count(), 2);
    }

    #[test]
    fn remove_and_purge() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(ChordId(43), idx(1, 600));
        t.register(KEY, idx(2, 600));
        assert!(t.remove_holder(KEY, NodeId(1)));
        assert!(!t.remove_holder(KEY, NodeId(1)));
        assert_eq!(t.purge_holder(NodeId(1)), 1, "remaining entry under 43");
        assert_eq!(t.index_count(), 1);
    }

    #[test]
    fn sufficient_bandwidth_round_robin() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 500));
        t.register(KEY, idx(3, 100)); // below floor
        let mut rng = SimRng::seed_from_u64(1);
        let picks: Vec<u32> = (0..4)
            .map(|_| {
                t.select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
                    .unwrap()
                    .holder
                    .0
            })
            .collect();
        assert_eq!(picks, vec![1, 2, 1, 2], "rotates among sufficient only");
    }

    #[test]
    fn degraded_mode_picks_least_loaded() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 50));
        t.register(KEY, idx(2, 200));
        let mut rng = SimRng::seed_from_u64(1);
        let p = t
            .select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
            .unwrap();
        assert_eq!(p.holder, NodeId(2), "no one sufficient ⇒ max avail");
    }

    #[test]
    fn exclusion_list_respected() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 600));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..5 {
            let p = t
                .select(
                    KEY,
                    FLOOR,
                    SelectPolicy::SufficientBandwidth,
                    &[NodeId(1)],
                    &mut rng,
                )
                .unwrap();
            assert_eq!(p.holder, NodeId(2));
        }
        assert!(t
            .select(
                KEY,
                FLOOR,
                SelectPolicy::SufficientBandwidth,
                &[NodeId(1), NodeId(2)],
                &mut rng
            )
            .is_none());
    }

    #[test]
    fn random_policy_covers_all_candidates() {
        let mut t = IndexTable::new();
        for h in 1..=3 {
            t.register(KEY, idx(h, 10)); // all below floor; Random ignores
        }
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                t.select(KEY, FLOOR, SelectPolicy::Random, &[], &mut rng)
                    .unwrap()
                    .holder
                    .0,
            );
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn least_loaded_picks_max_avail_then_fewest_held() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 400));
        t.register(KEY, idx(2, 600));
        t.register(
            KEY,
            ChunkIndex {
                seq: ChunkSeq(1),
                holder: NodeId(3),
                avail: Kbps(600),
                held_count: 99,
            },
        );
        let mut rng = SimRng::seed_from_u64(4);
        let p = t
            .select(KEY, FLOOR, SelectPolicy::LeastLoaded, &[], &mut rng)
            .unwrap();
        assert_eq!(p.holder, NodeId(2), "600 kbps beats 400; 1 held beats 99");
    }

    #[test]
    fn empty_key_selects_none() {
        let mut t = IndexTable::new();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(t
            .select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
            .is_none());
    }

    #[test]
    fn drain_and_absorb_round_trip() {
        let mut a = IndexTable::new();
        a.register(KEY, idx(1, 600));
        a.register(ChordId(99), idx(2, 500));
        let drained = a.drain_all();
        assert_eq!(a.index_count(), 0);
        let mut b = IndexTable::new();
        b.absorb(drained);
        assert_eq!(b.index_count(), 2);
        assert_eq!(b.providers(KEY).len(), 1);
    }

    #[test]
    fn extract_range_splits_ownership() {
        let mut t = IndexTable::new();
        t.register(ChordId(10), idx(1, 600));
        t.register(ChordId(20), idx(2, 600));
        t.register(ChordId(30), idx(3, 600));
        let moved = t.extract_range(ChordId(10), ChordId(20));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(20));
        assert_eq!(t.index_count(), 2);
    }
}
