//! Coordinator index tables and provider selection (§III-B2, Fig. 3).
//!
//! "Each coordinator maintains an index table where each entry holds the
//! indices of a chunk. A chunk index includes the chunk's ID, name, the IP
//! address of its holder node, the chunk owner's buffer map and available
//! bandwidth." On a `Lookup(ID)`, the coordinator "responds … a chunk
//! provider with sufficient available bandwidth for the chunk transmission".
//!
//! [`IndexTable`] wraps the DHT [`KeyStore`] with chunk-index semantics:
//! registration refresh, holder removal (departure/failure), and the
//! sufficient-bandwidth selection rule with a round-robin tiebreak so load
//! spreads across equally capable providers. A `Random` policy is provided
//! as the ablation baseline.

use dco_dht::id::ChordId;
use dco_dht::store::KeyStore;
use dco_sim::net::Kbps;
use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;

use crate::chunk::ChunkSeq;

/// One row of a coordinator's index table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkIndex {
    /// The chunk this index advertises.
    pub seq: ChunkSeq,
    /// The provider holding the chunk.
    pub holder: NodeId,
    /// The provider's advertised spare upload bandwidth.
    pub avail: Kbps,
    /// How many chunks the provider held when it registered (a compact
    /// stand-in for the full buffer map the paper stores per index).
    pub held_count: u32,
}

// Placeholder row for the store's inline small-vec slots; never observed
// (the store only exposes `vals[..len]`).
impl Default for ChunkIndex {
    fn default() -> Self {
        ChunkIndex {
            seq: ChunkSeq(0),
            holder: NodeId(0),
            avail: Kbps(0),
            held_count: 0,
        }
    }
}

/// Provider-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectPolicy {
    /// The paper's rule: among providers whose advertised bandwidth covers
    /// the stream rate, rotate round-robin; if none qualify, take the one
    /// with the most spare bandwidth.
    SufficientBandwidth,
    /// Ablation: uniformly random provider, ignoring bandwidth.
    Random,
    /// Extension (the paper's future-work "optimal peer selection"):
    /// always the provider advertising the most spare bandwidth,
    /// tie-broken by the smallest holdings (spreads load toward nodes
    /// serving little).
    LeastLoaded,
}

/// Largest exclusion list served by the O(1) selection fast path. The
/// protocol excludes at most the requester and one dead provider; anything
/// longer falls back to the (equivalent) scanning path.
const MAX_FAST_EXCLUDE: usize = 2;
/// Entries tracked for degraded-mode selection. Deletions shrink the
/// tracked prefix, so it is kept comfortably larger than
/// `MAX_FAST_EXCLUDE + 1` to make refill rebuilds rare.
const TOP_K: usize = 8;

/// Tombstoned positions tolerated before the per-key state is rebuilt
/// from scratch. Amortizes the rebuild across that many removals while
/// keeping the position-translation walk a few cache lines.
const MAX_DELETED: usize = 64;

/// Per-key acceleration state. At scale a chunk's provider list approaches
/// the whole population, and the figures workload issues millions of
/// selections, registrations and failure-driven removals against it —
/// linear scans over those lists dominate the simulator's wall clock. This
/// index answers each in O(1) cache lines while reproducing the scanning
/// semantics bit-for-bit.
///
/// Positions are **virtual**: assigned once at registration and never
/// shifted by removals. A removal only records its virtual position in the
/// sorted `deleted` list; the physical index of a live entry is its
/// virtual position minus the deleted positions below it. Virtual order
/// equals physical order for live entries, so rank arithmetic (round-robin
/// selection, sufficiency counting) works directly on virtual positions.
#[derive(Clone, Debug)]
struct KeyAux {
    /// Holder → virtual position. Maintained unconditionally.
    pos: std::collections::HashMap<u32, u32>,
    /// Virtual positions removed since the last rebuild, ascending.
    deleted: Vec<u32>,
    /// Virtual position for the next registration.
    virt_len: u32,
    /// The bandwidth floor `suff`/`top` were built for (selection passes a
    /// constant floor in practice; a change forces one rebuild).
    floor: Option<Kbps>,
    /// Virtual positions of entries with `avail >= floor`, ascending.
    suff: Vec<u32>,
    /// The best live entries by `(avail, virtual position)`, descending.
    /// Invariant: exactly the live entries ranking above `top_bound` (all
    /// of them when `top_bound` is `None`), so the array is always a
    /// correct prefix of the full ranking even after deletions shrink it.
    top: [(Kbps, u32); TOP_K],
    top_len: u8,
    /// Eviction watermark: entries at or below this rank once fell off the
    /// array, so the array only covers the ranking above it.
    top_bound: Option<(Kbps, u32)>,
}

impl Default for KeyAux {
    fn default() -> Self {
        KeyAux {
            pos: std::collections::HashMap::new(),
            deleted: Vec::new(),
            virt_len: 0,
            floor: None,
            suff: Vec::new(),
            top: [(Kbps(0), 0); TOP_K],
            top_len: 0,
            top_bound: None,
        }
    }
}

impl KeyAux {
    /// Builds the holder→position map for `entries` (floor fields unbuilt).
    fn from_entries(entries: &[ChunkIndex]) -> Self {
        let mut aux = KeyAux {
            virt_len: entries.len() as u32,
            ..KeyAux::default()
        };
        for (p, e) in entries.iter().enumerate() {
            aux.pos.insert(e.holder.0, p as u32);
        }
        aux
    }

    /// Physical index of the live entry at virtual position `virt`.
    fn physical(&self, virt: u32) -> usize {
        virt as usize - self.deleted.partition_point(|&d| d < virt)
    }

    /// (Re)builds the floor-dependent fields for `floor`. Entries are
    /// walked physically while reconstructing virtual coordinates.
    fn rebuild_for(&mut self, entries: &[ChunkIndex], floor: Kbps) {
        self.floor = Some(floor);
        self.suff.clear();
        self.top_len = 0;
        self.top_bound = None;
        let mut del = 0usize;
        let mut virt = 0u32;
        for e in entries {
            while self.deleted.get(del) == Some(&virt) {
                del += 1;
                virt += 1;
            }
            if e.avail >= floor {
                self.suff.push(virt);
            }
            self.top_insert(e.avail, virt);
            virt += 1;
        }
    }

    /// Registers a new tail entry, returning its virtual position.
    fn push_entry(&mut self, holder: NodeId, avail: Kbps) -> u32 {
        let virt = self.virt_len;
        self.virt_len += 1;
        self.pos.insert(holder.0, virt);
        if let Some(f) = self.floor {
            if avail >= f {
                self.suff.push(virt);
            }
            self.top_insert(avail, virt);
        }
        virt
    }

    /// Tombstones the entry at virtual position `virt` (already absent
    /// from `pos`). Returns `false` when the tombstone budget is exhausted
    /// and the caller should drop the aux instead.
    fn delete(&mut self, virt: u32, avail: Kbps) -> bool {
        if self.deleted.len() >= MAX_DELETED {
            return false;
        }
        let at = self.deleted.partition_point(|&d| d < virt);
        self.deleted.insert(at, virt);
        if let Some(f) = self.floor {
            if avail >= f {
                let r = self.suff.binary_search(&virt).expect("sufficient position");
                self.suff.remove(r);
            }
            // Shrink the top prefix: the remaining array is still exactly
            // the live ranking above `top_bound`.
            let len = self.top_len as usize;
            if let Some(i) = self.top[..len].iter().position(|&(_, p)| p == virt) {
                self.top.copy_within(i + 1..len, i);
                self.top_len -= 1;
            }
        }
        true
    }

    /// Inserts into the descending `(avail, position)` top prefix,
    /// evicting (and recording) the overflowing tail entry.
    fn top_insert(&mut self, avail: Kbps, p: u32) {
        let key = (avail, p);
        if let Some(b) = self.top_bound {
            if key < b {
                return; // Below the watermark; the prefix is unaffected.
            }
        }
        let len = self.top_len as usize;
        if len == TOP_K {
            let evicted = self.top[TOP_K - 1];
            if key < evicted {
                self.top_bound = Some(key.max(self.top_bound.unwrap_or(key)));
                return;
            }
            self.top_bound = Some(evicted);
        }
        let mut i = len.min(TOP_K - 1);
        while i > 0 && (self.top[i - 1].0, self.top[i - 1].1) < key {
            self.top[i] = self.top[i - 1];
            i -= 1;
        }
        self.top[i] = (avail, p);
        self.top_len = (len + 1).min(TOP_K) as u8;
    }

    /// Degraded-mode pick: the maximal `(avail, virtual position)` among
    /// live entries not in `ex`. `None` means the tracked prefix was
    /// exhausted and the caller must rebuild first.
    fn degraded_pick(&self, ex: &[u32]) -> Option<u32> {
        let found = self.top[..self.top_len as usize]
            .iter()
            .find(|(_, p)| !ex.contains(p));
        match found {
            Some(&(_, p)) => Some(p),
            None => {
                debug_assert!(
                    self.top_bound.is_some(),
                    "an unbounded top prefix covers every live entry"
                );
                None
            }
        }
    }
}

/// A coordinator's index table.
#[derive(Clone, Debug)]
pub struct IndexTable {
    store: KeyStore<ChunkIndex>,
    /// Round-robin cursor per chunk key.
    cursors: std::collections::HashMap<u64, usize>,
    /// Selection/registration fast-path state per chunk key. Dropped (and
    /// lazily rebuilt) on the rare mutations that shift positions.
    aux: std::collections::HashMap<u64, KeyAux>,
}

impl Default for IndexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexTable {
    /// An empty table.
    pub fn new() -> Self {
        IndexTable {
            store: KeyStore::new(),
            cursors: std::collections::HashMap::new(),
            aux: std::collections::HashMap::new(),
        }
    }

    /// Registers (or refreshes) a chunk index. A holder re-registering the
    /// same chunk updates its bandwidth advertisement in place.
    pub fn register(&mut self, key: ChordId, idx: ChunkIndex) {
        let entries = self.store.get(key);
        if !entries.is_empty() {
            let aux = self
                .aux
                .entry(key.0)
                .or_insert_with(|| KeyAux::from_entries(entries));
            if let Some(&virt) = aux.pos.get(&idx.holder.0) {
                // Refresh in place; the avail change invalidates the
                // floor-dependent fields (rebuilt on the next selection).
                aux.floor = None;
                let phys = aux.physical(virt);
                let entries = self.store.get_mut(key).expect("non-empty above");
                debug_assert_eq!(entries[phys].holder, idx.holder, "aux position drift");
                entries[phys] = idx;
                return;
            }
        }
        self.store.insert(key, idx);
        match self.aux.entry(key.0) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().push_entry(idx.holder, idx.avail);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(KeyAux::from_entries(self.store.get(key)));
            }
        }
    }

    /// Removes one holder's index for `key`. Returns `true` if present.
    pub fn remove_holder(&mut self, key: ChordId, holder: NodeId) -> bool {
        let Some(entries) = self.store.get_mut(key) else {
            return false;
        };
        match self.aux.get_mut(&key.0) {
            Some(aux) => {
                // O(1) membership verdict from the aux, then a positional
                // removal — no holder scan.
                let Some(virt) = aux.pos.remove(&holder.0) else {
                    return false;
                };
                let phys = aux.physical(virt);
                debug_assert_eq!(entries[phys].holder, holder, "aux position drift");
                let avail = entries[phys].avail;
                entries.remove(phys);
                if !aux.delete(virt, avail) {
                    // Tombstone budget exhausted; rebuild lazily on next use.
                    self.aux.remove(&key.0);
                }
                true
            }
            None => {
                let before = entries.len();
                entries.retain(|e| e.holder != holder);
                entries.len() != before
            }
        }
    }

    /// Removes a holder from **every** entry (graceful-departure cleanup on
    /// a coordinator that received a deregistration without a key list).
    pub fn purge_holder(&mut self, holder: NodeId) -> usize {
        self.aux.clear();
        let mut removed = 0;
        self.store.retain_values(|_, e| {
            if e.holder == holder {
                removed += 1;
                false
            } else {
                true
            }
        });
        removed
    }

    /// All indices registered under `key`.
    pub fn providers(&self, key: ChordId) -> &[ChunkIndex] {
        self.store.get(key)
    }

    /// Number of distinct chunk keys with at least one provider.
    pub fn key_count(&self) -> usize {
        self.store.key_count()
    }

    /// Total registered indices.
    pub fn index_count(&self) -> usize {
        self.store.value_count()
    }

    /// Picks a provider for `key` under `policy`, excluding `exclude`
    /// (e.g. the requester itself, or a provider just reported dead).
    ///
    /// `floor` is the stream rate the provider must sustain.
    pub fn select(
        &mut self,
        key: ChordId,
        floor: Kbps,
        policy: SelectPolicy,
        exclude: &[NodeId],
        rng: &mut SimRng,
    ) -> Option<ChunkIndex> {
        if policy == SelectPolicy::SufficientBandwidth && exclude.len() <= MAX_FAST_EXCLUDE {
            return self.select_sufficient_fast(key, floor, exclude);
        }
        self.select_scan(key, floor, policy, exclude, rng)
    }

    /// The paper's sufficient-bandwidth rule answered from [`KeyAux`] in
    /// O(1) cache lines — candidate counting, round-robin rank selection
    /// and the degraded-mode maximum all reproduce [`Self::select_scan`]
    /// exactly (checked by a debug assertion and a property test).
    fn select_sufficient_fast(
        &mut self,
        key: ChordId,
        floor: Kbps,
        exclude: &[NodeId],
    ) -> Option<ChunkIndex> {
        let entries = self.store.get(key);
        if entries.is_empty() {
            return None;
        }
        let aux = self
            .aux
            .entry(key.0)
            .or_insert_with(|| KeyAux::from_entries(entries));
        if aux.floor != Some(floor) {
            aux.rebuild_for(entries, floor);
        }
        // Excluded holders actually present, as sorted unique virtual
        // positions (virtual order equals candidate order).
        let mut ex = [0u32; MAX_FAST_EXCLUDE];
        let mut ex_n = 0;
        for h in exclude {
            if let Some(&p) = aux.pos.get(&h.0) {
                if !ex[..ex_n].contains(&p) {
                    ex[ex_n] = p;
                    ex_n += 1;
                }
            }
        }
        ex[..ex_n].sort_unstable();
        let n_candidates = entries.len() - ex_n;
        if n_candidates == 0 {
            return None;
        }
        // Ranks (within `suff`) of excluded sufficient entries, ascending.
        let mut n_sufficient = aux.suff.len();
        let mut ex_ranks = [0usize; MAX_FAST_EXCLUDE];
        let mut exr_n = 0;
        for &p in &ex[..ex_n] {
            if entries[aux.physical(p)].avail >= floor {
                let r = aux.suff.binary_search(&p).expect("sufficient position");
                ex_ranks[exr_n] = r;
                exr_n += 1;
                n_sufficient -= 1;
            }
        }
        let picked = if n_sufficient == 0 {
            // Degraded mode: the last maximal-avail candidate, i.e. the
            // max by `(avail, position)`. Deletions may have exhausted the
            // tracked prefix; rebuild it first if so.
            let virt = match aux.degraded_pick(&ex[..ex_n]) {
                Some(v) => v,
                None => {
                    aux.rebuild_for(entries, floor);
                    aux.degraded_pick(&ex[..ex_n])
                        .expect("a non-excluded candidate exists")
                }
            };
            entries[aux.physical(virt)]
        } else {
            let cursor = self.cursors.entry(key.0).or_insert(0);
            let i = *cursor % n_sufficient;
            *cursor = cursor.wrapping_add(1);
            // The i-th sufficient candidate = the j-th entry of `suff`
            // after skipping the excluded ranks (ascending adjustment).
            let mut j = i;
            for &r in &ex_ranks[..exr_n] {
                if r <= j {
                    j += 1;
                }
            }
            entries[aux.physical(aux.suff[j])]
        };
        debug_assert_eq!(
            Some(picked),
            {
                let candidates = || entries.iter().filter(|e| !exclude.contains(&e.holder));
                let n_suff_scan = candidates().filter(|e| e.avail >= floor).count();
                if n_suff_scan == 0 {
                    candidates().max_by_key(|e| e.avail).copied()
                } else {
                    // The fast path already advanced the cursor by one.
                    let cur = self.cursors.get(&key.0).copied().unwrap_or(1);
                    candidates()
                        .filter(|e| e.avail >= floor)
                        .nth(cur.wrapping_sub(1) % n_suff_scan)
                        .copied()
                }
            },
            "fast selection must reproduce the scanning rule"
        );
        Some(picked)
    }

    /// Reference scanning selection: one counting pass over the provider
    /// slice, then an index-addressed second pass — same candidate order
    /// (and therefore the same RNG draws and round-robin picks) as the
    /// collect-into-Vec formulation this replaces.
    fn select_scan(
        &mut self,
        key: ChordId,
        floor: Kbps,
        policy: SelectPolicy,
        exclude: &[NodeId],
        rng: &mut SimRng,
    ) -> Option<ChunkIndex> {
        let entries = self.store.get(key);
        let candidates = || entries.iter().filter(|e| !exclude.contains(&e.holder));
        let n_candidates = candidates().count();
        if n_candidates == 0 {
            return None;
        }
        match policy {
            SelectPolicy::Random => {
                let i = rng.gen_range(0..n_candidates);
                candidates().nth(i).copied()
            }
            SelectPolicy::SufficientBandwidth => {
                let n_sufficient = candidates().filter(|e| e.avail >= floor).count();
                if n_sufficient == 0 {
                    // Degraded mode: the least-loaded holder.
                    return candidates().max_by_key(|e| e.avail).copied();
                }
                let cursor = self.cursors.entry(key.0).or_insert(0);
                let i = *cursor % n_sufficient;
                *cursor = cursor.wrapping_add(1);
                candidates().filter(|e| e.avail >= floor).nth(i).copied()
            }
            SelectPolicy::LeastLoaded => candidates()
                .max_by_key(|e| (e.avail, std::cmp::Reverse(e.held_count)))
                .copied(),
        }
    }

    /// Drains the whole table for a handover (coordinator departure), as
    /// `(key, indices)` pairs.
    pub fn drain_all(&mut self) -> Vec<(ChordId, Vec<ChunkIndex>)> {
        self.cursors.clear();
        self.aux.clear();
        self.store.extract_range(ChordId(0), ChordId(0))
    }

    /// Removes and returns the entries in the clockwise arc `(from, to]`
    /// (ownership split when a new coordinator joins).
    pub fn extract_range(&mut self, from: ChordId, to: ChordId) -> Vec<(ChordId, Vec<ChunkIndex>)> {
        self.aux.clear();
        self.store.extract_range(from, to)
    }

    /// Bulk-inserts handed-over entries.
    pub fn absorb(&mut self, entries: Vec<(ChordId, Vec<ChunkIndex>)>) {
        for (key, idxs) in entries {
            for idx in idxs {
                self.register(key, idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(holder: u32, avail: u32) -> ChunkIndex {
        ChunkIndex {
            seq: ChunkSeq(1),
            holder: NodeId(holder),
            avail: Kbps(avail),
            held_count: 1,
        }
    }

    const KEY: ChordId = ChordId(42);
    const FLOOR: Kbps = Kbps(300);

    #[test]
    fn register_and_refresh() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 600));
        assert_eq!(t.providers(KEY).len(), 2);
        // Refresh in place.
        t.register(KEY, idx(1, 100));
        assert_eq!(t.providers(KEY).len(), 2);
        let e = t
            .providers(KEY)
            .iter()
            .find(|e| e.holder == NodeId(1))
            .unwrap();
        assert_eq!(e.avail, Kbps(100));
        assert_eq!(t.key_count(), 1);
        assert_eq!(t.index_count(), 2);
    }

    #[test]
    fn remove_and_purge() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(ChordId(43), idx(1, 600));
        t.register(KEY, idx(2, 600));
        assert!(t.remove_holder(KEY, NodeId(1)));
        assert!(!t.remove_holder(KEY, NodeId(1)));
        assert_eq!(t.purge_holder(NodeId(1)), 1, "remaining entry under 43");
        assert_eq!(t.index_count(), 1);
    }

    #[test]
    fn sufficient_bandwidth_round_robin() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 500));
        t.register(KEY, idx(3, 100)); // below floor
        let mut rng = SimRng::seed_from_u64(1);
        let picks: Vec<u32> = (0..4)
            .map(|_| {
                t.select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
                    .unwrap()
                    .holder
                    .0
            })
            .collect();
        assert_eq!(picks, vec![1, 2, 1, 2], "rotates among sufficient only");
    }

    #[test]
    fn degraded_mode_picks_least_loaded() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 50));
        t.register(KEY, idx(2, 200));
        let mut rng = SimRng::seed_from_u64(1);
        let p = t
            .select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
            .unwrap();
        assert_eq!(p.holder, NodeId(2), "no one sufficient ⇒ max avail");
    }

    #[test]
    fn exclusion_list_respected() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 600));
        t.register(KEY, idx(2, 600));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..5 {
            let p = t
                .select(
                    KEY,
                    FLOOR,
                    SelectPolicy::SufficientBandwidth,
                    &[NodeId(1)],
                    &mut rng,
                )
                .unwrap();
            assert_eq!(p.holder, NodeId(2));
        }
        assert!(t
            .select(
                KEY,
                FLOOR,
                SelectPolicy::SufficientBandwidth,
                &[NodeId(1), NodeId(2)],
                &mut rng
            )
            .is_none());
    }

    #[test]
    fn random_policy_covers_all_candidates() {
        let mut t = IndexTable::new();
        for h in 1..=3 {
            t.register(KEY, idx(h, 10)); // all below floor; Random ignores
        }
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                t.select(KEY, FLOOR, SelectPolicy::Random, &[], &mut rng)
                    .unwrap()
                    .holder
                    .0,
            );
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn least_loaded_picks_max_avail_then_fewest_held() {
        let mut t = IndexTable::new();
        t.register(KEY, idx(1, 400));
        t.register(KEY, idx(2, 600));
        t.register(
            KEY,
            ChunkIndex {
                seq: ChunkSeq(1),
                holder: NodeId(3),
                avail: Kbps(600),
                held_count: 99,
            },
        );
        let mut rng = SimRng::seed_from_u64(4);
        let p = t
            .select(KEY, FLOOR, SelectPolicy::LeastLoaded, &[], &mut rng)
            .unwrap();
        assert_eq!(p.holder, NodeId(2), "600 kbps beats 400; 1 held beats 99");
    }

    #[test]
    fn empty_key_selects_none() {
        let mut t = IndexTable::new();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(t
            .select(KEY, FLOOR, SelectPolicy::SufficientBandwidth, &[], &mut rng)
            .is_none());
    }

    #[test]
    fn drain_and_absorb_round_trip() {
        let mut a = IndexTable::new();
        a.register(KEY, idx(1, 600));
        a.register(ChordId(99), idx(2, 500));
        let drained = a.drain_all();
        assert_eq!(a.index_count(), 0);
        let mut b = IndexTable::new();
        b.absorb(drained);
        assert_eq!(b.index_count(), 2);
        assert_eq!(b.providers(KEY).len(), 1);
    }

    #[test]
    fn extract_range_splits_ownership() {
        let mut t = IndexTable::new();
        t.register(ChordId(10), idx(1, 600));
        t.register(ChordId(20), idx(2, 600));
        t.register(ChordId(30), idx(3, 600));
        let moved = t.extract_range(ChordId(10), ChordId(20));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, ChordId(20));
        assert_eq!(t.index_count(), 2);
    }
}
