//! Stable-node identification: the Cox proportional-hazards longevity model
//! (§III-B1a, Eq. 1).
//!
//! DCO selects coordinators among **stable** nodes. The paper scores a
//! node's probability of staying in the network past time `t` as
//!
//! ```text
//! p_l(t) = 1 − h₀(t) · exp(βᵀ z)
//! ```
//!
//! with baseline hazard `h₀(t)` and covariates `z` = (streaming quality,
//! join time-of-day). The covariates in the original evaluation were
//! synthetic; we keep the formula exact and make the covariate source
//! pluggable: streaming quality is the buffering level from the node's own
//! [`BufferMap`](crate::buffer::BufferMap), join time comes from the churn
//! schedule or a configured value.

/// Coefficients and baseline of the Cox model.
#[derive(Clone, Debug)]
pub struct CoxModel {
    /// β for the streaming-quality covariate (consecutive buffered chunks,
    /// normalized to `[0, 1]` by `quality_scale`). Negative: better quality
    /// lowers the hazard.
    pub beta_quality: f64,
    /// β for the join-time covariate (hour of day normalized to `[0, 1)`).
    pub beta_join_time: f64,
    /// Normalization constant for the buffering level.
    pub quality_scale: f64,
    /// Baseline hazard scale `h₀(0)`; decays with observed uptime.
    pub base_hazard: f64,
    /// Uptime e-folding constant of the baseline hazard, in seconds — the
    /// "the longer a node stays, the longer it will stay" effect (ref.
    /// \[44\] in the paper).
    pub hazard_decay_secs: f64,
}

impl Default for CoxModel {
    fn default() -> Self {
        CoxModel {
            beta_quality: -1.2,
            beta_join_time: 0.4,
            quality_scale: 20.0,
            base_hazard: 0.8,
            hazard_decay_secs: 120.0,
        }
    }
}

/// Covariate vector `z` for one node.
#[derive(Clone, Copy, Debug, Default)]
pub struct Covariates {
    /// Buffering level: consecutive chunks buffered from the playhead.
    pub buffering_level: u32,
    /// Join hour-of-day in `[0, 24)`.
    pub join_hour: f64,
}

impl CoxModel {
    /// The baseline hazard `h₀(t)` after `uptime_secs` of observed uptime.
    pub fn baseline_hazard(&self, uptime_secs: f64) -> f64 {
        let t = uptime_secs.max(0.0);
        self.base_hazard * (-t / self.hazard_decay_secs.max(1e-9)).exp()
    }

    /// Eq. 1: the probability the node stays in the network past `t`,
    /// clamped into `[0, 1]`.
    pub fn longevity_probability(&self, uptime_secs: f64, z: Covariates) -> f64 {
        let zq = (f64::from(z.buffering_level) / self.quality_scale.max(1e-9)).min(1.0);
        let zt = (z.join_hour / 24.0).rem_euclid(1.0);
        let risk = (self.beta_quality * zq + self.beta_join_time * zt).exp();
        (1.0 - self.baseline_hazard(uptime_secs) * risk).clamp(0.0, 1.0)
    }

    /// True if the node qualifies as **stable** at the given threshold
    /// (coordinator candidacy; the paper uses "a pre-defined threshold").
    pub fn is_stable(&self, uptime_secs: f64, z: Covariates, threshold: f64) -> bool {
        self.longevity_probability(uptime_secs, z) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(buf: u32, hour: f64) -> Covariates {
        Covariates {
            buffering_level: buf,
            join_hour: hour,
        }
    }

    #[test]
    fn probability_is_a_probability() {
        let m = CoxModel::default();
        for uptime in [0.0, 1.0, 60.0, 600.0] {
            for buf in [0u32, 5, 20, 100] {
                for hour in [0.0, 6.0, 12.0, 23.9] {
                    let p = m.longevity_probability(uptime, z(buf, hour));
                    assert!((0.0..=1.0).contains(&p), "p={p}");
                }
            }
        }
    }

    #[test]
    fn longer_uptime_means_higher_longevity() {
        let m = CoxModel::default();
        let p0 = m.longevity_probability(0.0, z(5, 12.0));
        let p1 = m.longevity_probability(60.0, z(5, 12.0));
        let p2 = m.longevity_probability(300.0, z(5, 12.0));
        assert!(p0 < p1 && p1 < p2, "{p0} {p1} {p2}");
    }

    #[test]
    fn better_buffering_means_higher_longevity() {
        let m = CoxModel::default();
        let poor = m.longevity_probability(30.0, z(0, 12.0));
        let good = m.longevity_probability(30.0, z(20, 12.0));
        assert!(good > poor, "good {good} !> poor {poor}");
    }

    #[test]
    fn join_hour_raises_hazard_with_positive_beta() {
        let m = CoxModel::default();
        let early = m.longevity_probability(30.0, z(5, 0.0));
        let late = m.longevity_probability(30.0, z(5, 23.0));
        assert!(
            late < early,
            "positive β_time: later join hour ⇒ higher hazard"
        );
    }

    #[test]
    fn baseline_hazard_decays() {
        let m = CoxModel::default();
        assert!(m.baseline_hazard(0.0) > m.baseline_hazard(100.0));
        assert!((m.baseline_hazard(0.0) - 0.8).abs() < 1e-12);
        assert!(m.baseline_hazard(1e9) < 1e-9);
        assert_eq!(m.baseline_hazard(-5.0), m.baseline_hazard(0.0), "clamped");
    }

    #[test]
    fn stability_threshold() {
        let m = CoxModel::default();
        // A fresh node with empty buffer is not stable at a strict
        // threshold; a long-lived well-buffered node is.
        assert!(!m.is_stable(0.0, z(0, 12.0), 0.9));
        assert!(m.is_stable(600.0, z(20, 12.0), 0.9));
    }

    #[test]
    fn quality_covariate_saturates() {
        let m = CoxModel::default();
        let p20 = m.longevity_probability(30.0, z(20, 12.0));
        let p200 = m.longevity_probability(30.0, z(200, 12.0));
        assert!((p20 - p200).abs() < 1e-12, "z_q capped at 1");
    }
}
