//! The data plane: the fetch loop, provider handling, chunk serving and
//! reception (Algorithm 1 lines 1–14).

use dco_dht::chord::FIND_TTL;
use dco_sim::prelude::*;
use dco_sim::smallvec::SmallVec;

use crate::chunk::ChunkSeq;

use super::{DcoMsg, DcoProtocol, DcoTimer, Role};

impl DcoProtocol {
    // ------------------------------------------------------------------
    // Fetch loop
    // ------------------------------------------------------------------

    /// Algorithm 1 lines 1–4: "if N needs to buffer the next chunk, generate
    /// the chunk ID and send Lookup(ID)". Runs every `fetch_tick`; issues up
    /// to the in-flight budget of lookups for the oldest missing chunks in
    /// the prefetch window.
    pub(super) fn handle_fetch_tick(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        if self.is_server(node) || self.state(node).is_none() {
            return;
        }
        let now = ctx.now();
        ctx.set_timer(node, self.cfg.fetch_tick, DcoTimer::FetchTick);
        let Some(latest) = self.namer.latest_at(now) else {
            return;
        };
        let st = self.state(node).expect("checked above");
        if latest < st.first_seq {
            return;
        }
        // Hierarchical clients without a coordinator yet cannot look up.
        if st.role == Role::Client && st.coordinator.is_none() {
            return;
        }
        // This session's broadcast comes first: the viewer fetches
        // `[session_seq, latest]` oldest-first, bounded by the prefetch
        // window ahead of its playhead (Eq. 2 when adaptive); history is
        // backfilled strictly below the live band's claim on the slots.
        let window = if self.cfg.adaptive_window {
            st.window.size_chunks()
        } else {
            self.cfg.window.base_chunks
        };
        let inflight = self.pending.len(node.index()) + self.lookups.len(node.index());
        let budget = self.cfg.max_inflight.saturating_sub(inflight);
        if budget == 0 {
            return;
        }
        let elapsed_chunks = (now.saturating_since(st.joined_at).as_micros()
            / self.cfg.chunk_interval.as_micros().max(1)) as u32;
        let playhead = ChunkSeq(st.session_seq.0.saturating_add(elapsed_chunks));
        let end = ChunkSeq(playhead.0.saturating_add(window).min(latest.0));
        let session_start = st.session_seq.max(st.first_seq);
        // The selection stays inline (in-flight budgets are single-digit)
        // and scans the buffer map lazily — this tick fires on every node
        // every `fetch_tick` and must not allocate on the common all-caught-
        // up path.
        let mut wanted: SmallVec<ChunkSeq, 8> = SmallVec::new();
        if end >= session_start {
            wanted.extend(
                st.buffer
                    .missing_in_iter(session_start, end)
                    .filter(|s| {
                        !self.pending.contains(node.index(), s.0)
                            && !self.lookups.contains(node.index(), s.0)
                    })
                    .take(budget),
            );
        }
        // At most ONE slot chases pre-session history. Empirically this is
        // load-bearing: with more, the slots that happen to be free while
        // the live band is momentarily in flight all dive into history,
        // every new live chunk then waits out their 2 s timeouts, and
        // live delivery collapses network-wide (87 % → 35 % received at
        // the paper's churn point).
        if wanted.len() < budget && session_start > st.first_seq {
            wanted.extend(
                st.buffer
                    .missing_in_iter(st.first_seq, ChunkSeq(session_start.0 - 1))
                    .filter(|s| {
                        !self.pending.contains(node.index(), s.0)
                            && !self.lookups.contains(node.index(), s.0)
                    })
                    .take(1),
            );
        }
        for &seq in wanted.iter() {
            self.start_lookup(node, seq, None, ctx);
        }
    }

    /// Issues a lookup for `seq`, optionally reporting `exclude` as dead.
    pub(super) fn start_lookup(
        &mut self,
        node: NodeId,
        seq: ChunkSeq,
        exclude: Option<NodeId>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let key = self.key_of(seq);
        let timeout = self.cfg.request_timeout;
        let Some((role, coordinator)) = self.state(node).map(|st| (st.role, st.coordinator)) else {
            return;
        };
        self.lookups.insert(node.index(), seq.0, ());
        ctx.set_timer(node, timeout, DcoTimer::LookupTimeout { seq });
        if role == Role::Client {
            if let Some(c) = coordinator {
                ctx.send_control(node, c, DcoMsg::ClientLookup { seq, exclude }, "dco.lookup");
            }
            return;
        }
        self.route_lookup(node, key, seq, node, exclude, FIND_TTL, false, ctx);
    }

    // ------------------------------------------------------------------
    // Provider answers and chunk transfer
    // ------------------------------------------------------------------

    /// A coordinator answered our lookup (Algorithm 1 lines 3–5).
    pub(super) fn handle_provider(
        &mut self,
        node: NodeId,
        seq: ChunkSeq,
        provider: Option<NodeId>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let timeout = self.cfg.request_timeout;
        let Some(st) = self.state_mut(node) else {
            return;
        };
        st.coord_failures = 0;
        let answer = match provider {
            Some(p) => Some((p, st.buffer.has(seq))),
            None => {
                // No provider known yet: count a fetch failure and retry on
                // the next tick (the window inflates per Eq. 2).
                st.window.record_failure();
                None
            }
        };
        self.lookups.remove(node.index(), seq.0);
        let Some((p, already_buffered)) = answer else {
            self.fetch_failures += 1;
            return;
        };
        if p == node || already_buffered || self.pending.contains(node.index(), seq.0) {
            return;
        }
        self.pending.insert(node.index(), seq.0, p.0);
        ctx.send_control(node, p, DcoMsg::ChunkRequest { seq }, "dco.request");
        ctx.set_timer(node, timeout, DcoTimer::RequestTimeout { seq, provider: p });
    }

    /// Provider side (Algorithm 1 lines 10–14): serve if the chunk is held
    /// and the upload pipe is not hopelessly backlogged, else say `Busy`.
    pub(super) fn handle_chunk_request(
        &mut self,
        node: NodeId,
        from: NodeId,
        seq: ChunkSeq,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let has = self
            .state(node)
            .map(|st| st.buffer.has(seq))
            .unwrap_or(false);
        if !has {
            // Stale index (e.g. this slot rejoined after churn with a fresh
            // buffer): tell the requester so it reports the corpse index.
            ctx.send_control(node, from, DcoMsg::NoChunk { seq }, "dco.busy");
            return;
        }
        if ctx.upload_backlog(node) <= self.cfg.busy_backlog {
            self.serves[node.index()] += 1;
            ctx.send_data(node, from, DcoMsg::ChunkData { seq }, self.cfg.chunk_size);
        } else {
            ctx.send_control(node, from, DcoMsg::Busy { seq }, "dco.busy");
        }
    }

    /// A chunk arrived (Algorithm 1 lines 6–8): buffer it, record the
    /// reception, and register as a provider.
    pub(super) fn handle_chunk_data(
        &mut self,
        node: NodeId,
        _from: NodeId,
        seq: ChunkSeq,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let now = ctx.now();
        if self.state(node).is_none() {
            return;
        }
        self.pending.remove(node.index(), seq.0);
        let st = self.state_mut(node).expect("checked above");
        if !st.buffer.insert(seq) {
            return; // duplicate
        }
        st.window.record_success();
        st.covariates.buffering_level = st.buffer.buffering_level(st.first_seq);
        self.obs.record_received(seq.0, node, now);
        self.start_insert(node, seq, ctx);
    }

    /// The provider had no spare bandwidth; retry through the coordinator
    /// on the next tick (its round-robin moves to another provider).
    pub(super) fn handle_busy(&mut self, node: NodeId, seq: ChunkSeq, ctx: &mut Ctx<'_, Self>) {
        let _ = ctx;
        if self.state(node).is_none() {
            return;
        }
        if self.pending.remove(node.index(), seq.0).is_some() {
            let st = self.state_mut(node).expect("checked above");
            st.window.record_failure();
            self.fetch_failures += 1;
        }
    }

    /// The provider's index was stale (it no longer holds the chunk):
    /// re-lookup immediately, reporting the stale holder so the coordinator
    /// drops its index.
    pub(super) fn handle_no_chunk(
        &mut self,
        node: NodeId,
        from: NodeId,
        seq: ChunkSeq,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let removed =
            self.state(node).is_some() && self.pending.remove(node.index(), seq.0).is_some();
        if removed {
            let st = self.state_mut(node).expect("checked above");
            st.window.record_failure();
            self.fetch_failures += 1;
            self.start_lookup(node, seq, Some(from), ctx);
        }
    }

    /// §III-B2: "it continuously reports its buffered chunks to the DHT" —
    /// a rotating re-registration that keeps indices fresh and repopulates
    /// a coordinator that inherited an arc after a failure. Active only
    /// with a dynamic ring; in the static no-churn setting a single report
    /// per chunk suffices (and matches the paper's overhead accounting).
    pub(super) fn handle_report_tick(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        if self.cfg.static_ring || self.state(node).is_none() {
            return;
        }
        ctx.set_timer(node, self.cfg.report_every, DcoTimer::ReportTick);
        let (held, cursor) = {
            let st = self.state(node).expect("checked above");
            let held: Vec<ChunkSeq> = st.buffer.iter_held().collect();
            (held, st.report_cursor)
        };
        if held.is_empty() {
            return;
        }
        // The server is the availability anchor ("the DHT always returns a
        // chunk provider"): it refreshes its whole catalogue within ~15
        // report periods, so a crashed coordinator's arc is repopulated
        // quickly. Peers rotate at the configured trickle.
        let batch = if self.is_server(node) {
            (self.cfg.n_chunks / 15 + 1).max(self.cfg.report_batch)
        } else {
            self.cfg.report_batch
        };
        let batch = batch.min(held.len() as u32);
        for k in 0..batch {
            let seq = held[((cursor + k) as usize) % held.len()];
            self.start_insert(node, seq, ctx);
        }
        if let Some(st) = self.state_mut(node) {
            st.report_cursor = st.report_cursor.wrapping_add(batch);
        }
    }

    /// The provider never answered: §III-B1b "Node Failure" — report the
    /// failure to the coordinator and receive a new provider in one routed
    /// message.
    pub(super) fn handle_request_timeout(
        &mut self,
        node: NodeId,
        seq: ChunkSeq,
        provider: NodeId,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let still_waiting =
            self.state(node).is_some() && self.pending.get(node.index(), seq.0) == Some(provider.0);
        if still_waiting {
            self.pending.remove(node.index(), seq.0);
            let st = self.state_mut(node).expect("checked above");
            st.window.record_failure();
            self.fetch_failures += 1;
            self.start_lookup(node, seq, Some(provider), ctx);
        }
    }

    /// A routed lookup vanished (coordinator churned mid-route). Retry on
    /// the next tick; hierarchical clients count these toward coordinator
    /// death detection.
    pub(super) fn handle_lookup_timeout(
        &mut self,
        node: NodeId,
        seq: ChunkSeq,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let report_dead = {
            if self.state(node).is_none() {
                return;
            }
            if self.lookups.remove(node.index(), seq.0).is_none() {
                return; // answered in time
            }
            let st = self.state_mut(node).expect("checked above");
            st.window.record_failure();
            if st.role == Role::Client {
                st.coord_failures += 1;
                if st.coord_failures >= 3 {
                    // §III-B1b: the client notices the coordinator failure
                    // and contacts the server for a new coordinator.
                    st.coord_failures = 0;
                    st.coordinator.take()
                } else {
                    None
                }
            } else {
                None
            }
        };
        self.fetch_failures += 1;
        if let Some(dead) = report_dead {
            ctx.send_control(
                node,
                NodeId(0),
                DcoMsg::CoordinatorLost { dead },
                "dco.attach",
            );
        }
    }
}
