//! The hierarchical tier (§III-B1): coordinator assignment, client
//! attachment, stability reporting and elastic promotion.

use dco_dht::chord::Outbox;
use dco_dht::hash::hash_node;
use dco_dht::id::Peer;
use dco_sim::prelude::*;

use crate::chunk::ChunkSeq;
use crate::index::ChunkIndex;

use super::{DcoMsg, DcoProtocol, DcoTimer, Role, TierMode};

impl DcoProtocol {
    /// Server side: a joiner asked for a coordinator — assign round-robin
    /// over the rotation ("the server provides one coordinator to each
    /// newly joined node in a round-robin manner in order to achieve load
    /// balance").
    pub(super) fn handle_attach_request(
        &mut self,
        node: NodeId,
        from: NodeId,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if !self.is_server(node) || self.coordinator_pool.is_empty() {
            return;
        }
        let c = self.coordinator_pool[self.assign_cursor % self.coordinator_pool.len()];
        self.assign_cursor = self.assign_cursor.wrapping_add(1);
        ctx.send_control(
            node,
            from,
            DcoMsg::AttachAssign { coordinator: c },
            "dco.attach",
        );
    }

    /// Client side: adopt the assigned coordinator and register with it.
    pub(super) fn handle_attach_assign(
        &mut self,
        node: NodeId,
        coordinator: NodeId,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let Some(st) = self.state_mut(node) else {
            return;
        };
        if st.role != Role::Client {
            return; // already promoted meanwhile
        }
        st.coordinator = Some(coordinator);
        st.coord_failures = 0;
        ctx.send_control(node, coordinator, DcoMsg::ClientAttach, "dco.attach");
    }

    /// Coordinator side: record a new client.
    pub(super) fn handle_client_attach(&mut self, node: NodeId, from: NodeId) {
        if self.state(node).is_some() && !self.clients.contains(node.index(), from.0) {
            self.clients.push_back(node.index(), from.0);
        }
    }

    /// Coordinator side: proxy a client's lookup into the ring with the
    /// client as origin (the answer goes straight back to the client).
    pub(super) fn handle_client_lookup(
        &mut self,
        node: NodeId,
        from: NodeId,
        seq: ChunkSeq,
        exclude: Option<NodeId>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if self.chord.state(node).is_none() {
            return; // not a ring member (stale client pointer)
        }
        let key = self.key_of(seq);
        self.route_lookup(
            node,
            key,
            seq,
            from,
            exclude,
            dco_dht::chord::FIND_TTL,
            false,
            ctx,
        );
    }

    /// Coordinator side: proxy a client's index registration.
    pub(super) fn handle_client_insert(
        &mut self,
        node: NodeId,
        index: ChunkIndex,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if self.chord.state(node).is_none() {
            return;
        }
        let key = self.key_of(index.seq);
        self.route_insert(node, key, index, dco_dht::chord::FIND_TTL, false, ctx);
    }

    /// Coordinator side: a client reported its longevity probability.
    pub(super) fn handle_stable_report(&mut self, node: NodeId, from: NodeId, longevity: f64) {
        let Some(st) = self.state_mut(node) else {
            return;
        };
        match st.stable_clients.iter_mut().find(|(n, _)| *n == from) {
            Some(entry) => entry.1 = longevity,
            None => st.stable_clients.push((from, longevity)),
        }
        st.stable_clients
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Periodic tier maintenance, both sides:
    ///
    /// * clients evaluate Eq. 1 and report when they cross the stability
    ///   threshold;
    /// * coordinators (and the server) check for overload and promote their
    ///   most stable client into the ring.
    pub(super) fn handle_tier_check(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let TierMode::Hierarchical {
            stable_threshold,
            overload_lookups,
            check_every,
        } = self.cfg.tier
        else {
            return;
        };
        ctx.set_timer(node, check_every, DcoTimer::TierCheck);
        let now = ctx.now();
        let cox = self.cfg.cox.clone();
        let Some(st) = self.state_mut(node) else {
            return;
        };
        match st.role {
            Role::Client => {
                let uptime = now.saturating_since(st.joined_at).as_secs_f64();
                let p = cox.longevity_probability(uptime, st.covariates);
                if p >= stable_threshold {
                    if let Some(c) = st.coordinator {
                        ctx.send_control(
                            node,
                            c,
                            DcoMsg::StableReport { longevity: p },
                            "dco.stable",
                        );
                    }
                }
            }
            Role::Coordinator | Role::Server => {
                let overloaded = st.lookups_handled > overload_lookups;
                st.lookups_handled = 0;
                if overloaded {
                    // Promote the most stable known client.
                    if let Some((candidate, _)) = st.stable_clients.first().copied() {
                        st.stable_clients.retain(|(n, _)| *n != candidate);
                        ctx.send_control(node, candidate, DcoMsg::Promote, "dco.promote");
                    }
                }
            }
        }
    }

    /// Client side: our coordinator invited us into the ring. Join Chord via
    /// the coordinator; the role flips to `Coordinator` when
    /// `JoinComplete` fires (see `drain`).
    pub(super) fn handle_promote(&mut self, node: NodeId, from: NodeId, ctx: &mut Ctx<'_, Self>) {
        let is_client = self
            .state(node)
            .map(|st| st.role == Role::Client)
            .unwrap_or(false);
        if !is_client || self.chord.state(node).is_some() {
            return;
        }
        let mut out = Outbox::new();
        self.chord
            .join(Peer::new(hash_node(node), node), from, &mut out);
        self.drain(out, ctx);
        ctx.set_timer(node, self.cfg.join_retry_every, DcoTimer::JoinRetry);
        ctx.set_timer(node, self.cfg.stabilize_every, DcoTimer::Stabilize);
        ctx.set_timer(node, self.cfg.fix_fingers_every, DcoTimer::FixFingers);
    }

    /// Server side: a promoted node finished joining the ring — add it to
    /// the assignment rotation.
    pub(super) fn handle_coordinator_announce(&mut self, node: NodeId, from: NodeId) {
        if self.is_server(node) && !self.coordinator_pool.contains(&from) {
            self.coordinator_pool.push(from);
        }
    }

    /// Server side: a client reported its coordinator dead. Drop it from
    /// the rotation and assign the client a replacement.
    pub(super) fn handle_coordinator_lost(
        &mut self,
        node: NodeId,
        from: NodeId,
        dead: NodeId,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if !self.is_server(node) {
            return;
        }
        self.coordinator_pool
            .retain(|&c| c != dead || c == NodeId(0));
        self.handle_attach_request(node, from, ctx);
    }
}
