//! Ring-side logic: membership, Chord glue, routed `Insert` / `Lookup` /
//! `Deregister`, coordinator duties and the server's chunk generation.

use dco_dht::chord::{ChordEvent, ChordMsg, Outbox, RouteStep, FIND_TTL};
use dco_dht::hash::hash_node;
use dco_dht::id::{ChordId, Peer};
use dco_sim::prelude::*;

use crate::chunk::ChunkSeq;
use crate::index::ChunkIndex;

use super::{DcoMsg, DcoProtocol, DcoTimer, NodeState, Role, TierMode};

/// Hub stream id for the per-node provider-selection RNG used in sharded
/// runs (any fixed value works; it only has to differ from other streams).
const SELECT_RNG_STREAM: u64 = 0x005E_1EC7;

impl DcoProtocol {
    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    pub(super) fn handle_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        // Viewers fetch the live broadcast from their join point first and
        // backfill the rest of the stream with leftover budget (so a
        // rejoining node repairs its earlier session's holes without
        // starving its playback).
        let first_seq = ChunkSeq(0);
        let session_seq = if self.is_server(node) {
            ChunkSeq(0)
        } else {
            self.namer.latest_at(now).unwrap_or(ChunkSeq(0))
        };
        let role = if self.is_server(node) {
            Role::Server
        } else {
            match self.cfg.tier {
                TierMode::Flat => Role::Coordinator,
                TierMode::Hierarchical { .. } => Role::Client,
            }
        };
        let down = ctx.download_rate(node);
        self.nodes[node.index()] = Some(NodeState::new(
            role,
            &self.cfg,
            down,
            now,
            first_seq,
            session_seq,
        ));
        // The pooled per-node tables outlive the NodeState; a (re)joining
        // node starts with empty segments.
        self.pending.clear(node.index());
        self.lookups.clear(node.index());
        self.clients.clear(node.index());

        if self.is_server(node) {
            if !self.cfg.static_ring {
                self.chord.bootstrap(Peer::new(hash_node(node), node));
                // The server is a full ring member: it stabilizes and fixes
                // fingers like everyone else, and keeps re-reporting its
                // chunks so availability survives coordinator failures.
                self.arm_ring_timers(node, ctx);
                ctx.set_timer(node, self.cfg.report_every, DcoTimer::ReportTick);
            }
            // Chunk 0 is generated immediately.
            ctx.set_timer(node, SimDuration::ZERO, DcoTimer::Generate);
            if matches!(self.cfg.tier, TierMode::Hierarchical { .. }) {
                let check = self.tier_check_period();
                ctx.set_timer(node, check, DcoTimer::TierCheck);
            }
            return;
        }

        match self.cfg.tier {
            TierMode::Flat => {
                if !self.cfg.static_ring {
                    let mut out = Outbox::new();
                    self.chord
                        .join(Peer::new(hash_node(node), node), NodeId(0), &mut out);
                    self.drain(out, ctx);
                    ctx.set_timer(node, self.cfg.join_retry_every, DcoTimer::JoinRetry);
                    self.arm_ring_timers(node, ctx);
                }
            }
            TierMode::Hierarchical { .. } => {
                ctx.send_control(node, NodeId(0), DcoMsg::AttachRequest, "dco.attach");
                let check = self.tier_check_period();
                ctx.set_timer(node, check, DcoTimer::TierCheck);
            }
        }
        ctx.set_timer(node, self.cfg.fetch_tick, DcoTimer::FetchTick);
        if !self.cfg.static_ring {
            ctx.set_timer(node, self.cfg.report_every, DcoTimer::ReportTick);
        }
    }

    pub(super) fn handle_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
        if self.is_server(node) {
            return; // the source never leaves in our experiments
        }
        if graceful {
            let is_ring_member = self.chord.state(node).is_some();
            // §III-B1b "Node Departure": deregister the chunks this node
            // reported, so coordinators stop advertising it.
            let held: Vec<ChunkSeq> = self
                .state(node)
                .map(|st| st.buffer.iter_held().collect())
                .unwrap_or_default();
            let coordinator = self.state(node).and_then(|st| st.coordinator);
            for seq in held {
                let key = self.key_of(seq);
                if is_ring_member {
                    self.route_deregister(node, key, node, FIND_TTL, false, ctx);
                } else if let Some(c) = coordinator {
                    ctx.send_control(
                        node,
                        c,
                        DcoMsg::Deregister {
                            key,
                            holder: node,
                            ttl: FIND_TTL,
                            fin: false,
                        },
                        "dco.dereg",
                    );
                }
            }
            if is_ring_member {
                // Hand the index table to the successor, then run the
                // standard Chord leave.
                let mut out = Outbox::new();
                let leave = self.chord.leave(node, &mut out);
                if let Some((_, Some(succ))) = leave {
                    let entries = self
                        .state_mut(node)
                        .map(|st| st.index.drain_all())
                        .unwrap_or_default();
                    if !entries.is_empty() {
                        ctx.send_control(
                            node,
                            succ.node,
                            DcoMsg::IndexHandover { entries },
                            "dco.handover",
                        );
                    }
                }
                self.drain(out, ctx);
            }
        } else {
            self.chord.fail(node);
        }
        self.nodes[node.index()] = None;
        self.pending.clear(node.index());
        self.lookups.clear(node.index());
        self.clients.clear(node.index());
    }

    fn arm_ring_timers(&self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(node, self.cfg.stabilize_every, DcoTimer::Stabilize);
        ctx.set_timer(node, self.cfg.fix_fingers_every, DcoTimer::FixFingers);
    }

    pub(super) fn tier_check_period(&self) -> SimDuration {
        match self.cfg.tier {
            TierMode::Hierarchical { check_every, .. } => check_every,
            TierMode::Flat => SimDuration::from_secs(10),
        }
    }

    // ------------------------------------------------------------------
    // Chord glue
    // ------------------------------------------------------------------

    pub(super) fn handle_chord(
        &mut self,
        node: NodeId,
        from: NodeId,
        msg: ChordMsg,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let mut out = Outbox::new();
        self.chord.handle(node, from, msg, &mut out);
        self.drain(out, ctx);
    }

    pub(super) fn drain(&mut self, out: Outbox, ctx: &mut Ctx<'_, Self>) {
        for s in out.sends {
            ctx.send_control(s.from, s.to, DcoMsg::Chord(s.msg), s.tag);
        }
        for e in out.events {
            match e {
                ChordEvent::JoinComplete { node } => {
                    // A promoted client becomes a full coordinator once its
                    // ring join completes (§III-B1b "Node Join").
                    let was_client = self
                        .state(node)
                        .map(|st| st.role == Role::Client)
                        .unwrap_or(false);
                    if was_client {
                        if let Some(st) = self.state_mut(node) {
                            st.role = Role::Coordinator;
                            st.coordinator = None;
                        }
                        ctx.send_control(
                            node,
                            NodeId(0),
                            DcoMsg::CoordinatorAnnounce,
                            "dco.promote",
                        );
                    }
                }
                ChordEvent::PredChanged { node, new_pred } => {
                    // Ownership split: indices outside (new_pred, me] move.
                    let me_id = match self.chord.state(node) {
                        Some(st) => st.me().id,
                        None => continue,
                    };
                    let entries = match self.state_mut(node) {
                        Some(st) => st.index.extract_range(me_id, new_pred.id),
                        None => continue,
                    };
                    if !entries.is_empty() {
                        ctx.send_control(
                            node,
                            new_pred.node,
                            DcoMsg::IndexHandover { entries },
                            "dco.handover",
                        );
                    }
                }
                ChordEvent::AppLookupDone { .. } | ChordEvent::SuccessorDeclaredDead { .. } => {}
            }
        }
    }

    pub(super) fn handle_stabilize_tick(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        if self.cfg.static_ring || self.chord.state(node).is_none() {
            return;
        }
        let mut out = Outbox::new();
        self.chord.tick_stabilize(node, &mut out);
        self.drain(out, ctx);
        ctx.set_timer(node, self.cfg.stabilize_every, DcoTimer::Stabilize);
    }

    pub(super) fn handle_fix_fingers_tick(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        if self.cfg.static_ring || self.chord.state(node).is_none() {
            return;
        }
        let mut out = Outbox::new();
        self.chord.tick_fix_fingers(node, &mut out);
        self.drain(out, ctx);
        ctx.set_timer(node, self.cfg.fix_fingers_every, DcoTimer::FixFingers);
    }

    pub(super) fn handle_join_retry(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let joined = self
            .chord
            .state(node)
            .map(|s| s.is_joined())
            .unwrap_or(true);
        if joined {
            return;
        }
        let mut out = Outbox::new();
        self.chord.retry_join(node, NodeId(0), &mut out);
        self.drain(out, ctx);
        ctx.set_timer(node, self.cfg.join_retry_every, DcoTimer::JoinRetry);
    }

    // ------------------------------------------------------------------
    // The server's chunk production (§III-A1)
    // ------------------------------------------------------------------

    pub(super) fn handle_generate(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let seq = self.next_seq;
        if seq.0 >= self.cfg.n_chunks {
            return;
        }
        self.next_seq = seq.next();
        let now = ctx.now();
        self.obs.record_generated(seq.0, now);
        // The audience of this chunk: every peer alive at generation time.
        for i in 1..self.cfg.n_nodes {
            if ctx.is_alive(NodeId(i)) {
                self.obs.mark_expected(seq.0, NodeId(i));
            }
        }
        if let Some(st) = self.state_mut(node) {
            st.buffer.insert(seq);
        }
        // Register the server as the chunk's first provider.
        self.start_insert(node, seq, ctx);
        if self.next_seq.0 < self.cfg.n_chunks {
            ctx.set_timer(node, self.cfg.chunk_interval, DcoTimer::Generate);
        }
    }

    // ------------------------------------------------------------------
    // Routed DHT application messages
    // ------------------------------------------------------------------

    /// Registers `node` as a provider of `seq` (Algorithm 1 line 7:
    /// "Register to the coordinator as a chunk provider").
    pub(super) fn start_insert(&mut self, node: NodeId, seq: ChunkSeq, ctx: &mut Ctx<'_, Self>) {
        let held = self
            .state(node)
            .map(|st| st.buffer.held_count() as u32)
            .unwrap_or(0);
        let index = ChunkIndex {
            seq,
            holder: node,
            avail: ctx.available_upload(node, self.cfg.avail_horizon),
            held_count: held,
        };
        let key = self.key_of(seq);
        let is_client = self
            .state(node)
            .map(|st| st.role == Role::Client)
            .unwrap_or(false);
        if is_client {
            if let Some(c) = self.state(node).and_then(|st| st.coordinator) {
                ctx.send_control(node, c, DcoMsg::ClientInsert { index }, "dco.insert");
            }
            return;
        }
        self.route_insert(node, key, index, FIND_TTL, false, ctx);
    }

    pub(super) fn route_insert(
        &mut self,
        at: NodeId,
        key: ChordId,
        index: ChunkIndex,
        ttl: u8,
        fin: bool,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if fin {
            self.deliver_insert(at, key, index);
            return;
        }
        match self.chord.route_next_cached(at, key) {
            Some(RouteStep::Deliver) | None => self.deliver_insert(at, key, index),
            Some(RouteStep::DeliverAt(p)) => {
                ctx.send_control(
                    at,
                    p,
                    DcoMsg::Insert {
                        key,
                        index,
                        ttl: 0,
                        fin: true,
                    },
                    "dco.insert",
                );
            }
            Some(RouteStep::Forward(p)) => {
                if ttl > 0 {
                    ctx.send_control(
                        at,
                        p,
                        DcoMsg::Insert {
                            key,
                            index,
                            ttl: ttl - 1,
                            fin: false,
                        },
                        "dco.insert",
                    );
                }
            }
        }
    }

    fn deliver_insert(&mut self, at: NodeId, key: ChordId, index: ChunkIndex) {
        if let Some(st) = self.state_mut(at) {
            st.index.register(key, index);
        }
    }

    pub(super) fn route_deregister(
        &mut self,
        at: NodeId,
        key: ChordId,
        holder: NodeId,
        ttl: u8,
        fin: bool,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if fin {
            if let Some(st) = self.state_mut(at) {
                st.index.remove_holder(key, holder);
            }
            return;
        }
        match self.chord.route_next_cached(at, key) {
            Some(RouteStep::Deliver) | None => {
                if let Some(st) = self.state_mut(at) {
                    st.index.remove_holder(key, holder);
                }
            }
            Some(RouteStep::DeliverAt(p)) => {
                ctx.send_control(
                    at,
                    p,
                    DcoMsg::Deregister {
                        key,
                        holder,
                        ttl: 0,
                        fin: true,
                    },
                    "dco.dereg",
                );
            }
            Some(RouteStep::Forward(p)) => {
                if ttl > 0 {
                    ctx.send_control(
                        at,
                        p,
                        DcoMsg::Deregister {
                            key,
                            holder,
                            ttl: ttl - 1,
                            fin: false,
                        },
                        "dco.dereg",
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn route_lookup(
        &mut self,
        at: NodeId,
        key: ChordId,
        seq: ChunkSeq,
        origin: NodeId,
        exclude: Option<NodeId>,
        ttl: u8,
        fin: bool,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if fin {
            self.deliver_lookup(at, key, seq, origin, exclude, ctx);
            return;
        }
        match self.chord.route_next_cached(at, key) {
            Some(RouteStep::Deliver) | None => {
                self.deliver_lookup(at, key, seq, origin, exclude, ctx)
            }
            Some(RouteStep::DeliverAt(p)) => {
                ctx.send_control(
                    at,
                    p,
                    DcoMsg::Lookup {
                        key,
                        seq,
                        origin,
                        exclude,
                        ttl: 0,
                        fin: true,
                    },
                    "dco.lookup",
                );
            }
            Some(RouteStep::Forward(p)) => {
                if ttl > 0 {
                    ctx.send_control(
                        at,
                        p,
                        DcoMsg::Lookup {
                            key,
                            seq,
                            origin,
                            exclude,
                            ttl: ttl - 1,
                            fin: false,
                        },
                        "dco.lookup",
                    );
                }
            }
        }
    }

    /// Coordinator-side lookup handling (Algorithm 1 lines 17–19).
    fn deliver_lookup(
        &mut self,
        at: NodeId,
        key: ChordId,
        seq: ChunkSeq,
        origin: NodeId,
        exclude: Option<NodeId>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let floor = self.cfg.stream_rate;
        let policy = self.cfg.select_policy;
        self.lookups_delivered += 1;
        let Some(st) = self.state_mut(at) else { return };
        st.lookups_handled += 1;
        // Failure report: drop the dead provider's index first.
        if let Some(dead) = exclude {
            st.index.remove_holder(key, dead);
        }
        // Stack-allocated exclusion set: it is always {origin} or
        // {origin, dead} — this runs once per delivered lookup.
        let excluded_buf = [origin, exclude.unwrap_or(origin)];
        let excluded: &[NodeId] = &excluded_buf[..1 + usize::from(exclude.is_some())];
        let mut provider = {
            // Shared stream normally (the pinned trace digests consume
            // it); a private per-node stream when sharded, where the
            // shared stream is not shard-invariant. The paper's
            // sufficient-bandwidth policy never actually draws.
            let rng = if ctx.is_sharded() {
                st.select_rng
                    .get_or_insert_with(|| ctx.hub().node_rng(SELECT_RNG_STREAM, at))
            } else {
                ctx.rng()
            };
            st.index
                .select(key, floor, policy, excluded, rng)
                .map(|idx| idx.holder)
        };
        if provider.is_none() {
            self.provider_none += 1;
            // §III-B2: "A chunk request in DCO is always answered with a
            // chunk provider." The channel server holds every chunk by
            // construction, so an empty index entry (e.g. freshly inherited
            // after a coordinator failure, before re-reports arrive) falls
            // back to the source.
            if origin != NodeId(0) && !excluded.contains(&NodeId(0)) {
                provider = Some(NodeId(0));
            }
        }
        if origin == at {
            // The coordinator asked about a chunk it owns itself.
            self.handle_provider(at, seq, provider, ctx);
        } else {
            ctx.send_control(
                at,
                origin,
                DcoMsg::Provider { seq, provider },
                "dco.provider",
            );
        }
    }
}
