//! End-to-end protocol tests on small networks.

use dco_sim::prelude::*;

use crate::chunk::ChunkSeq;
use crate::proto::{DcoConfig, DcoProtocol, Role, TierMode};

fn build(cfg: DcoConfig, seed: u64) -> Simulator<DcoProtocol> {
    let n = cfg.n_nodes;
    let mut sim = Simulator::new(DcoProtocol::new(cfg), NetConfig::default(), seed);
    for i in 0..n {
        let caps = if i == 0 {
            NodeCaps::server_default()
        } else {
            NodeCaps::peer_default()
        };
        let id = sim.add_node(caps);
        sim.schedule_join(id, SimTime::ZERO);
    }
    sim
}

#[test]
fn static_flat_delivers_every_chunk() {
    let cfg = DcoConfig::paper_default(16, 10);
    let mut sim = build(cfg, 42);
    sim.run_until(SimTime::from_secs(60));
    let p = sim.protocol();
    // 15 peers × 10 chunks, all expected and all received.
    assert_eq!(p.obs.expected_pairs(), 150);
    assert_eq!(
        p.obs.received_pairs(),
        150,
        "missing {:?}",
        (0..10u32)
            .map(|s| (s, p.obs.fill_ratio(s, SimTime::from_secs(60))))
            .collect::<Vec<_>>()
    );
    // Reception spreads the provider set: the server is not the only one
    // who ever served a chunk.
    let peer_serves: u64 = p.serves[1..].iter().sum();
    assert!(peer_serves > 0, "peers relayed chunks");
    // The overhead counters carry the Algorithm-1 message classes.
    for tag in ["dco.lookup", "dco.provider", "dco.request", "dco.insert"] {
        assert!(sim.counters().tagged(tag) > 0, "no {tag} messages counted");
    }
    // Chunks travelled as data, not control.
    assert!(sim.counters().data_total() >= 150);
}

#[test]
fn mesh_delay_is_bounded_in_small_static_network() {
    let cfg = DcoConfig::paper_default(16, 10);
    let mut sim = build(cfg, 7);
    sim.run_until(SimTime::from_secs(60));
    let p = sim.protocol();
    let delay = p.obs.mean_mesh_delay(SimTime::from_secs(60));
    assert!(delay > 0.0);
    assert!(delay < 20.0, "mean mesh delay {delay}s is implausible");
}

#[test]
fn determinism_same_seed_same_run() {
    let run = |seed: u64| {
        let mut sim = build(DcoConfig::paper_default(12, 6), seed);
        sim.run_until(SimTime::from_secs(40));
        (
            sim.counters().control_total(),
            sim.counters().data_total(),
            sim.protocol().obs.received_pairs(),
        )
    };
    assert_eq!(run(5), run(5));
    // (Different seeds may legitimately coincide here: a static small run
    // only consults the RNG for provider tie-breaks.)
}

#[test]
fn provider_failure_recovers_via_fail_report() {
    // Dynamic ring: static mode has no repair and is only valid churn-free.
    let cfg = DcoConfig::paper_churn(16, 12);
    let mut sim = build(cfg, 11);
    // Let the stream start, then kill a peer abruptly mid-stream.
    sim.run_until(SimTime::from_secs(4));
    sim.schedule_leave(NodeId(5), SimTime::from_secs(5), false);
    sim.run_until(SimTime::from_secs(80));
    let p = sim.protocol();
    // Every pair expected of the *surviving* audience must arrive. Node 5
    // was expected for early chunks; those pairs may be lost — everyone
    // else must be complete.
    for seq in 0..12u32 {
        for node in 1..16u32 {
            if node == 5 {
                continue;
            }
            if p.obs.is_expected(seq, NodeId(node)) {
                assert!(
                    p.obs.received_at(seq, NodeId(node)).is_some(),
                    "N{node} missing chunk {seq}"
                );
            }
        }
    }
}

#[test]
fn graceful_leave_deregisters_indices() {
    let cfg = DcoConfig::paper_churn(12, 8);
    let mut sim = build(cfg, 3);
    sim.run_until(SimTime::from_secs(6));
    sim.schedule_leave(NodeId(4), SimTime::from_secs(7), true);
    sim.run_until(SimTime::from_secs(9));
    // After the graceful leave no coordinator should still advertise N4.
    let p = sim.protocol();
    for node in 0..12u32 {
        if node == 4 {
            continue;
        }
        for seq in 0..8u32 {
            let key = p.namer().id_of(ChunkSeq(seq));
            if let Some(st) = p.nodes[node as usize].as_ref() {
                assert!(
                    !st.index
                        .providers(key)
                        .iter()
                        .any(|e| e.holder == NodeId(4)),
                    "N{node} still advertises N4 for chunk {seq}"
                );
            }
        }
    }
    assert!(
        sim.counters().tagged("dco.dereg") > 0,
        "deregistrations sent"
    );
    sim.run_until(SimTime::from_secs(60));
    // Every surviving audience member completes (the leaver's own
    // expected-but-unreceived pairs are the only legitimate misses).
    let p = sim.protocol();
    for seq in 0..8u32 {
        for node in 1..12u32 {
            if node != 4 && p.obs.is_expected(seq, NodeId(node)) {
                assert!(
                    p.obs.received_at(seq, NodeId(node)).is_some(),
                    "N{node} missing chunk {seq}"
                );
            }
        }
    }
}

#[test]
fn churn_mode_sustains_high_delivery() {
    let mut cfg = DcoConfig::paper_churn(24, 30);
    cfg.neighbors = 8;
    let mut sim = build(cfg, 9);
    // Moderate abrupt churn over the stream.
    for (i, t) in [(3u32, 8u64), (7, 12), (11, 16), (15, 20)] {
        sim.schedule_leave(NodeId(i), SimTime::from_secs(t), false);
        sim.schedule_join(NodeId(i), SimTime::from_secs(t + 10));
    }
    sim.run_until(SimTime::from_secs(120));
    let pct = sim
        .protocol()
        .obs
        .received_percentage(SimTime::from_secs(120));
    assert!(pct > 85.0, "received only {pct:.1}% under churn");
}

#[test]
fn dynamic_ring_forms_without_churn() {
    let cfg = DcoConfig::paper_churn(20, 10); // dynamic ring, no leaves
    let mut sim = build(cfg, 13);
    sim.run_until(SimTime::from_secs(90));
    let p = sim.protocol();
    assert_eq!(p.chord().member_count(), 20, "all nodes joined the ring");
    let pct = p.obs.received_percentage(SimTime::from_secs(90));
    assert!(pct > 99.0, "only {pct:.1}% received");
}

#[test]
fn hierarchical_clients_attach_and_stream() {
    let mut cfg = DcoConfig::paper_default(16, 10);
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.99, // nobody promotes in this test
        overload_lookups: 10_000,
        check_every: SimDuration::from_secs(5),
    };
    let mut sim = build(cfg, 21);
    sim.run_until(SimTime::from_secs(80));
    let p = sim.protocol();
    // Only the server is a ring member; everyone else is a client of it.
    assert_eq!(p.chord().member_count(), 1);
    for i in 1..16u32 {
        assert_eq!(p.role_of(NodeId(i)), Some(Role::Client));
    }
    let pct = p.obs.received_percentage(SimTime::from_secs(80));
    assert!(
        pct > 99.0,
        "clients streamed through the coordinator: {pct:.1}%"
    );
}

#[test]
fn hierarchical_overload_promotes_stable_clients() {
    let mut cfg = DcoConfig::paper_default(20, 40);
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.2, // easy bar
        overload_lookups: 5,   // overload immediately
        check_every: SimDuration::from_secs(2),
    };
    let mut sim = build(cfg, 33);
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    assert!(
        p.coordinator_count() > 1,
        "no promotion happened (pool = {})",
        p.coordinator_count()
    );
    assert!(
        p.chord().member_count() > 1,
        "promoted nodes joined the ring"
    );
    let pct = p.obs.received_percentage(SimTime::from_secs(120));
    assert!(pct > 97.0, "delivery held through promotions: {pct:.1}%");
}

#[test]
fn adaptive_window_reacts_to_failures() {
    // Indirect end-to-end check: a run with fetch failures must widen some
    // node's window beyond the base.
    let cfg = DcoConfig::paper_churn(10, 20);
    let mut sim = build(cfg, 17);
    sim.schedule_leave(NodeId(3), SimTime::from_secs(6), false);
    sim.run_until(SimTime::from_secs(90));
    let p = sim.protocol();
    assert!(
        p.fetch_failures > 0,
        "the kill must cause at least one timeout"
    );
    assert!(p.obs.received_percentage(SimTime::from_secs(90)) > 95.0);
}

#[test]
fn hierarchical_coordinator_failure_reattaches_clients() {
    // Promote aggressively, then kill a promoted coordinator; its clients
    // must detect the silence, report CoordinatorLost to the server, get a
    // replacement, and keep streaming.
    let mut cfg = DcoConfig::paper_default(20, 60);
    cfg.static_ring = false; // ring must be repairable
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.2,
        overload_lookups: 5,
        check_every: SimDuration::from_secs(2),
    };
    let mut sim = build(cfg, 51);
    sim.run_until(SimTime::from_secs(30));
    let promoted: Vec<NodeId> = {
        let p = sim.protocol();
        (1..20u32)
            .map(NodeId)
            .filter(|&n| p.role_of(n) == Some(Role::Coordinator))
            .collect()
    };
    assert!(
        !promoted.is_empty(),
        "someone must have been promoted by t=30"
    );
    let victim = promoted[0];
    sim.schedule_leave(victim, SimTime::from_secs(31), false);
    sim.run_until(SimTime::from_secs(140));
    let p = sim.protocol();
    // No live client still points at the corpse.
    for n in 1..20u32 {
        let n = NodeId(n);
        if n == victim {
            continue;
        }
        if p.role_of(n) == Some(Role::Client) {
            assert_ne!(
                p.nodes[n.index()].as_ref().unwrap().coordinator,
                Some(victim),
                "{n} still attached to the dead coordinator"
            );
        }
    }
    // The stream still flowed for the survivors.
    let pct = p.obs.received_percentage(SimTime::from_secs(140));
    assert!(
        pct > 90.0,
        "delivery collapsed after coordinator failure: {pct:.1}%"
    );
}

#[test]
fn session_anchoring_prioritizes_the_live_edge() {
    // A node that rejoins late must receive new chunks promptly even
    // though it also backfills its history.
    let cfg = DcoConfig::paper_churn(16, 40);
    let mut sim = build(cfg, 53);
    sim.schedule_leave(NodeId(6), SimTime::from_secs(5), false);
    sim.schedule_join(NodeId(6), SimTime::from_secs(20));
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    // Live chunks after the rejoin arrived within a tight bound…
    for seq in 25..35u32 {
        let gen = p.obs.generated_at(seq).unwrap();
        let got = p
            .obs
            .received_at(seq, NodeId(6))
            .expect("live chunk fetched");
        assert!(
            got.saturating_since(gen) < SimDuration::from_secs(30),
            "chunk {seq} took {:?}",
            got.saturating_since(gen)
        );
    }
    // …and at least part of the missed history was backfilled too.
    let backfilled = (5..20u32)
        .filter(|&s| p.obs.received_at(s, NodeId(6)).is_some())
        .count();
    assert!(backfilled > 0, "no history was repaired");
}

#[test]
fn mass_client_departure_does_not_wedge_the_coordinator() {
    // Hierarchical tier, single coordinator (the server). More than half
    // of its clients vanish abruptly in the same instant; the coordinator's
    // client roster and stable-client book must flush, and the surviving
    // clients must keep streaming to completion.
    let mut cfg = DcoConfig::paper_default(16, 30);
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.2,    // everyone reports, so the book fills up
        overload_lookups: 10_000, // but nobody is promoted
        check_every: SimDuration::from_secs(2),
    };
    let mut sim = build(cfg, 71);
    sim.run_until(SimTime::from_secs(20));
    // Kill 9 of the 15 clients at the same instant.
    let dead: Vec<NodeId> = (1..10u32).map(NodeId).collect();
    for &n in &dead {
        sim.schedule_leave(n, SimTime::from_secs(21), false);
    }
    sim.run_until(SimTime::from_secs(120));
    let p = sim.protocol();
    // Survivors completed the stream through the (still sole) coordinator.
    for seq in 0..30u32 {
        for node in 10..16u32 {
            if p.obs.is_expected(seq, NodeId(node)) {
                assert!(
                    p.obs.received_at(seq, NodeId(node)).is_some(),
                    "survivor N{node} missing chunk {seq}"
                );
            }
        }
    }
    assert_eq!(p.chord().member_count(), 1, "ring membership unchanged");
}

#[test]
fn departure_mid_promotion_recovers() {
    // A coordinator under load promotes its most stable client — and that
    // client dies abruptly right as the promotion is in flight, before its
    // Chord join can complete. The system must not wedge: later tier
    // checks promote someone else and delivery holds.
    let mut cfg = DcoConfig::paper_default(20, 60);
    cfg.static_ring = false;
    cfg.tier = TierMode::Hierarchical {
        stable_threshold: 0.2,
        overload_lookups: 5, // overload immediately
        check_every: SimDuration::from_secs(2),
    };
    let mut sim = build(cfg, 83);
    // Tier checks fire every 2 s from t=0; the first promotions go out in
    // the first few checks. Kill a swath of early (lowest-id, longest-lived
    // and thus most-stable-ranked) clients right across that window so at
    // least one Promote lands on a node that is dead or dying.
    for (i, n) in (2..7u32).enumerate() {
        sim.schedule_leave(
            NodeId(n),
            SimTime::from_millis(4500 + 250 * i as u64),
            false,
        );
    }
    sim.run_until(SimTime::from_secs(140));
    let p = sim.protocol();
    // Someone (still alive) made it into the ring regardless.
    assert!(
        p.chord().member_count() > 1,
        "no promotion survived the churn window"
    );
    // No dead node lingers in the server's assignment rotation with
    // clients attached to it: every live client's coordinator is live.
    for n in 7..20u32 {
        let n = NodeId(n);
        if p.role_of(n) == Some(Role::Client) {
            if let Some(c) = p.nodes[n.index()].as_ref().unwrap().coordinator {
                assert!(
                    p.nodes[c.index()].is_some(),
                    "live client {n} attached to dead coordinator {c}"
                );
            }
        }
    }
    // Delivery held for the nodes that lived through it.
    let pct = p.obs.received_percentage(SimTime::from_secs(140));
    assert!(pct > 85.0, "delivery collapsed: {pct:.1}%");
}

#[test]
fn rejoin_collides_with_stale_pending_state() {
    // A node leaves abruptly mid-stream and rejoins shortly after, while
    // peers still hold its corpse in suspicion tombstones, pending-fetch
    // tables and provider indices from the previous life. The reused node
    // slot must come back clean: the rejoined node re-attaches, catches
    // the live edge, and ends the run fully streaming.
    let cfg = DcoConfig::paper_churn(14, 40);
    let mut sim = build(cfg, 97);
    sim.run_until(SimTime::from_secs(10));
    // Abrupt death at 11 s, rejoin 4 s later — well inside the suspicion
    // TTL, so the rejoin collides with every stale entry peers still hold.
    sim.schedule_leave(NodeId(5), SimTime::from_secs(11), false);
    sim.schedule_join(NodeId(5), SimTime::from_secs(15));
    sim.run_until(SimTime::from_secs(130));
    let p = sim.protocol();
    // The second tenancy is live and streaming: chunks generated after
    // the rejoin settled all arrived.
    for seq in 25..40u32 {
        if p.obs.is_expected(seq, NodeId(5)) {
            assert!(
                p.obs.received_at(seq, NodeId(5)).is_some(),
                "rejoined node missing live chunk {seq}"
            );
        }
    }
    // And the rest of the audience was not damaged by the collision.
    for seq in 0..40u32 {
        for node in 1..14u32 {
            if node == 5 {
                continue;
            }
            if p.obs.is_expected(seq, NodeId(node)) {
                assert!(
                    p.obs.received_at(seq, NodeId(node)).is_some(),
                    "N{node} missing chunk {seq}"
                );
            }
        }
    }
}
