//! The DCO protocol (§III, Algorithm 1) as a `dco-sim` protocol.
//!
//! One [`DcoProtocol`] value holds every node's state:
//!
//! * the **server** (node 0) slices the stream into chunks, registers
//!   itself as the first provider of each, and bootstraps the DHT;
//! * **coordinators** are DHT ring members; each owns an [`IndexTable`]
//!   holding the chunk indices whose IDs fall in its arc, answers
//!   `Lookup(ID)` with a provider of sufficient bandwidth, and absorbs
//!   `Insert(ID, index)` registrations;
//! * **clients** (hierarchical mode only) attach to a coordinator assigned
//!   round-robin by the server and proxy their lookups/inserts through it;
//!   stable clients get promoted into the ring when their coordinator
//!   overloads.
//!
//! In the **flat** mode — the configuration §IV uses for every figure
//! ("to make results comparable, all nodes form a DHT in DCO") — every node
//! is a coordinator.
//!
//! The data plane is exactly Algorithm 1: a node missing a chunk routes
//! `Lookup(hash(name))` through the ring; the owning coordinator replies
//! with a provider; the node requests the chunk from the provider; on
//! reception it registers itself as a new provider via `Insert`. Failures
//! (provider dead or busy) are reported back to the coordinator, which
//! drops the stale index and answers with an alternative.

mod fetch;
mod hier;
mod ring;
#[cfg(test)]
mod tests;

use dco_dht::chord::{ChordConfig, ChordMsg, ChordNet};
use dco_dht::hash::hash_node;
use dco_dht::id::{ChordId, Peer};
use dco_metrics::StreamObserver;
use dco_sim::prelude::*;
use dco_sim::rng::SimRng;
use dco_sim::slab::{ListSlab, SlotTable};
use dco_sim::smallvec::SmallVec;

use crate::buffer::BufferMap;
use crate::chunk::{ChunkNamer, ChunkSeq};
use crate::index::{ChunkIndex, IndexTable, SelectPolicy};
use crate::longevity::{Covariates, CoxModel};
use crate::window::{PrefetchWindow, WindowConfig};

/// Coordinator-tier organization.
#[derive(Clone, Debug)]
pub enum TierMode {
    /// Every node joins the DHT (the paper's §IV evaluation setting).
    Flat,
    /// §III's hierarchical infrastructure: clients attach to coordinators;
    /// stable clients are promoted when a coordinator overloads.
    Hierarchical {
        /// Longevity-probability threshold for coordinator candidacy.
        stable_threshold: f64,
        /// Lookups handled per check interval that mark a coordinator
        /// overloaded.
        overload_lookups: u32,
        /// Overload / stability check period.
        check_every: SimDuration,
    },
}

/// DCO configuration.
#[derive(Clone, Debug)]
pub struct DcoConfig {
    /// Total nodes including the server.
    pub n_nodes: u32,
    /// Chunks the server emits.
    pub n_chunks: u32,
    /// Chunk payload size.
    pub chunk_size: SizeBits,
    /// Chunk emission interval.
    pub chunk_interval: SimDuration,
    /// Stream rate: the bandwidth floor a provider must clear.
    pub stream_rate: Kbps,
    /// Neighbor count = Chord successor-list length (§IV sweeps 8–64).
    pub neighbors: usize,
    /// Provider selection policy.
    pub select_policy: SelectPolicy,
    /// Fetch-loop period.
    pub fetch_tick: SimDuration,
    /// Chunk request / lookup timeout.
    pub request_timeout: SimDuration,
    /// Maximum concurrent fetches (lookups + chunk requests) per node.
    pub max_inflight: usize,
    /// Build a converged ring up front and skip maintenance timers — valid
    /// only without churn (matches the paper's static figures).
    pub static_ring: bool,
    /// Stabilize period (dynamic ring).
    pub stabilize_every: SimDuration,
    /// Finger-refresh period (dynamic ring).
    pub fix_fingers_every: SimDuration,
    /// Join retry period (dynamic ring).
    pub join_retry_every: SimDuration,
    /// Tier organization.
    pub tier: TierMode,
    /// Prefetch-window parameters (Eq. 2).
    pub window: WindowConfig,
    /// Apply Eq. 2 adaptation (ablation switch).
    pub adaptive_window: bool,
    /// Cox longevity model (Eq. 1) for stable-node identification.
    pub cox: CoxModel,
    /// Averaging horizon for advertised available bandwidth.
    pub avail_horizon: SimDuration,
    /// Upload backlog beyond which a provider answers `Busy`.
    pub busy_backlog: SimDuration,
    /// Period of the continuous chunk-report refresh (§III-B: "it
    /// continuously reports its buffered chunks to the DHT"). Only active
    /// with a dynamic ring — it is what repopulates a new coordinator's
    /// index table after its predecessor failed.
    pub report_every: SimDuration,
    /// Held chunks re-registered per report tick (rotating).
    pub report_batch: u32,
}

impl DcoConfig {
    /// The paper's evaluation defaults for `n_nodes` nodes and `n_chunks`
    /// chunks: flat tier, 300 kbps stream, sufficient-bandwidth selection.
    pub fn paper_default(n_nodes: u32, n_chunks: u32) -> Self {
        DcoConfig {
            n_nodes,
            n_chunks,
            chunk_size: SizeBits::from_kilobits(300),
            chunk_interval: SimDuration::from_secs(1),
            stream_rate: Kbps(300),
            neighbors: 32,
            select_policy: SelectPolicy::SufficientBandwidth,
            fetch_tick: SimDuration::from_millis(250),
            request_timeout: SimDuration::from_millis(2_000),
            max_inflight: 4,
            static_ring: true,
            stabilize_every: SimDuration::from_millis(500),
            fix_fingers_every: SimDuration::from_millis(500),
            join_retry_every: SimDuration::from_secs(2),
            tier: TierMode::Flat,
            window: WindowConfig::default(),
            adaptive_window: true,
            cox: CoxModel::default(),
            avail_horizon: SimDuration::from_secs(1),
            busy_backlog: SimDuration::from_millis(1_500),
            report_every: SimDuration::from_secs(1),
            report_batch: 3,
        }
    }

    /// The churn variant (Figs. 11–12): dynamic ring with maintenance.
    pub fn paper_churn(n_nodes: u32, n_chunks: u32) -> Self {
        DcoConfig {
            static_ring: false,
            ..DcoConfig::paper_default(n_nodes, n_chunks)
        }
    }
}

/// DCO wire messages.
#[derive(Clone, Debug)]
pub enum DcoMsg {
    /// Chord ring maintenance.
    Chord(ChordMsg),
    /// `Insert(ID, index)` travelling toward the chunk's coordinator.
    Insert {
        /// Chunk ring ID.
        key: ChordId,
        /// The index being registered.
        index: ChunkIndex,
        /// Hops left.
        ttl: u8,
        /// Final-delivery marker (owner determined by previous hop).
        fin: bool,
    },
    /// Remove one holder's index (graceful departure) — routed.
    Deregister {
        /// Chunk ring ID.
        key: ChordId,
        /// The departing holder.
        holder: NodeId,
        /// Hops left.
        ttl: u8,
        /// Final-delivery marker.
        fin: bool,
    },
    /// `Lookup(ID)` travelling toward the chunk's coordinator. Doubles as
    /// the failure report: `exclude` names a provider observed dead, which
    /// the coordinator drops before answering (§III-B1b "Node Failure").
    Lookup {
        /// Chunk ring ID.
        key: ChordId,
        /// Chunk sequence (echoed in the answer).
        seq: ChunkSeq,
        /// The requesting node (the answer goes straight back).
        origin: NodeId,
        /// A provider to drop and avoid.
        exclude: Option<NodeId>,
        /// Hops left.
        ttl: u8,
        /// Final-delivery marker.
        fin: bool,
    },
    /// Coordinator → requester: the chosen provider (or none known).
    Provider {
        /// The chunk asked about.
        seq: ChunkSeq,
        /// The provider, if any qualifies.
        provider: Option<NodeId>,
    },
    /// Requester → provider: send me this chunk.
    ChunkRequest {
        /// The chunk wanted.
        seq: ChunkSeq,
    },
    /// Provider → requester: the chunk payload (data class).
    ChunkData {
        /// The chunk carried.
        seq: ChunkSeq,
    },
    /// Provider → requester: no spare upload bandwidth right now (retry
    /// later; the index is still valid).
    Busy {
        /// The chunk that was requested.
        seq: ChunkSeq,
    },
    /// Provider → requester: I do not hold that chunk (stale index — the
    /// requester reports it to the coordinator for removal).
    NoChunk {
        /// The chunk that was requested.
        seq: ChunkSeq,
    },
    /// Bulk index transfer on ownership change (coordinator leave/join).
    IndexHandover {
        /// `(key, indices)` pairs now owned by the receiver.
        entries: Vec<(ChordId, Vec<ChunkIndex>)>,
    },
    /// Hierarchical: new node → server, asking for a coordinator.
    AttachRequest,
    /// Hierarchical: server → node, naming its coordinator.
    AttachAssign {
        /// The assigned coordinator.
        coordinator: NodeId,
    },
    /// Hierarchical: client → coordinator, registering as its client.
    ClientAttach,
    /// Hierarchical: client → coordinator, proxied lookup.
    ClientLookup {
        /// The chunk wanted.
        seq: ChunkSeq,
        /// A provider to drop and avoid.
        exclude: Option<NodeId>,
    },
    /// Hierarchical: client → coordinator, proxied index registration.
    ClientInsert {
        /// The index being registered.
        index: ChunkIndex,
    },
    /// Hierarchical: client → coordinator, "my longevity passed the bar".
    StableReport {
        /// The client's longevity probability.
        longevity: f64,
    },
    /// Hierarchical: coordinator → stable client, "join the ring via me".
    Promote,
    /// Hierarchical: promoted node → server, "add me to the rotation".
    CoordinatorAnnounce,
    /// Hierarchical: client → server, "my coordinator is gone".
    CoordinatorLost {
        /// The dead coordinator.
        dead: NodeId,
    },
}

/// DCO timers.
#[derive(Clone, Debug)]
pub enum DcoTimer {
    /// Server: emit the next chunk.
    Generate,
    /// Fetch-loop tick.
    FetchTick,
    /// A chunk request to `provider` timed out.
    RequestTimeout {
        /// The chunk requested.
        seq: ChunkSeq,
        /// The provider that went silent.
        provider: NodeId,
    },
    /// A routed lookup went unanswered.
    LookupTimeout {
        /// The chunk looked up.
        seq: ChunkSeq,
    },
    /// Continuous chunk-report refresh tick (dynamic ring only).
    ReportTick,
    /// Chord stabilize tick.
    Stabilize,
    /// Chord finger-refresh tick.
    FixFingers,
    /// Chord join retry.
    JoinRetry,
    /// Hierarchical: periodic stability / overload check.
    TierCheck,
}

/// Per-node role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The stream source (also a coordinator).
    Server,
    /// A DHT ring member serving lookups for its arc.
    Coordinator,
    /// A lower-tier node proxied by a coordinator (hierarchical mode).
    Client,
}

/// Per-node protocol state.
///
/// The small per-node tables that used to live here as `HashMap`s — the
/// pending chunk requests and in-flight lookups — are pooled across all
/// nodes in [`DcoProtocol::pending`] / [`DcoProtocol::lookups`]
/// ([`SlotTable`] slabs indexed by node), so a 100k-node run does not pay
/// 200k hash tables' worth of allocations for tables that hold at most
/// `max_inflight` entries.
struct NodeState {
    role: Role,
    buffer: BufferMap,
    /// First chunk of the stream this viewer fetches (0 = full catch-up).
    first_seq: ChunkSeq,
    /// The live chunk at this session's join instant: the fetch loop
    /// prioritizes `[session_seq, latest]` (the broadcast the viewer tuned
    /// in for) and backfills older history with leftover budget.
    session_seq: ChunkSeq,
    index: IndexTable,
    window: PrefetchWindow,
    joined_at: SimTime,
    /// Hierarchical: my coordinator.
    coordinator: Option<NodeId>,
    /// Hierarchical (coordinator side): stable clients by longevity.
    stable_clients: SmallVec<(NodeId, f64), 8>,
    /// Hierarchical (coordinator side): lookups since the last TierCheck.
    lookups_handled: u32,
    /// Hierarchical (client side): consecutive lookup timeouts (coordinator
    /// death detector).
    coord_failures: u32,
    /// Rotating cursor into the held set for the continuous report.
    report_cursor: u32,
    /// Covariates for the longevity model.
    covariates: Covariates,
    /// Sharded runs only: this node's private selection stream, lazily
    /// seeded from the engine's hub. Single-process runs keep drawing
    /// from the shared engine stream (pinned trace digests depend on it);
    /// sharded runs must not (`Ctx::rng` panics there), and per-node
    /// streams are consumed in the node's canonical dispatch order, which
    /// is identical on every shard count.
    select_rng: Option<SimRng>,
}

impl NodeState {
    fn new(
        role: Role,
        cfg: &DcoConfig,
        my_down: Kbps,
        now: SimTime,
        first_seq: ChunkSeq,
        session_seq: ChunkSeq,
    ) -> Self {
        NodeState {
            role,
            buffer: BufferMap::new(cfg.n_chunks),
            first_seq,
            session_seq,
            index: IndexTable::new(),
            window: PrefetchWindow::new(cfg.window.clone(), my_down),
            joined_at: now,
            coordinator: None,
            stable_clients: SmallVec::new(),
            lookups_handled: 0,
            coord_failures: 0,
            report_cursor: 0,
            select_rng: None,
            covariates: Covariates {
                buffering_level: 0,
                join_hour: (now.as_secs_f64() / 3600.0) % 24.0,
            },
        }
    }
}

/// The DCO protocol under simulation.
pub struct DcoProtocol {
    cfg: DcoConfig,
    namer: ChunkNamer,
    chord: ChordNet,
    nodes: Vec<Option<NodeState>>,
    /// Chunk requests awaiting data: node → (seq → provider's raw id).
    /// Pooled for all nodes in one slab; bounded per node by
    /// `max_inflight`.
    pending: SlotTable<u32>,
    /// Lookups awaiting a Provider answer: node → seq set.
    lookups: SlotTable<()>,
    /// Hierarchical (coordinator side): each coordinator's client roster.
    clients: ListSlab,
    /// Reception records for the metrics.
    pub obs: StreamObserver,
    /// Next chunk the server will emit.
    next_seq: ChunkSeq,
    /// Hierarchical: the server's coordinator rotation.
    coordinator_pool: Vec<NodeId>,
    /// Round-robin cursor into the pool.
    assign_cursor: usize,
    /// Diagnostics: fetch failures observed protocol-wide.
    pub fetch_failures: u64,
    /// Diagnostics: lookups answered with no provider.
    pub provider_none: u64,
    /// Diagnostics: lookups delivered to a coordinator.
    pub lookups_delivered: u64,
    /// Diagnostics: chunks served per node.
    pub serves: Vec<u64>,
}

impl DcoProtocol {
    /// Builds the protocol for the given configuration.
    pub fn new(cfg: DcoConfig) -> Self {
        let namer = ChunkNamer::new("CNN", 1_230_773_401, cfg.chunk_interval, cfg.n_chunks);
        let chord_cfg = ChordConfig {
            successor_list_len: cfg.neighbors.max(1),
            ..ChordConfig::default()
        };
        let chord = if cfg.static_ring {
            let peers: Vec<Peer> = (0..cfg.n_nodes)
                .map(|i| Peer::new(hash_node(NodeId(i)), NodeId(i)))
                .collect();
            match cfg.tier {
                TierMode::Flat => ChordNet::build_static(&peers, chord_cfg),
                TierMode::Hierarchical { .. } => {
                    // Static hierarchical start: only the server is in the
                    // ring; everyone else attaches as a client.
                    ChordNet::build_static(&peers[..1], chord_cfg)
                }
            }
        } else {
            ChordNet::new(cfg.n_nodes as usize, chord_cfg)
        };
        let n = cfg.n_nodes as usize;
        DcoProtocol {
            obs: StreamObserver::new(n, cfg.n_chunks as usize),
            namer,
            chord,
            nodes: (0..n).map(|_| None).collect(),
            pending: SlotTable::new(n, cfg.max_inflight.max(1)),
            lookups: SlotTable::new(n, cfg.max_inflight.max(1)),
            clients: ListSlab::new(n, 0),
            next_seq: ChunkSeq(0),
            coordinator_pool: vec![NodeId(0)],
            assign_cursor: 0,
            fetch_failures: 0,
            provider_none: 0,
            lookups_delivered: 0,
            serves: vec![0; n],
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DcoConfig {
        &self.cfg
    }

    /// The chunk namer (sequence ↔ name/ID mapping).
    pub fn namer(&self) -> &ChunkNamer {
        &self.namer
    }

    /// The embedded Chord ring (inspection).
    pub fn chord(&self) -> &ChordNet {
        &self.chord
    }

    /// The current role of `node`, if it has state.
    pub fn role_of(&self, node: NodeId) -> Option<Role> {
        self.state(node).map(|s| s.role)
    }

    /// Chunks currently buffered by `node`.
    pub fn held_count(&self, node: NodeId) -> usize {
        self.state(node).map(|s| s.buffer.held_count()).unwrap_or(0)
    }

    /// True if `node` holds chunk `seq`.
    pub fn holds(&self, node: NodeId, seq: ChunkSeq) -> bool {
        self.state(node).map(|s| s.buffer.has(seq)).unwrap_or(false)
    }

    /// Total indices registered at `node`'s coordinator table.
    pub fn index_count(&self, node: NodeId) -> usize {
        self.state(node).map(|s| s.index.index_count()).unwrap_or(0)
    }

    /// Number of nodes currently in the coordinator rotation (hierarchical).
    pub fn coordinator_count(&self) -> usize {
        self.coordinator_pool.len()
    }

    fn state(&self, node: NodeId) -> Option<&NodeState> {
        self.nodes.get(node.index()).and_then(Option::as_ref)
    }

    fn state_mut(&mut self, node: NodeId) -> Option<&mut NodeState> {
        self.nodes.get_mut(node.index()).and_then(Option::as_mut)
    }

    fn is_server(&self, node: NodeId) -> bool {
        node == NodeId(0)
    }

    fn key_of(&self, seq: ChunkSeq) -> ChordId {
        self.namer.id_of(seq)
    }
}

impl Protocol for DcoProtocol {
    type Msg = DcoMsg;
    type Timer = DcoTimer;

    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        self.handle_join(node, ctx);
    }

    fn on_message(&mut self, node: NodeId, from: NodeId, msg: DcoMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            DcoMsg::Chord(m) => self.handle_chord(node, from, m, ctx),
            DcoMsg::Insert {
                key,
                index,
                ttl,
                fin,
            } => self.route_insert(node, key, index, ttl, fin, ctx),
            DcoMsg::Deregister {
                key,
                holder,
                ttl,
                fin,
            } => self.route_deregister(node, key, holder, ttl, fin, ctx),
            DcoMsg::Lookup {
                key,
                seq,
                origin,
                exclude,
                ttl,
                fin,
            } => self.route_lookup(node, key, seq, origin, exclude, ttl, fin, ctx),
            DcoMsg::Provider { seq, provider } => self.handle_provider(node, seq, provider, ctx),
            DcoMsg::ChunkRequest { seq } => self.handle_chunk_request(node, from, seq, ctx),
            DcoMsg::ChunkData { seq } => self.handle_chunk_data(node, from, seq, ctx),
            DcoMsg::Busy { seq } => self.handle_busy(node, seq, ctx),
            DcoMsg::NoChunk { seq } => self.handle_no_chunk(node, from, seq, ctx),
            DcoMsg::IndexHandover { entries } => {
                if let Some(st) = self.state_mut(node) {
                    st.index.absorb(entries);
                }
            }
            DcoMsg::AttachRequest => self.handle_attach_request(node, from, ctx),
            DcoMsg::AttachAssign { coordinator } => {
                self.handle_attach_assign(node, coordinator, ctx)
            }
            DcoMsg::ClientAttach => self.handle_client_attach(node, from),
            DcoMsg::ClientLookup { seq, exclude } => {
                self.handle_client_lookup(node, from, seq, exclude, ctx)
            }
            DcoMsg::ClientInsert { index } => self.handle_client_insert(node, index, ctx),
            DcoMsg::StableReport { longevity } => self.handle_stable_report(node, from, longevity),
            DcoMsg::Promote => self.handle_promote(node, from, ctx),
            DcoMsg::CoordinatorAnnounce => self.handle_coordinator_announce(node, from),
            DcoMsg::CoordinatorLost { dead } => self.handle_coordinator_lost(node, from, dead, ctx),
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: DcoTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            DcoTimer::Generate => self.handle_generate(node, ctx),
            DcoTimer::FetchTick => self.handle_fetch_tick(node, ctx),
            DcoTimer::RequestTimeout { seq, provider } => {
                self.handle_request_timeout(node, seq, provider, ctx)
            }
            DcoTimer::LookupTimeout { seq } => self.handle_lookup_timeout(node, seq, ctx),
            DcoTimer::ReportTick => self.handle_report_tick(node, ctx),
            DcoTimer::Stabilize => self.handle_stabilize_tick(node, ctx),
            DcoTimer::FixFingers => self.handle_fix_fingers_tick(node, ctx),
            DcoTimer::JoinRetry => self.handle_join_retry(node, ctx),
            DcoTimer::TierCheck => self.handle_tier_check(node, ctx),
        }
    }

    fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
        self.handle_leave(node, graceful, ctx);
    }
}
