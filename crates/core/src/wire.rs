//! Wire codec for DCO protocol messages (cross-shard transport).
//!
//! The sharded runner serializes every [`DcoMsg`] that crosses a worker
//! boundary with these impls. Format follows the `dco-sim` codec: fields in
//! declaration order, one tag byte per enum variant, all integers
//! little-endian fixed-width. Both ends of a pipe are the same binary, so
//! there is no versioning — only unambiguity and bounds-checked decoding.

use dco_sim::wire::{WireCodec, WireError, WireReader};

use crate::chunk::ChunkSeq;
use crate::index::ChunkIndex;
use crate::proto::DcoMsg;

impl WireCodec for ChunkSeq {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChunkSeq(r.get()?))
    }
}

impl WireCodec for ChunkIndex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.holder.encode(out);
        self.avail.encode(out);
        self.held_count.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChunkIndex {
            seq: r.get()?,
            holder: r.get()?,
            avail: r.get()?,
            held_count: r.get()?,
        })
    }
}

impl WireCodec for DcoMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DcoMsg::Chord(m) => {
                out.push(0);
                m.encode(out);
            }
            DcoMsg::Insert {
                key,
                index,
                ttl,
                fin,
            } => {
                out.push(1);
                key.encode(out);
                index.encode(out);
                ttl.encode(out);
                fin.encode(out);
            }
            DcoMsg::Deregister {
                key,
                holder,
                ttl,
                fin,
            } => {
                out.push(2);
                key.encode(out);
                holder.encode(out);
                ttl.encode(out);
                fin.encode(out);
            }
            DcoMsg::Lookup {
                key,
                seq,
                origin,
                exclude,
                ttl,
                fin,
            } => {
                out.push(3);
                key.encode(out);
                seq.encode(out);
                origin.encode(out);
                exclude.encode(out);
                ttl.encode(out);
                fin.encode(out);
            }
            DcoMsg::Provider { seq, provider } => {
                out.push(4);
                seq.encode(out);
                provider.encode(out);
            }
            DcoMsg::ChunkRequest { seq } => {
                out.push(5);
                seq.encode(out);
            }
            DcoMsg::ChunkData { seq } => {
                out.push(6);
                seq.encode(out);
            }
            DcoMsg::Busy { seq } => {
                out.push(7);
                seq.encode(out);
            }
            DcoMsg::NoChunk { seq } => {
                out.push(8);
                seq.encode(out);
            }
            DcoMsg::IndexHandover { entries } => {
                out.push(9);
                entries.encode(out);
            }
            DcoMsg::AttachRequest => out.push(10),
            DcoMsg::AttachAssign { coordinator } => {
                out.push(11);
                coordinator.encode(out);
            }
            DcoMsg::ClientAttach => out.push(12),
            DcoMsg::ClientLookup { seq, exclude } => {
                out.push(13);
                seq.encode(out);
                exclude.encode(out);
            }
            DcoMsg::ClientInsert { index } => {
                out.push(14);
                index.encode(out);
            }
            DcoMsg::StableReport { longevity } => {
                out.push(15);
                longevity.encode(out);
            }
            DcoMsg::Promote => out.push(16),
            DcoMsg::CoordinatorAnnounce => out.push(17),
            DcoMsg::CoordinatorLost { dead } => {
                out.push(18);
                dead.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get::<u8>()? {
            0 => Ok(DcoMsg::Chord(r.get()?)),
            1 => Ok(DcoMsg::Insert {
                key: r.get()?,
                index: r.get()?,
                ttl: r.get()?,
                fin: r.get()?,
            }),
            2 => Ok(DcoMsg::Deregister {
                key: r.get()?,
                holder: r.get()?,
                ttl: r.get()?,
                fin: r.get()?,
            }),
            3 => Ok(DcoMsg::Lookup {
                key: r.get()?,
                seq: r.get()?,
                origin: r.get()?,
                exclude: r.get()?,
                ttl: r.get()?,
                fin: r.get()?,
            }),
            4 => Ok(DcoMsg::Provider {
                seq: r.get()?,
                provider: r.get()?,
            }),
            5 => Ok(DcoMsg::ChunkRequest { seq: r.get()? }),
            6 => Ok(DcoMsg::ChunkData { seq: r.get()? }),
            7 => Ok(DcoMsg::Busy { seq: r.get()? }),
            8 => Ok(DcoMsg::NoChunk { seq: r.get()? }),
            9 => Ok(DcoMsg::IndexHandover { entries: r.get()? }),
            10 => Ok(DcoMsg::AttachRequest),
            11 => Ok(DcoMsg::AttachAssign {
                coordinator: r.get()?,
            }),
            12 => Ok(DcoMsg::ClientAttach),
            13 => Ok(DcoMsg::ClientLookup {
                seq: r.get()?,
                exclude: r.get()?,
            }),
            14 => Ok(DcoMsg::ClientInsert { index: r.get()? }),
            15 => Ok(DcoMsg::StableReport {
                longevity: r.get()?,
            }),
            16 => Ok(DcoMsg::Promote),
            17 => Ok(DcoMsg::CoordinatorAnnounce),
            18 => Ok(DcoMsg::CoordinatorLost { dead: r.get()? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_dht::chord::{ChordMsg, RouteToken};
    use dco_dht::id::{ChordId, Peer};
    use dco_sim::net::Kbps;
    use dco_sim::node::NodeId;
    use dco_sim::wire::{decode_exact, encode_to_vec};

    fn index(n: u32) -> ChunkIndex {
        ChunkIndex {
            seq: ChunkSeq(n),
            holder: NodeId(n + 1),
            avail: Kbps(600),
            held_count: 3,
        }
    }

    /// `DcoMsg` has no `PartialEq`; equality is checked through the codec
    /// itself — decode then re-encode must reproduce the bytes.
    fn round_trip(msg: &DcoMsg) {
        let bytes = encode_to_vec(msg);
        let back = decode_exact::<DcoMsg>(&bytes).unwrap();
        assert_eq!(encode_to_vec(&back), bytes, "{msg:?}");
    }

    fn samples() -> Vec<DcoMsg> {
        vec![
            DcoMsg::Chord(ChordMsg::FindSucc {
                key: ChordId(0xFACE),
                origin: Peer {
                    id: ChordId(5),
                    node: NodeId(5),
                },
                token: RouteToken::App(99),
                ttl: 64,
            }),
            DcoMsg::Insert {
                key: ChordId(12),
                index: index(7),
                ttl: 8,
                fin: true,
            },
            DcoMsg::Deregister {
                key: ChordId(13),
                holder: NodeId(2),
                ttl: 0,
                fin: false,
            },
            DcoMsg::Lookup {
                key: ChordId(u64::MAX),
                seq: ChunkSeq(41),
                origin: NodeId(9),
                exclude: Some(NodeId(1)),
                ttl: 5,
                fin: true,
            },
            DcoMsg::Provider {
                seq: ChunkSeq(41),
                provider: None,
            },
            DcoMsg::ChunkRequest { seq: ChunkSeq(1) },
            DcoMsg::ChunkData { seq: ChunkSeq(2) },
            DcoMsg::Busy { seq: ChunkSeq(3) },
            DcoMsg::NoChunk { seq: ChunkSeq(4) },
            DcoMsg::IndexHandover {
                entries: vec![(ChordId(1), vec![index(1), index(2)]), (ChordId(2), vec![])],
            },
            DcoMsg::AttachRequest,
            DcoMsg::AttachAssign {
                coordinator: NodeId(3),
            },
            DcoMsg::ClientAttach,
            DcoMsg::ClientLookup {
                seq: ChunkSeq(77),
                exclude: None,
            },
            DcoMsg::ClientInsert { index: index(9) },
            DcoMsg::StableReport { longevity: 0.875 },
            DcoMsg::Promote,
            DcoMsg::CoordinatorAnnounce,
            DcoMsg::CoordinatorLost { dead: NodeId(6) },
        ]
    }

    #[test]
    fn dco_messages_round_trip() {
        let samples = samples();
        // One sample per variant keeps this list honest as the enum grows.
        assert_eq!(samples.len(), 19);
        for msg in samples {
            round_trip(&msg);
        }
    }

    #[test]
    fn truncated_dco_messages_are_rejected() {
        for msg in samples() {
            let bytes = encode_to_vec(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    decode_exact::<DcoMsg>(&bytes[..cut]).is_err(),
                    "cut at {cut} of {msg:?}"
                );
            }
        }
    }

    #[test]
    fn bad_variant_tags_are_rejected() {
        assert!(matches!(
            decode_exact::<DcoMsg>(&[250]),
            Err(WireError::BadTag(250))
        ));
    }
}
