//! Property tests for the bucketed calendar queue.
//!
//! The calendar ([`dco_sim::queue::EventQueue`]) is checked against a
//! trivially-correct reference model — a flat list popped by minimum
//! `(time, sequence)` — under event populations that straddle bucket
//! boundaries, span the ring window, and spill into the far-future
//! overflow heap. Driven by the in-tree `dco-testkit` (deterministic
//! seeds, `DCO_TESTKIT_REPLAY` to reproduce a failure).

use dco_sim::queue::EventQueue;
use dco_sim::time::SimTime;
use dco_testkit::{check, tk_assert, tk_assert_eq, Gen};

/// Mirror of the queue's internal geometry (also asserted indirectly: if
/// the constants drift, the scales below still cover all three tiers).
const BUCKET_US: u64 = 1 << 13;
const WINDOW_US: u64 = 512 * BUCKET_US;

/// Event times drawn across the calendar's interesting scales: inside one
/// bucket, across the ring window, deep in overflow territory, and pinned
/// to bucket edges.
fn gen_time(g: &mut Gen) -> u64 {
    match g.usize_in(0, 4) {
        0 => g.u64_in(0, BUCKET_US),
        1 => g.u64_in(0, WINDOW_US),
        2 => g.u64_in(0, 8 * WINDOW_US),
        _ => {
            let b = g.u64_in(0, 1100);
            let off = *g.pick(&[0u64, 1, BUCKET_US / 2, BUCKET_US - 1]);
            b * BUCKET_US + off
        }
    }
}

/// Reference model: pending `(time_us, seq)` pairs, popped by minimum.
struct Model {
    pending: Vec<(u64, u64)>,
    next_seq: u64,
}

impl Model {
    fn new() -> Model {
        Model {
            pending: Vec::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, t: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((t, seq));
        seq
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &p)| p)
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(i))
    }
}

/// Drain-after-fill: the queue pops the exact `(time, seq)` sort of any
/// pushed multiset, no matter how times scatter across tiers.
#[test]
fn pop_order_equals_reference_sort() {
    check("pop_order_equals_reference_sort", 200, |g| {
        let times = g.vec_of(1, 300, gen_time);
        let mut q = EventQueue::new();
        let mut model = Model::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), model.push(t));
        }
        tk_assert_eq!(q.len(), times.len(), "len after fill");
        while let Some((want_t, want_seq)) = model.pop() {
            let (got_t, got_seq) = q.pop().expect("queue drained early");
            tk_assert_eq!(got_t.as_micros(), want_t, "pop time");
            tk_assert_eq!(got_seq, want_seq, "pop payload (stability)");
        }
        tk_assert_eq!(q.pop(), None, "queue empty once model is");
        Ok(())
    });
}

/// Interleaved pushes and pops: every pop returns the minimum pending
/// `(time, seq)`, including pushes that land in an already-passed bucket
/// (the engine schedules at `now` after the cursor has advanced) and
/// pushes that arrive after the cursor jumped deep into overflow range.
#[test]
fn interleaved_ops_always_pop_the_pending_minimum() {
    check("interleaved_ops_always_pop_the_pending_minimum", 200, |g| {
        let mut q = EventQueue::new();
        let mut model = Model::new();
        let mut last_popped = 0u64;
        for _ in 0..g.usize_in(10, 250) {
            if g.weighted_bool(0.6) || model.pending.is_empty() {
                // Bias pushes around the current frontier so cursor-passed
                // buckets are exercised, not just the far future.
                let t = if g.weighted_bool(0.3) {
                    last_popped.saturating_sub(g.u64_in(0, 2 * BUCKET_US))
                } else {
                    last_popped + gen_time(g)
                };
                q.push(SimTime::from_micros(t), model.push(t));
            } else {
                let (want_t, want_seq) = model.pop().expect("non-empty");
                let (got_t, got_seq) = q.pop().expect("queue drained early");
                tk_assert_eq!(got_t.as_micros(), want_t, "pop time");
                tk_assert_eq!(got_seq, want_seq, "pop payload");
                last_popped = want_t;
            }
            tk_assert_eq!(q.len(), model.pending.len(), "len tracks model");
        }
        while let Some(want) = model.pop() {
            let (t, seq) = q.pop().expect("final drain");
            tk_assert_eq!((t.as_micros(), seq), want, "final drain order");
        }
        tk_assert_eq!(q.pop(), None, "fully drained");
        Ok(())
    });
}

/// Stability under heavy ties: many events share few distinct timestamps
/// (the simulator's actual regime — every node arms the same tick), and
/// equal-time events must fire in exact insertion order even when the tie
/// group was split across tiers by interleaved pops.
#[test]
fn equal_time_events_fire_in_insertion_order() {
    check("equal_time_events_fire_in_insertion_order", 200, |g| {
        let distinct = g.vec_of(1, 6, gen_time);
        let mut q = EventQueue::new();
        let mut model = Model::new();
        for _ in 0..g.usize_in(5, 120) {
            let t = *g.pick(&distinct);
            q.push(SimTime::from_micros(t), model.push(t));
            if g.weighted_bool(0.25) {
                let want = model.pop().expect("just pushed");
                let (t, seq) = q.pop().expect("non-empty");
                tk_assert_eq!((t.as_micros(), seq), want, "interleaved pop");
            }
        }
        let mut prev: Option<(u64, u64)> = None;
        while let Some(want) = model.pop() {
            let (t, seq) = q.pop().expect("drain");
            let got = (t.as_micros(), seq);
            tk_assert_eq!(got, want, "tie-broken order");
            if let Some(p) = prev {
                tk_assert!(
                    got > p,
                    "strictly increasing (time, seq): {p:?} then {got:?}"
                );
            }
            prev = Some(got);
        }
        Ok(())
    });
}
