//! A safe small-vector: inline storage for the common small case, spilling
//! to a heap `Vec` past `N` elements.
//!
//! Hot per-key collections in the overlay (chunk-index provider lists,
//! per-tick request batches) hold a handful of elements almost always;
//! storing them inline removes one heap allocation and one pointer chase
//! per collection. The `T: Copy + Default` bound keeps the implementation
//! entirely safe — the inline array is always fully initialized, so no
//! `MaybeUninit` is needed — which is all the element types on these paths
//! (`ChunkIndex`, `ChunkSeq`, ids) satisfy.

/// A vector with inline capacity `N`, spilling to the heap when it grows
/// past that.
#[derive(Clone, Debug)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    /// Elements while inline (`spill` empty): `inline[..len]`.
    inline: [T; N],
    len: usize,
    /// Heap storage once spilled; when non-empty it holds *all* elements
    /// and `inline`/`len` are ignored.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty small-vector (no heap allocation).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled() {
            self.spill.len()
        } else {
            self.len
        }
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spilled() {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled() {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }

    /// Appends an element, spilling to the heap on inline overflow.
    pub fn push(&mut self, value: T) {
        if self.spilled() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            let mut v = Vec::with_capacity(N * 2);
            v.extend_from_slice(&self.inline);
            v.push(value);
            self.spill = v;
            self.len = 0;
        }
    }

    /// Removes and returns the element at `idx`, shifting the tail left.
    ///
    /// Panics if `idx` is out of bounds (same contract as [`Vec::remove`]).
    pub fn remove(&mut self, idx: usize) -> T {
        if self.spilled() {
            self.spill.remove(idx)
        } else {
            assert!(idx < self.len, "index {idx} out of bounds ({})", self.len);
            let v = self.inline[idx];
            self.inline.copy_within(idx + 1..self.len, idx);
            self.len -= 1;
            v
        }
    }

    /// Keeps only the elements for which `pred` holds, preserving order.
    pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) {
        if self.spilled() {
            self.spill.retain(|v| pred(v));
        } else {
            let mut kept = 0;
            for i in 0..self.len {
                if pred(&self.inline[i]) {
                    self.inline[kept] = self.inline[i];
                    kept += 1;
                }
            }
            self.len = kept;
        }
    }

    /// Removes all elements (keeps any heap allocation).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Converts into a plain `Vec` (reuses the heap allocation if already
    /// spilled) — the boundary to wire types that stay `Vec`-shaped.
    pub fn into_vec(mut self) -> Vec<T> {
        if self.spilled() {
            std::mem::take(&mut self.spill)
        } else {
            self.inline[..self.len].to_vec()
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> core::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> core::ops::DerefMut for SmallVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut sv = Self::new();
        sv.extend(iter);
        sv
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_within_capacity() {
        let mut sv: SmallVec<u64, 4> = SmallVec::new();
        assert!(sv.is_empty());
        for i in 0..4 {
            sv.push(i);
        }
        assert_eq!(sv.len(), 4);
        assert_eq!(sv.as_slice(), &[0, 1, 2, 3]);
        assert!(!sv.spilled());
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut sv: SmallVec<u64, 4> = SmallVec::new();
        for i in 0..10 {
            sv.push(i);
        }
        assert!(sv.spilled());
        assert_eq!(sv.len(), 10);
        assert_eq!(sv.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn remove_inline_and_spilled() {
        let mut sv: SmallVec<u32, 3> = SmallVec::new();
        sv.extend([1, 2, 3]);
        assert_eq!(sv.remove(1), 2);
        assert_eq!(sv.as_slice(), &[1, 3]);
        sv.extend([4, 5, 6]); // spills
        assert_eq!(sv.remove(0), 1);
        assert_eq!(sv.as_slice(), &[3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_oob_panics() {
        let mut sv: SmallVec<u32, 3> = SmallVec::new();
        sv.push(1);
        sv.remove(1);
    }

    #[test]
    fn retain_both_modes() {
        let mut sv: SmallVec<u32, 8> = (0..6).collect();
        sv.retain(|v| v % 2 == 0);
        assert_eq!(sv.as_slice(), &[0, 2, 4]);
        let mut big: SmallVec<u32, 2> = (0..6).collect();
        big.retain(|v| v % 2 == 1);
        assert_eq!(big.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn mutation_through_slice() {
        let mut sv: SmallVec<u32, 4> = (0..3).collect();
        sv[1] = 99;
        assert_eq!(sv.as_slice(), &[0, 99, 2]);
        for v in sv.as_mut_slice() {
            *v += 1;
        }
        assert_eq!(sv.as_slice(), &[1, 100, 3]);
    }

    #[test]
    fn into_vec_both_modes() {
        let small: SmallVec<u32, 4> = (0..3).collect();
        assert_eq!(small.into_vec(), vec![0, 1, 2]);
        let big: SmallVec<u32, 2> = (0..5).collect();
        assert_eq!(big.into_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_keeps_working() {
        let mut sv: SmallVec<u32, 2> = (0..5).collect();
        sv.clear();
        assert!(sv.is_empty());
        sv.push(7);
        assert_eq!(sv.as_slice(), &[7]);
    }
}
