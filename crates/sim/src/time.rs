//! Simulated time.
//!
//! The engine measures time in **microseconds** stored in a `u64`. That gives
//! ~584,000 years of range — far beyond any streaming session — while keeping
//! every arithmetic operation exact and every run bit-for-bit reproducible
//! (no floating-point clock drift between platforms).
//!
//! Two newtypes keep instants and spans from being confused:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! The usual arithmetic is provided: `SimTime + SimDuration -> SimTime`,
//! `SimTime - SimTime -> SimDuration`, `SimDuration * u64`, etc. Operations
//! that could underflow are available in `checked_`/`saturating_` form; the
//! plain operators panic in debug builds like the standard library types.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Builds an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_micros(s))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whole seconds elapsed (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    #[inline]
    pub const fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        if self.0 >= earlier.0 {
            Some(SimDuration(self.0 - earlier.0))
        } else {
            None
        }
    }

    /// The span from `earlier` to `self`, clamping to zero if `earlier` is
    /// later.
    #[inline]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a span, saturating at [`SimTime::MAX`].
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_micros(s))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two spans, saturating at [`SimDuration::MAX`].
    #[inline]
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts, clamping at zero.
    #[inline]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a scalar, saturating.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// microsecond. Negative and non-finite factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if !k.is_finite() || k <= 0.0 {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }
}

#[inline]
fn secs_f64_to_micros(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    if s.is_infinite() {
        return u64::MAX;
    }
    let v = s * MICROS_PER_SEC as f64;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
        assert_eq!(SimDuration::from_secs(2).as_secs(), 2);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        // Negative / NaN clamp to zero.
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 10_250_000);
        let mut u = t;
        u += SimDuration::from_micros(1);
        assert_eq!(u.as_micros(), 10_250_001);
    }

    #[test]
    fn instant_difference() {
        let a = SimTime::from_secs(4);
        let b = SimTime::from_secs(7);
        assert_eq!(b - a, SimDuration::from_secs(3));
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(3)));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn span_arithmetic() {
        let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(d.as_micros(), 2_500_000);
        assert_eq!(d * 2, SimDuration::from_secs(5));
        assert_eq!(d / 5, SimDuration::from_millis(500));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn span_mul_f64() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn saturating_instant_add() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(75)), "0.075s");
    }
}
