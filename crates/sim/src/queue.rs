//! The future-event list.
//!
//! A two-tier **bucketed calendar queue**, replacing the classic global
//! binary heap. Simulation events cluster tightly in time (link latencies,
//! tick timers), so the calendar splits the timeline into fixed-width
//! buckets of `2^BUCKET_SHIFT` µs:
//!
//! * **`cur`** — a small binary heap holding the *active region*: every
//!   pending event whose bucket is at or before the cursor. Pops come from
//!   here, so the heap the hot path touches holds one bucket's worth of
//!   events instead of the whole future.
//! * **`ring`** — the near future: a power-of-two ring of unsorted
//!   per-bucket vectors covering the `RING_BUCKETS - 1` buckets after the
//!   cursor, with a word-level occupancy bitmap so advancing the cursor
//!   skips empty buckets without scanning them. Pushing here is an O(1)
//!   vector append — no comparisons, no sift.
//! * **`overflow`** — the far future (beyond the ring window): a binary
//!   heap, drained bucket-by-bucket into `cur` as the cursor reaches it.
//!
//! Total pop order is exactly `(time, sequence)`: everything in `cur` fires
//! strictly before anything in the ring or overflow (later buckets mean
//! strictly later times), and `cur` itself is a stable min-heap. The
//! monotonically increasing sequence number makes the queue **stable** —
//! events scheduled earlier for the same instant fire first — which is what
//! makes whole runs deterministic for a fixed seed. The replacement is
//! bit-exact with the old heap: the golden trace digests in
//! `tests/determinism.rs` pin that.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the bucket width in microseconds (8.192 ms buckets): wide enough
/// that a bucket amortizes the heapify, narrow enough that the active heap
/// stays small.
const BUCKET_SHIFT: u32 = 13;

/// Ring size in buckets (power of two). The window spans
/// `(RING_BUCKETS - 1) << BUCKET_SHIFT` µs ≈ 4.2 s — comfortably past every
/// periodic timer and timeout the protocols arm; only long-horizon events
/// (churn schedules, far-future joins) spill to the overflow heap.
const RING_BUCKETS: usize = 512;

/// Occupancy bitmap words.
const RING_WORDS: usize = RING_BUCKETS / 64;

/// An entry in the calendar: a payload due at `at`, tie-broken by `key`.
///
/// In the default FIFO mode the key is the monotone insertion sequence
/// number (so equal-time events fire in insertion order). The sharded
/// engine instead supplies *canonical stamp* keys — 128-bit values derived
/// from the event's provenance that are identical no matter which worker
/// process scheduled the event — which is what makes the sharded dispatch
/// order shard-count-invariant.
struct Scheduled<E> {
    at: SimTime,
    key: u128,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// The bucket index of an instant.
#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_micros() >> BUCKET_SHIFT
}

/// A stable min-priority queue of future events.
pub struct EventQueue<E> {
    /// Active region: every pending event with `bucket <= cursor`.
    cur: BinaryHeap<Scheduled<E>>,
    /// Near future: bucket `b` with `cursor < b < cursor + RING_BUCKETS`
    /// lives (unsorted) at slot `b % RING_BUCKETS`. Vectors keep their
    /// allocation across window generations.
    ring: Vec<Vec<Scheduled<E>>>,
    /// One bit per ring slot with at least one event.
    occupied: [u64; RING_WORDS],
    /// Events currently in the ring (fast empty check).
    ring_len: usize,
    /// Far future: bucket at or beyond `cursor + RING_BUCKETS`.
    overflow: BinaryHeap<Scheduled<E>>,
    /// The active bucket index.
    cursor: u64,
    /// Total pending events across all three tiers.
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            cur: BinaryHeap::new(),
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; RING_WORDS],
            ring_len: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// An empty calendar with pre-allocated active-heap capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.cur.reserve(cap);
        q
    }

    /// Grows the active-heap reservation to at least `additional` more
    /// slots (scenario-population capacity hint).
    pub fn reserve(&mut self, additional: usize) {
        self.cur.reserve(additional);
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Events at equal times fire in insertion order.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let key = self.next_seq as u128;
        self.push_keyed(at, key, payload);
    }

    /// Schedules `payload` at `at` with an explicit 128-bit tie-break key.
    ///
    /// Equal-time events fire in ascending key order. Keys at one instant
    /// **must be distinct** — the underlying binary heap is not stable, so
    /// two entries with equal `(at, key)` pop in unspecified order. The
    /// plain [`EventQueue::push`] is exactly `push_keyed` with the monotone
    /// insertion counter as the key.
    pub fn push_keyed(&mut self, at: SimTime, key: u128, payload: E) {
        self.next_seq += 1;
        self.len += 1;
        let b = bucket_of(at);
        let entry = Scheduled { at, key, payload };
        if b <= self.cursor {
            self.cur.push(entry);
        } else if b - self.cursor < RING_BUCKETS as u64 {
            let slot = (b % RING_BUCKETS as u64) as usize;
            self.ring[slot].push(entry);
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.ring_len += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Moves the earliest pending bucket into `cur` until `cur` is
    /// non-empty (or the queue is drained).
    fn settle(&mut self) {
        while self.cur.is_empty() {
            let b_ring = if self.ring_len > 0 {
                self.next_occupied_bucket()
            } else {
                None
            };
            let b_ovf = self.overflow.peek().map(|s| bucket_of(s.at));
            let b = match (b_ring, b_ovf) {
                (Some(r), Some(o)) => r.min(o),
                (Some(r), None) => r,
                (None, Some(o)) => o,
                (None, None) => return,
            };
            if b_ring == Some(b) {
                let slot = (b % RING_BUCKETS as u64) as usize;
                self.ring_len -= self.ring[slot].len();
                self.occupied[slot / 64] &= !(1 << (slot % 64));
                // `drain` keeps the slot's allocation for the next window
                // generation; `extend` heapifies element-by-element, which
                // is fine at bucket granularity.
                let mut bucket = std::mem::take(&mut self.ring[slot]);
                self.cur.extend(bucket.drain(..));
                self.ring[slot] = bucket;
            }
            if b_ovf == Some(b) {
                while let Some(s) = self.overflow.peek() {
                    if bucket_of(s.at) != b {
                        break;
                    }
                    let s = self.overflow.pop().expect("peeked");
                    self.cur.push(s);
                }
            }
            self.cursor = b;
        }
    }

    /// The bucket index of the first occupied ring slot after the cursor,
    /// scanning the occupancy bitmap word-by-word in bucket order.
    fn next_occupied_bucket(&self) -> Option<u64> {
        debug_assert!(self.ring_len > 0);
        for d in 1..RING_BUCKETS as u64 {
            let b = self.cursor + d;
            let slot = (b % RING_BUCKETS as u64) as usize;
            // Word-level skip: if the whole word holds no occupied slot at
            // or after this position (within this word), jump to the next
            // word boundary.
            let word = self.occupied[slot / 64];
            let masked = word >> (slot % 64);
            if masked == 0 {
                // Skip the rest of this word (minus one for the loop's +1).
                let skip = 63 - (slot % 64) as u64;
                if skip > 0 {
                    return self.next_occupied_from(b + skip);
                }
                continue;
            }
            return Some(b + masked.trailing_zeros() as u64);
        }
        None
    }

    /// Continues the occupancy scan from bucket `from` (exclusive of
    /// nothing — `from` itself is a candidate).
    fn next_occupied_from(&self, from: u64) -> Option<u64> {
        let end = self.cursor + RING_BUCKETS as u64;
        let mut b = from + 1;
        while b < end {
            let slot = (b % RING_BUCKETS as u64) as usize;
            let masked = self.occupied[slot / 64] >> (slot % 64);
            if masked == 0 {
                b += 64 - (slot % 64) as u64;
                continue;
            }
            let cand = b + masked.trailing_zeros() as u64;
            if cand >= end {
                return None;
            }
            return Some(cand);
        }
        None
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle();
        let s = self.cur.pop()?;
        self.len -= 1;
        Some((s.at, s.payload))
    }

    /// The firing time of the earliest event, if any.
    ///
    /// Takes `&mut self` because peeking may advance the calendar's cursor
    /// to the next occupied bucket (pure queue bookkeeping — the observable
    /// event order is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        self.cur.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending events without firing them.
    pub fn clear(&mut self) {
        self.cur.clear();
        for slot in &mut self.ring {
            slot.clear();
        }
        self.occupied = [0; RING_WORDS];
        self.ring_len = 0;
        self.overflow.clear();
        self.cursor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stable_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)), "insertion order preserved");
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    /// Spans all three tiers: active heap, ring window, overflow.
    #[test]
    fn far_future_spills_and_refills() {
        let mut q = EventQueue::new();
        let window_us = (RING_BUCKETS as u64) << BUCKET_SHIFT;
        // Beyond the ring window from cursor 0 → overflow.
        q.push(SimTime::from_micros(3 * window_us), "far");
        q.push(SimTime::from_micros(7 * window_us), "farther");
        // Inside the window → ring.
        q.push(SimTime::from_micros(window_us / 2), "near");
        // Active bucket → cur.
        q.push(SimTime::ZERO, "now");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "near");
        // Cursor jumped into overflow territory; a fresh near-future push
        // interleaves correctly with the remaining overflow events.
        q.push(SimTime::from_micros(3 * window_us + 1), "just-after-far");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "just-after-far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert_eq!(q.pop(), None);
    }

    /// Pushing an event earlier than the cursor's bucket (e.g. at the
    /// current instant after the cursor advanced) still pops in order.
    #[test]
    fn past_bucket_push_goes_active() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "later");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        // Cursor has advanced to the 10 s bucket; a push at 9 s lands in
        // the active heap and still fires first.
        q.push(SimTime::from_secs(9), "earlier");
        assert_eq!(q.pop().unwrap().1, "earlier");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    /// Equal-time events pushed into different tiers (ring, then active
    /// after cursor advance) keep insertion order.
    #[test]
    fn stable_across_tier_boundaries() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, 0);
        q.push(SimTime::from_secs(1), 100);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 100)));
        // Cursor is now at the 1 s bucket; t's bucket is still ahead.
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn keyed_push_orders_by_key_at_equal_time() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        // Insertion order deliberately scrambled relative to key order.
        q.push_keyed(t, 30, "c");
        q.push_keyed(t, 10, "a");
        q.push_keyed(SimTime::from_secs(2), 1, "late");
        q.push_keyed(t, 20, "b");
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t, "c")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
        assert_eq!(q.scheduled_total(), 4);
    }

    #[test]
    fn keyed_and_wide_keys_order_across_tiers() {
        let mut q = EventQueue::new();
        let big = 1u128 << 127;
        let t = SimTime::from_secs(3);
        q.push_keyed(t, big | 5, "runtime");
        q.push_keyed(t, 7, "install");
        q.push_keyed(SimTime::from_secs(600), big | 1, "far-future");
        assert_eq!(q.pop().unwrap().1, "install");
        assert_eq!(q.pop().unwrap().1, "runtime");
        assert_eq!(q.pop().unwrap().1, "far-future");
    }

    #[test]
    fn bucket_boundary_ordering() {
        let mut q = EventQueue::new();
        let w = 1u64 << BUCKET_SHIFT;
        // Straddle a bucket boundary with adjacent microseconds.
        q.push(SimTime::from_micros(w), "b1-start");
        q.push(SimTime::from_micros(w - 1), "b0-end");
        q.push(SimTime::from_micros(w + 1), "b1-second");
        assert_eq!(q.pop().unwrap().1, "b0-end");
        assert_eq!(q.pop().unwrap().1, "b1-start");
        assert_eq!(q.pop().unwrap().1, "b1-second");
    }
}
