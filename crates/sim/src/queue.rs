//! The future-event list.
//!
//! A classic discrete-event simulation calendar: a binary min-heap ordered by
//! `(time, sequence)`. The monotonically increasing sequence number makes the
//! queue **stable** — events scheduled earlier for the same instant fire
//! first — which is what makes whole runs deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the calendar: a payload due at `at`, tie-broken by `seq`.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Events at equal times fire in insertion order.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending events without firing them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stable_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)), "insertion order preserved");
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
