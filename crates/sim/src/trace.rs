//! Lightweight event tracing.
//!
//! A bounded ring buffer of recent engine events for post-mortem debugging
//! of protocol runs: when an assertion fires deep in a 5-million-event
//! simulation, the last few thousand events are usually enough to see what
//! went wrong, and a full log would be gigabytes.
//!
//! The tracer is deliberately engine-agnostic — protocols (and the engine)
//! push [`TraceEvent`]s; filtering happens at query time.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::time::SimTime;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// The node it happened at (receiver for deliveries).
    pub node: NodeId,
    /// Event class, e.g. `"deliver"`, `"timer"`, `"join"`, `"drop"`.
    pub kind: &'static str,
    /// Free-form detail (message debug print, timer token, ...).
    pub detail: String,
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Clone, Debug)]
pub struct Trace {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    /// Total events ever recorded (including evicted ones).
    recorded: u64,
    enabled: bool,
}

impl Trace {
    /// A tracer retaining the last `cap` events. A zero capacity disables
    /// recording entirely.
    pub fn new(cap: usize) -> Self {
        Trace {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            recorded: 0,
            enabled: cap > 0,
        }
    }

    /// A disabled tracer (records nothing, costs nothing).
    pub fn disabled() -> Self {
        Trace::new(0)
    }

    /// True if recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pauses/resumes recording without clearing the buffer.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on && self.cap > 0;
    }

    /// Records an event (no-op when disabled).
    pub fn record(
        &mut self,
        at: SimTime,
        node: NodeId,
        kind: &'static str,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceEvent {
            at,
            node,
            kind,
            detail: detail.into(),
        });
        self.recorded += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (retained + evicted).
    pub fn recorded_total(&self) -> u64 {
        self.recorded
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Retained events at `node`, oldest-first.
    pub fn for_node(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.buf.iter().filter(|e| e.node == node).collect()
    }

    /// Retained events of the given kind, oldest-first.
    pub fn of_kind(&self, kind: &str) -> Vec<&TraceEvent> {
        self.buf.iter().filter(|e| e.kind == kind).collect()
    }

    /// Renders the retained tail as text, one event per line.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.buf {
            let _ = writeln!(out, "[{}] {} {:>8}: {}", e.at, e.node, e.kind, e.detail);
        }
        out
    }

    /// Drops all retained events (the total keeps counting).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> (SimTime, NodeId) {
        (SimTime::from_secs(t), NodeId(t as u32 % 4))
    }

    #[test]
    fn records_and_iterates_in_order() {
        let mut tr = Trace::new(10);
        for t in 0..5 {
            let (at, node) = ev(t);
            tr.record(at, node, "deliver", format!("msg{t}"));
        }
        assert_eq!(tr.len(), 5);
        assert_eq!(tr.recorded_total(), 5);
        let kinds: Vec<_> = tr.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(kinds, vec!["msg0", "msg1", "msg2", "msg3", "msg4"]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::new(3);
        for t in 0..10 {
            let (at, node) = ev(t);
            tr.record(at, node, "timer", t.to_string());
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.recorded_total(), 10);
        let details: Vec<_> = tr.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["7", "8", "9"]);
    }

    #[test]
    fn filters_by_node_and_kind() {
        let mut tr = Trace::new(100);
        tr.record(SimTime::ZERO, NodeId(1), "join", "");
        tr.record(SimTime::ZERO, NodeId(2), "join", "");
        tr.record(SimTime::ZERO, NodeId(1), "deliver", "x");
        assert_eq!(tr.for_node(NodeId(1)).len(), 2);
        assert_eq!(tr.of_kind("join").len(), 2);
        assert_eq!(tr.of_kind("deliver").len(), 1);
    }

    #[test]
    fn disabled_tracer_is_free() {
        let mut tr = Trace::disabled();
        assert!(!tr.is_enabled());
        tr.record(SimTime::ZERO, NodeId(0), "deliver", "x");
        assert!(tr.is_empty());
        assert_eq!(tr.recorded_total(), 0);
    }

    #[test]
    fn pause_and_resume() {
        let mut tr = Trace::new(10);
        tr.record(SimTime::ZERO, NodeId(0), "a", "");
        tr.set_enabled(false);
        tr.record(SimTime::ZERO, NodeId(0), "b", "");
        tr.set_enabled(true);
        tr.record(SimTime::ZERO, NodeId(0), "c", "");
        let kinds: Vec<_> = tr.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["a", "c"]);
    }

    #[test]
    fn zero_capacity_cannot_be_enabled() {
        let mut tr = Trace::new(0);
        tr.set_enabled(true);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn dump_and_clear() {
        let mut tr = Trace::new(10);
        tr.record(SimTime::from_millis(1500), NodeId(3), "drop", "dead dest");
        let d = tr.dump();
        assert!(d.contains("N3"));
        assert!(d.contains("drop"));
        assert!(d.contains("dead dest"));
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.recorded_total(), 1);
    }
}
