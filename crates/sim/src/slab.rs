//! Struct-of-arrays slabs for per-node protocol state.
//!
//! At N = 100k nodes, giving every node its own `HashMap` / `Vec` turns the
//! per-node bookkeeping (pending-request tables, neighbor lists, client
//! lists) into hundreds of thousands of small heap allocations: slow to
//! build, slow to walk, and a large constant factor of live bytes in
//! allocator overhead. The two containers here pool that state for *all*
//! nodes into a handful of flat arrays indexed by `u32` handles:
//!
//! * [`SlotTable`] — one small key→value table per owner, packed into a
//!   fixed-stride segment of two parallel arrays. Built for tables whose
//!   occupancy is tiny and bounded (a node's in-flight fetches, capped by
//!   `max_inflight`): lookups are linear scans over a handful of adjacent
//!   slots, which beats hashing at these sizes and allocates nothing after
//!   construction (the stride doubles — one realloc — in the rare case an
//!   owner outgrows it).
//! * [`ListSlab`] — one insertion-ordered list per owner, as linked chains
//!   through a shared element pool with an internal free list (mesh
//!   neighbor sets, a coordinator's client roster).
//!
//! Both are deterministic by construction: contents and iteration order
//! depend only on the operation sequence, never on addresses or hash
//! seeds, so converting a protocol onto them must not move a single event
//! (the trace-digest gates in `dco-perf` hold across the conversion).

/// A pool of small per-owner key→value tables in two flat parallel arrays.
///
/// Owner `o`'s entries live packed (unordered) in
/// `keys[o * stride .. o * stride + len[o]]` and the matching `vals` slots.
/// Not a map for big tables — every probe is a linear scan of the owner's
/// segment — but for the single-digit occupancies it is built for, the
/// scan is a couple of cache lines with no hashing and no per-owner
/// allocation.
#[derive(Clone, Debug)]
pub struct SlotTable<V: Copy + Default> {
    stride: usize,
    keys: Vec<u32>,
    vals: Vec<V>,
    lens: Vec<u32>,
}

impl<V: Copy + Default> SlotTable<V> {
    /// A table pool for `owners` owners, `stride` slots each (rounded up
    /// to 1; doubles automatically if an owner outgrows it).
    pub fn new(owners: usize, stride: usize) -> Self {
        let stride = stride.max(1);
        SlotTable {
            stride,
            keys: vec![0; owners * stride],
            vals: vec![V::default(); owners * stride],
            lens: vec![0; owners],
        }
    }

    /// Number of owners.
    pub fn owners(&self) -> usize {
        self.lens.len()
    }

    /// Current slots per owner.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Entries held by `owner`.
    pub fn len(&self, owner: usize) -> usize {
        self.lens[owner] as usize
    }

    /// True if `owner` holds no entries.
    pub fn is_empty(&self, owner: usize) -> bool {
        self.lens[owner] == 0
    }

    /// Position of `key` within `owner`'s packed segment.
    #[inline]
    fn find(&self, owner: usize, key: u32) -> Option<usize> {
        let base = owner * self.stride;
        let len = self.lens[owner] as usize;
        self.keys[base..base + len]
            .iter()
            .position(|&k| k == key)
            .map(|i| base + i)
    }

    /// True if `owner` has an entry for `key`.
    #[inline]
    pub fn contains(&self, owner: usize, key: u32) -> bool {
        self.find(owner, key).is_some()
    }

    /// The value `owner` maps `key` to, if present.
    #[inline]
    pub fn get(&self, owner: usize, key: u32) -> Option<V> {
        self.find(owner, key).map(|i| self.vals[i])
    }

    /// Inserts `key → val` for `owner`, returning the value it replaced.
    pub fn insert(&mut self, owner: usize, key: u32, val: V) -> Option<V> {
        if let Some(i) = self.find(owner, key) {
            return Some(core::mem::replace(&mut self.vals[i], val));
        }
        if self.lens[owner] as usize == self.stride {
            self.grow_stride();
        }
        let i = owner * self.stride + self.lens[owner] as usize;
        self.keys[i] = key;
        self.vals[i] = val;
        self.lens[owner] += 1;
        None
    }

    /// Removes `owner`'s entry for `key`, returning its value.
    pub fn remove(&mut self, owner: usize, key: u32) -> Option<V> {
        let i = self.find(owner, key)?;
        let last = owner * self.stride + self.lens[owner] as usize - 1;
        let val = self.vals[i];
        // Packed segment: swap the last entry into the hole.
        self.keys[i] = self.keys[last];
        self.vals[i] = self.vals[last];
        self.lens[owner] -= 1;
        Some(val)
    }

    /// Drops all of `owner`'s entries (O(1): the segment is length-tracked).
    pub fn clear(&mut self, owner: usize) {
        self.lens[owner] = 0;
    }

    /// Keeps only `owner`'s entries for which `f(key, value)` holds.
    ///
    /// Removal uses the same swap-from-the-end compaction as
    /// [`SlotTable::remove`], so the segment's *internal* order may change —
    /// callers must treat the table as unordered (every current caller
    /// does; the per-entry decisions are independent of position).
    pub fn retain(&mut self, owner: usize, mut f: impl FnMut(u32, V) -> bool) {
        let base = owner * self.stride;
        let mut i = 0;
        while i < self.lens[owner] as usize {
            if f(self.keys[base + i], self.vals[base + i]) {
                i += 1;
            } else {
                let last = base + self.lens[owner] as usize - 1;
                self.keys[base + i] = self.keys[last];
                self.vals[base + i] = self.vals[last];
                self.lens[owner] -= 1;
            }
        }
    }

    /// Grows the pool to at least `owners` owners (new owners start empty).
    /// Existing segments are untouched: owner segments are laid out
    /// contiguously, so appending owners only extends the arrays.
    pub fn grow_owners(&mut self, owners: usize) {
        if owners > self.lens.len() {
            self.keys.resize(owners * self.stride, 0);
            self.vals.resize(owners * self.stride, V::default());
            self.lens.resize(owners, 0);
        }
    }

    /// Doubles every owner's segment. Rare by design — occupancy is meant
    /// to be bounded well below the initial stride.
    fn grow_stride(&mut self) {
        let new_stride = self.stride * 2;
        let owners = self.lens.len();
        let mut keys = vec![0u32; owners * new_stride];
        let mut vals = vec![V::default(); owners * new_stride];
        for o in 0..owners {
            let len = self.lens[o] as usize;
            let (src, dst) = (o * self.stride, o * new_stride);
            keys[dst..dst + len].copy_from_slice(&self.keys[src..src + len]);
            vals[dst..dst + len].copy_from_slice(&self.vals[src..src + len]);
        }
        self.stride = new_stride;
        self.keys = keys;
        self.vals = vals;
    }
}

const NIL: u32 = u32::MAX;

/// A pool of per-owner insertion-ordered `u32` lists: linked chains through
/// one shared element arena with an internal free list.
///
/// `push_back` appends in O(1); `remove` unlinks the first match with a
/// walk, preserving the order of the rest — exactly the semantics of the
/// `Vec<NodeId>` + `retain` idiom it replaces, without one heap allocation
/// per owner.
#[derive(Clone, Debug)]
pub struct ListSlab {
    heads: Vec<u32>,
    tails: Vec<u32>,
    lens: Vec<u32>,
    /// Element pool: `vals[i]` / `next[i]`; unused slots are chained on
    /// `free`.
    vals: Vec<u32>,
    next: Vec<u32>,
    free: u32,
}

impl ListSlab {
    /// An empty list pool for `owners` owners, with room for `capacity`
    /// elements before the pool reallocates.
    pub fn new(owners: usize, capacity: usize) -> Self {
        ListSlab {
            heads: vec![NIL; owners],
            tails: vec![NIL; owners],
            lens: vec![0; owners],
            vals: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            free: NIL,
        }
    }

    /// Number of owners.
    pub fn owners(&self) -> usize {
        self.heads.len()
    }

    /// Elements in `owner`'s list.
    pub fn len(&self, owner: usize) -> usize {
        self.lens[owner] as usize
    }

    /// True if `owner`'s list is empty.
    pub fn is_empty(&self, owner: usize) -> bool {
        self.lens[owner] == 0
    }

    fn alloc(&mut self, val: u32) -> u32 {
        if self.free != NIL {
            let i = self.free;
            self.free = self.next[i as usize];
            self.vals[i as usize] = val;
            self.next[i as usize] = NIL;
            i
        } else {
            self.vals.push(val);
            self.next.push(NIL);
            (self.vals.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.next[i as usize] = self.free;
        self.free = i;
    }

    /// Appends `val` to `owner`'s list (no dedup — pair with
    /// [`ListSlab::contains`] for set semantics).
    pub fn push_back(&mut self, owner: usize, val: u32) {
        let i = self.alloc(val);
        match self.tails[owner] {
            NIL => self.heads[owner] = i,
            t => self.next[t as usize] = i,
        }
        self.tails[owner] = i;
        self.lens[owner] += 1;
    }

    /// True if `owner`'s list contains `val`.
    pub fn contains(&self, owner: usize, val: u32) -> bool {
        self.iter(owner).any(|v| v == val)
    }

    /// Unlinks the first occurrence of `val` in `owner`'s list, preserving
    /// the order of the remaining elements. Returns whether anything was
    /// removed.
    pub fn remove(&mut self, owner: usize, val: u32) -> bool {
        let mut prev = NIL;
        let mut cur = self.heads[owner];
        while cur != NIL {
            if self.vals[cur as usize] == val {
                let after = self.next[cur as usize];
                if prev == NIL {
                    self.heads[owner] = after;
                } else {
                    self.next[prev as usize] = after;
                }
                if self.tails[owner] == cur {
                    self.tails[owner] = prev;
                }
                self.lens[owner] -= 1;
                self.release(cur);
                return true;
            }
            prev = cur;
            cur = self.next[cur as usize];
        }
        false
    }

    /// Empties `owner`'s list, returning its elements to the pool.
    pub fn clear(&mut self, owner: usize) {
        let mut cur = self.heads[owner];
        while cur != NIL {
            let after = self.next[cur as usize];
            self.release(cur);
            cur = after;
        }
        self.heads[owner] = NIL;
        self.tails[owner] = NIL;
        self.lens[owner] = 0;
    }

    /// Iterates `owner`'s list in insertion order.
    pub fn iter(&self, owner: usize) -> ListIter<'_> {
        ListIter {
            slab: self,
            cur: self.heads[owner],
        }
    }
}

/// Iterator over one [`ListSlab`] list, in insertion order.
pub struct ListIter<'a> {
    slab: &'a ListSlab,
    cur: u32,
}

impl Iterator for ListIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let v = self.slab.vals[self.cur as usize];
        self.cur = self.slab.next[self.cur as usize];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_table_map_semantics() {
        let mut t: SlotTable<u32> = SlotTable::new(3, 2);
        assert_eq!(t.owners(), 3);
        assert!(t.is_empty(1));
        assert_eq!(t.insert(1, 10, 100), None);
        assert_eq!(t.insert(1, 20, 200), None);
        assert_eq!(t.insert(1, 10, 111), Some(100), "replace returns old");
        assert_eq!(t.len(1), 2);
        assert_eq!(t.get(1, 10), Some(111));
        assert_eq!(t.get(1, 99), None);
        assert!(t.contains(1, 20));
        assert!(!t.contains(0, 10), "owners are isolated");
        assert_eq!(t.remove(1, 10), Some(111));
        assert_eq!(t.remove(1, 10), None);
        assert_eq!(t.len(1), 1);
        t.clear(1);
        assert!(t.is_empty(1));
        assert!(!t.contains(1, 20));
    }

    #[test]
    fn slot_table_grows_stride_on_overflow() {
        let mut t: SlotTable<u32> = SlotTable::new(2, 2);
        t.insert(0, 1, 1);
        t.insert(1, 9, 9);
        for k in 2..20u32 {
            t.insert(0, k, k * 10);
        }
        assert!(t.stride() >= 19, "stride doubled past demand");
        assert_eq!(t.len(0), 19);
        for k in 2..20u32 {
            assert_eq!(t.get(0, k), Some(k * 10), "survived relayout");
        }
        assert_eq!(t.get(1, 9), Some(9), "other owners survived relayout");
    }

    #[test]
    fn slot_table_retain_filters_per_owner() {
        let mut t: SlotTable<u32> = SlotTable::new(2, 8);
        for k in 0..6u32 {
            t.insert(0, k, k * 10);
        }
        t.insert(1, 99, 1);
        t.retain(0, |k, v| {
            assert_eq!(v, k * 10, "value paired with its key");
            k % 2 == 0
        });
        assert_eq!(t.len(0), 3);
        for k in [0u32, 2, 4] {
            assert_eq!(t.get(0, k), Some(k * 10), "kept key {k}");
        }
        for k in [1u32, 3, 5] {
            assert_eq!(t.get(0, k), None, "dropped key {k}");
        }
        assert_eq!(t.get(1, 99), Some(1), "other owners untouched");
        t.retain(0, |_, _| false);
        assert!(t.is_empty(0));
    }

    #[test]
    fn slot_table_grow_owners_preserves_segments() {
        let mut t: SlotTable<u32> = SlotTable::new(2, 4);
        t.insert(0, 7, 70);
        t.insert(1, 8, 80);
        t.grow_owners(5);
        assert_eq!(t.owners(), 5);
        assert_eq!(t.get(0, 7), Some(70));
        assert_eq!(t.get(1, 8), Some(80));
        assert!(t.is_empty(4));
        t.insert(4, 1, 11);
        assert_eq!(t.get(4, 1), Some(11));
        t.grow_owners(3); // shrink request is a no-op
        assert_eq!(t.owners(), 5);
    }

    #[test]
    fn slot_table_unit_values_work_as_a_set() {
        let mut s: SlotTable<()> = SlotTable::new(2, 4);
        assert_eq!(s.insert(0, 7, ()), None);
        assert_eq!(s.insert(0, 7, ()), Some(()));
        assert!(s.contains(0, 7));
        assert_eq!(s.remove(0, 7), Some(()));
        assert!(!s.contains(0, 7));
    }

    #[test]
    fn list_slab_preserves_insertion_order() {
        let mut l = ListSlab::new(2, 4);
        for v in [5u32, 3, 9, 3] {
            l.push_back(0, v);
        }
        l.push_back(1, 42);
        assert_eq!(l.iter(0).collect::<Vec<_>>(), vec![5, 3, 9, 3]);
        assert_eq!(l.iter(1).collect::<Vec<_>>(), vec![42]);
        assert_eq!(l.len(0), 4);
        assert!(l.contains(0, 9));
        assert!(!l.contains(1, 9));
    }

    #[test]
    fn list_slab_remove_unlinks_first_match_only() {
        let mut l = ListSlab::new(1, 4);
        for v in [5u32, 3, 9, 3] {
            l.push_back(0, v);
        }
        assert!(l.remove(0, 3));
        assert_eq!(l.iter(0).collect::<Vec<_>>(), vec![5, 9, 3]);
        assert!(l.remove(0, 5), "head removal");
        assert!(l.remove(0, 3), "tail removal");
        assert_eq!(l.iter(0).collect::<Vec<_>>(), vec![9]);
        assert!(!l.remove(0, 77));
        // Tail pointer still valid after tail removal.
        l.push_back(0, 8);
        assert_eq!(l.iter(0).collect::<Vec<_>>(), vec![9, 8]);
    }

    #[test]
    fn list_slab_reuses_freed_slots() {
        let mut l = ListSlab::new(2, 8);
        for v in 0..6u32 {
            l.push_back(0, v);
        }
        let pool = l.vals.len();
        l.clear(0);
        assert!(l.is_empty(0));
        for v in 10..16u32 {
            l.push_back(1, v);
        }
        assert_eq!(l.vals.len(), pool, "freed slots recycled, no growth");
        assert_eq!(l.iter(1).collect::<Vec<_>>(), vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn list_slab_interleaved_owners_stay_isolated() {
        let mut l = ListSlab::new(3, 2);
        for i in 0..30u32 {
            l.push_back((i % 3) as usize, i);
        }
        for o in 0..3usize {
            let got: Vec<u32> = l.iter(o).collect();
            let want: Vec<u32> = (0..30).filter(|i| (*i % 3) as usize == o).collect();
            assert_eq!(got, want, "owner {o}");
        }
        l.remove(1, 4);
        assert_eq!(l.len(1), 9);
        assert_eq!(l.len(0), 10);
    }
}
