//! Node identity and liveness tracking.
//!
//! Nodes are identified by a dense `u32` index assigned at creation. Dense
//! indices let every per-node table in the engine (bandwidth pipes, RNG
//! streams, liveness bits) be a flat `Vec` with O(1) access — there is no
//! hashing on the hot path.

use core::fmt;

/// A dense node identifier.
///
/// `NodeId(0)` is conventionally the channel server in streaming scenarios,
/// but the engine itself attaches no meaning to any particular index.
/// `Default` (node 0) exists only so `NodeId` satisfies container bounds
/// like [`crate::smallvec::SmallVec`]'s `Copy + Default`.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A compact liveness bitmap over dense node indices.
///
/// The engine flips a node's bit on join/leave; message delivery to a dead
/// node is silently dropped (protocols observe the loss through their own
/// timeouts, exactly as a real deployment would).
#[derive(Clone, Debug, Default)]
pub struct AliveSet {
    bits: Vec<u64>,
    len: usize,
    alive: usize,
}

impl AliveSet {
    /// An empty set sized for `n` nodes, all initially **dead**.
    pub fn new(n: usize) -> Self {
        AliveSet {
            bits: vec![0; n.div_ceil(64)],
            len: n,
            alive: 0,
        }
    }

    /// Number of node slots tracked.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of nodes currently alive.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Grows the set to track at least `n` nodes (new slots are dead).
    pub fn grow(&mut self, n: usize) {
        if n > self.len {
            self.bits.resize(n.div_ceil(64), 0);
            self.len = n;
        }
    }

    /// True if `node` is within range and alive.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        let i = node.index();
        i < self.len && (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks `node` alive. Returns `true` if the state changed.
    pub fn set_alive(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.len, "node {node} out of range ({})", self.len);
        let mask = 1u64 << (i % 64);
        let w = &mut self.bits[i / 64];
        if *w & mask == 0 {
            *w |= mask;
            self.alive += 1;
            true
        } else {
            false
        }
    }

    /// Marks `node` dead. Returns `true` if the state changed.
    pub fn set_dead(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.len, "node {node} out of range ({})", self.len);
        let mask = 1u64 << (i % 64);
        let w = &mut self.bits[i / 64];
        if *w & mask != 0 {
            *w &= !mask;
            self.alive -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over the indices of all alive nodes, in increasing order.
    pub fn iter_alive(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            core::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(NodeId((wi * 64) as u32 + b))
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_formatting() {
        assert_eq!(format!("{}", NodeId(7)), "N7");
        assert_eq!(format!("{:?}", NodeId(7)), "N7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(NodeId(9).index(), 9);
    }

    #[test]
    fn alive_set_basic() {
        let mut s = AliveSet::new(130);
        assert_eq!(s.capacity(), 130);
        assert_eq!(s.alive_count(), 0);
        assert!(!s.is_alive(NodeId(0)));

        assert!(s.set_alive(NodeId(0)));
        assert!(s.set_alive(NodeId(64)));
        assert!(s.set_alive(NodeId(129)));
        assert!(!s.set_alive(NodeId(0)), "idempotent set_alive");
        assert_eq!(s.alive_count(), 3);
        assert!(s.is_alive(NodeId(64)));

        assert!(s.set_dead(NodeId(64)));
        assert!(!s.set_dead(NodeId(64)), "idempotent set_dead");
        assert_eq!(s.alive_count(), 2);
        assert!(!s.is_alive(NodeId(64)));
    }

    #[test]
    fn alive_set_out_of_range_is_dead() {
        let s = AliveSet::new(4);
        assert!(!s.is_alive(NodeId(100)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alive_set_panics_on_oob_write() {
        let mut s = AliveSet::new(4);
        s.set_alive(NodeId(4));
    }

    #[test]
    fn alive_set_grow() {
        let mut s = AliveSet::new(2);
        s.set_alive(NodeId(1));
        s.grow(100);
        assert!(s.is_alive(NodeId(1)));
        assert!(!s.is_alive(NodeId(99)));
        s.set_alive(NodeId(99));
        assert_eq!(s.alive_count(), 2);
    }

    #[test]
    fn alive_set_iteration_order() {
        let mut s = AliveSet::new(200);
        for i in [5u32, 0, 63, 64, 65, 199, 128] {
            s.set_alive(NodeId(i));
        }
        let got: Vec<u32> = s.iter_alive().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 128, 199]);
    }
}
