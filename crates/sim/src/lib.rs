//! # dco-sim — deterministic discrete-event network simulator
//!
//! This crate is the substrate everything else in the DCO workspace runs on.
//! It plays the role P2PSim played for the original paper: a single-threaded,
//! seeded, microsecond-resolution discrete-event engine with an access-link
//! bandwidth model.
//!
//! ## Architecture
//!
//! ```text
//!  ┌────────────────────────────────────────────────────┐
//!  │ Simulator<P: Protocol>                             │
//!  │  ┌──────────┐  ┌─────────────────────────────────┐ │
//!  │  │ Protocol │  │ SimCore                         │ │
//!  │  │ (all node│  │  clock · EventQueue · Network   │ │
//!  │  │  state)  │←→│  AliveSet · Counters · RngHub   │ │
//!  │  └──────────┘  └─────────────────────────────────┘ │
//!  └────────────────────────────────────────────────────┘
//! ```
//!
//! * [`engine::Protocol`] — implement this for a distributed algorithm; the
//!   implementor owns every node's state and the engine routes events to it.
//! * [`engine::Simulator`] — the run loop; [`engine::Ctx`] is the handle the
//!   protocol uses to send messages, arm timers and query the network.
//! * [`net::Network`] — per-node upload/download FIFO pipes plus a latency
//!   model and fault injection; this is where the paper's bandwidth
//!   constraints (600 kbps peers, 4000 kbps server) live.
//! * [`counters::Counters`] — the "extra overhead" bookkeeping used by the
//!   paper's Figures 8–10.
//!
//! ## Determinism
//!
//! All randomness flows from one `u64` master seed through [`rng::RngHub`];
//! the event calendar is stable (FIFO at equal timestamps); the clock is
//! integer microseconds. Two runs with the same protocol, inputs and seed
//! produce bit-identical results on any platform.
//!
//! ## Example
//!
//! ```
//! use dco_sim::prelude::*;
//!
//! /// Every node greets node 0 once at join time.
//! struct Hello { greetings: u64 }
//!
//! impl Protocol for Hello {
//!     type Msg = &'static str;
//!     type Timer = ();
//!     fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
//!         if node != NodeId(0) {
//!             ctx.send_control(node, NodeId(0), "hi", "greeting");
//!         }
//!     }
//!     fn on_message(&mut self, _: NodeId, _: NodeId, _: &'static str, _: &mut Ctx<'_, Self>) {
//!         self.greetings += 1;
//!     }
//!     fn on_timer(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
//! }
//!
//! let mut sim = Simulator::new(Hello { greetings: 0 }, NetConfig::default(), 42);
//! for _ in 0..4 {
//!     let id = sim.add_node(NodeCaps::peer_default());
//!     sim.schedule_join(id, SimTime::ZERO);
//! }
//! sim.run();
//! assert_eq!(sim.protocol().greetings, 3);
//! ```

// `deny`, not `forbid`: the counting global allocator in [`counters::perf`]
// is the one place the crate needs `unsafe` (the `GlobalAlloc` trait is
// unsafe by definition) and carries a scoped `allow` with its safety
// argument. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod engine;
pub mod msg;
pub mod net;
pub mod node;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod smallvec;
pub mod time;
pub mod trace;
pub mod wire;

/// One-stop imports for protocol implementors.
pub mod prelude {
    pub use crate::counters::Counters;
    pub use crate::engine::{Ctx, EngineStats, Protocol, Simulator};
    pub use crate::msg::{MsgClass, SizeBits};
    pub use crate::net::{FaultPlan, Kbps, LatencyModel, NetConfig, NodeCaps};
    pub use crate::node::NodeId;
    pub use crate::rng::RngHub;
    pub use crate::time::{SimDuration, SimTime};
}
