//! Message classification and sizing.
//!
//! The paper's evaluation distinguishes two traffic classes:
//!
//! * **Data** — the 300 kb video chunks themselves. Data transfers contend
//!   for the sender's upload pipe and the receiver's download pipe and are
//!   *not* counted as "extra overhead".
//! * **Control** — everything else: buffer-map exchanges, chunk requests,
//!   DHT `Lookup`/`Insert` messages and their per-hop forwards, provider
//!   responses. Each control transmission is one *unit of extra overhead*
//!   (§IV, metric 3). Control messages are small, so by default they incur
//!   only propagation latency and do not occupy pipe bandwidth.

use core::fmt;

/// Traffic class of a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Video payload; contends for bandwidth, not counted as overhead.
    Data,
    /// Signalling; counted as one unit of extra overhead per transmission.
    Control,
}

impl MsgClass {
    /// True for [`MsgClass::Control`].
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, MsgClass::Control)
    }

    /// True for [`MsgClass::Data`].
    #[inline]
    pub fn is_data(self) -> bool {
        matches!(self, MsgClass::Data)
    }
}

/// A message size in **bits** (the paper works in kilobits: a chunk is
/// 300 kb = 300,000 bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SizeBits(pub u64);

impl SizeBits {
    /// Zero-length message (pure signalling).
    pub const ZERO: SizeBits = SizeBits(0);

    /// Builds a size from kilobits (1 kb = 1000 bits, as in "300 kb chunk").
    #[inline]
    pub const fn from_kilobits(kb: u64) -> Self {
        SizeBits(kb * 1_000)
    }

    /// Builds a size from bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        SizeBits(bytes * 8)
    }

    /// Raw bit count.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Size in kilobits, truncating.
    #[inline]
    pub const fn kilobits(self) -> u64 {
        self.0 / 1_000
    }

    /// True if the message carries no payload bits.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for SizeBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl fmt::Display for SizeBits {
    // `u32::is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.75.
    #[allow(clippy::manual_is_multiple_of)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0 % 1_000 == 0 {
            write!(f, "{}kb", self.0 / 1_000)
        } else {
            write!(f, "{}b", self.0)
        }
    }
}

/// Byte size used for control messages when the configuration charges them
/// to the pipes (off by default; see `NetConfig::control_uses_bandwidth`).
pub const DEFAULT_CONTROL_BYTES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(MsgClass::Control.is_control());
        assert!(!MsgClass::Control.is_data());
        assert!(MsgClass::Data.is_data());
        assert!(!MsgClass::Data.is_control());
    }

    #[test]
    fn size_conversions() {
        assert_eq!(SizeBits::from_kilobits(300).bits(), 300_000);
        assert_eq!(SizeBits::from_bytes(10).bits(), 80);
        assert_eq!(SizeBits::from_kilobits(300).kilobits(), 300);
        assert!(SizeBits::ZERO.is_zero());
        assert!(!SizeBits::from_bytes(1).is_zero());
    }

    #[test]
    fn size_display() {
        assert_eq!(format!("{}", SizeBits::from_kilobits(300)), "300kb");
        assert_eq!(format!("{}", SizeBits(42)), "42b");
        assert_eq!(format!("{:?}", SizeBits(42)), "42b");
    }
}
