//! The discrete-event engine.
//!
//! A [`Simulator`] owns a user-supplied [`Protocol`] (the distributed
//! algorithm under test, holding *all* nodes' state) and a [`SimCore`] (the
//! clock, calendar, network substrate, liveness map, RNGs and counters). The
//! run loop pops events in `(time, insertion)` order and dispatches them to
//! the protocol through a [`Ctx`] handle, which is how the protocol sends
//! messages, sets timers and queries the network.
//!
//! # Liveness semantics
//!
//! * **Join** — the node's pipes are reset, its liveness bit set, then
//!   [`Protocol::on_join`] runs.
//! * **Graceful leave** — [`Protocol::on_leave`] runs *while the node is
//!   still alive* (so it can send farewell messages, as DCO's departure
//!   protocol requires), then the bit is cleared.
//! * **Abrupt failure** — the bit is cleared *first*, then `on_leave` runs
//!   purely for internal cleanup; any send the protocol attempts from the
//!   dead node is suppressed, modelling a crash with no goodbye.
//! * Messages **to** a dead node are dropped (the sender only learns through
//!   its own timeouts). Messages already in flight when the *sender* dies are
//!   still delivered. Timers on dead nodes are skipped.

use core::fmt;

use crate::counters::Counters;
use crate::msg::{MsgClass, SizeBits};
use crate::net::{Kbps, NetConfig, Network, NodeCaps, Transmit};
use crate::node::{AliveSet, NodeId};
use crate::queue::EventQueue;
use crate::rng::{splitmix64, RngHub, SimRng};
use crate::time::{SimDuration, SimTime};

/// A distributed algorithm driven by the engine.
///
/// The implementor owns the state of *every* node (typically a
/// `Vec<PerNodeState>` indexed by [`NodeId`]); the engine tells it which node
/// an event is for.
pub trait Protocol: Sized {
    /// The protocol's wire message type.
    ///
    /// Deliberately *not* `Clone`-bounded: the engine moves each message
    /// from send to delivery exactly once, so fan-out payloads can be
    /// shared behind an `Rc` instead of deep-copied per neighbor.
    type Msg: fmt::Debug;
    /// The protocol's timer token type.
    type Timer: Clone + fmt::Debug;

    /// `node` just joined (or re-joined) the overlay.
    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>);

    /// `node` received `msg` from `from`.
    fn on_message(&mut self, node: NodeId, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self>);

    /// A timer set by `node` fired.
    fn on_timer(&mut self, node: NodeId, timer: Self::Timer, ctx: &mut Ctx<'_, Self>);

    /// `node` is leaving. If `graceful` the node is still alive and may send
    /// farewell messages; if not it is already dead and sends are suppressed.
    fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
        let _ = (node, graceful, ctx);
    }
}

/// Internal calendar entries.
enum Event<P: Protocol> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
    },
    Timer {
        node: NodeId,
        timer: P::Timer,
    },
    Join {
        node: NodeId,
    },
    Leave {
        node: NodeId,
        graceful: bool,
    },
}

/// Engine-level statistics (orthogonal to protocol metrics).
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Events dispatched so far.
    pub events_processed: u64,
    /// Timers that fired on live nodes.
    pub timers_fired: u64,
    /// Timers silently skipped because the node was dead.
    pub timers_skipped_dead: u64,
    /// Sends suppressed because the sender was dead.
    pub sends_from_dead: u64,
}

/// Everything the engine owns besides the protocol itself.
pub struct SimCore<P: Protocol> {
    clock: SimTime,
    queue: EventQueue<Event<P>>,
    net: Network,
    alive: AliveSet,
    counters: Counters,
    rng: SimRng,
    hub: RngHub,
    stats: EngineStats,
    /// Running structural digest of every dispatched event; see
    /// [`Simulator::trace_digest`].
    digest: u64,
}

/// The handle protocols use to act on the world.
pub struct Ctx<'a, P: Protocol> {
    core: &'a mut SimCore<P>,
}

impl<P: Protocol> Ctx<'_, P> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// Sends a zero-size control message, counting one unit of extra
    /// overhead under `tag`. No-op if the sender is dead; silently dropped
    /// (after counting) if the receiver is dead at delivery time.
    pub fn send_control(&mut self, from: NodeId, to: NodeId, msg: P::Msg, tag: &'static str) {
        self.send_control_sized(from, to, msg, tag, SizeBits::ZERO)
    }

    /// Sends a control message with an explicit size (only relevant when the
    /// network is configured to charge control traffic to the pipes).
    pub fn send_control_sized(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        tag: &'static str,
        size: SizeBits,
    ) {
        let core = &mut *self.core;
        if !core.alive.is_alive(from) {
            core.stats.sends_from_dead += 1;
            return;
        }
        core.counters.record_control(core.clock, tag);
        match core
            .net
            .transmit(core.clock, from, to, MsgClass::Control, size, &mut core.rng)
        {
            Transmit::Deliver(at) => core.queue.push(at, Event::Deliver { from, to, msg }),
            Transmit::Dropped => core.counters.record_dropped_fault(),
        }
    }

    /// Sends a data (chunk) message of `size` bits through both access
    /// pipes. Not counted as overhead. No-op if the sender is dead.
    pub fn send_data(&mut self, from: NodeId, to: NodeId, msg: P::Msg, size: SizeBits) {
        let core = &mut *self.core;
        if !core.alive.is_alive(from) {
            core.stats.sends_from_dead += 1;
            return;
        }
        core.counters.record_data();
        match core
            .net
            .transmit(core.clock, from, to, MsgClass::Data, size, &mut core.rng)
        {
            Transmit::Deliver(at) => core.queue.push(at, Event::Deliver { from, to, msg }),
            Transmit::Dropped => core.counters.record_dropped_fault(),
        }
    }

    /// Arms a timer for `node` to fire after `delay`.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, timer: P::Timer) {
        let at = self.core.clock.saturating_add(delay);
        self.core.queue.push(at, Event::Timer { node, timer });
    }

    /// Arms a timer for `node` at an absolute instant (clamped to now).
    pub fn set_timer_at(&mut self, node: NodeId, at: SimTime, timer: P::Timer) {
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Timer { node, timer });
    }

    /// Schedules `node` to join at absolute time `at`.
    pub fn schedule_join(&mut self, node: NodeId, at: SimTime) {
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Join { node });
    }

    /// Schedules `node` to leave at absolute time `at`.
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime, graceful: bool) {
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Leave { node, graceful });
    }

    /// True if `node` is currently alive.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive.is_alive(node)
    }

    /// Number of currently alive nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.core.alive.alive_count()
    }

    /// Total registered nodes (alive or not).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.core.net.len()
    }

    /// The engine's RNG (deterministic given the seed and event order).
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// The seed hub, for protocols wanting private per-node streams.
    #[inline]
    pub fn hub(&self) -> RngHub {
        self.core.hub
    }

    /// Spare upload capacity of `node` averaged over `horizon`.
    pub fn available_upload(&self, node: NodeId, horizon: SimDuration) -> Kbps {
        self.core
            .net
            .available_upload(node, self.core.clock, horizon)
    }

    /// Queueing delay currently ahead of `node`'s upload pipe.
    pub fn upload_backlog(&self, node: NodeId) -> SimDuration {
        self.core.net.upload_backlog(node, self.core.clock)
    }

    /// Queueing delay currently ahead of `node`'s download pipe.
    pub fn download_backlog(&self, node: NodeId) -> SimDuration {
        self.core.net.download_backlog(node, self.core.clock)
    }

    /// Configured upload rate of `node`.
    pub fn upload_rate(&self, node: NodeId) -> Kbps {
        self.core.net.upload_rate(node)
    }

    /// Configured download rate of `node`.
    pub fn download_rate(&self, node: NodeId) -> Kbps {
        self.core.net.download_rate(node)
    }

    /// Read access to the overhead counters.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }
}

/// Seed of the running trace digest (FNV-1a 64-bit offset basis).
const TRACE_DIGEST_INIT: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds one word into a trace digest.
#[inline]
fn fold(digest: u64, word: u64) -> u64 {
    splitmix64(digest ^ word)
}

/// The simulator: protocol + engine core + run loop.
pub struct Simulator<P: Protocol> {
    core: SimCore<P>,
    protocol: P,
    /// Hard cap on dispatched events; `run*` panics past it (runaway guard).
    max_events: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator around `protocol` with the given network
    /// configuration and master seed.
    pub fn new(protocol: P, net_cfg: NetConfig, seed: u64) -> Self {
        Self::with_capacity(protocol, net_cfg, seed, 0)
    }

    /// Like [`Simulator::new`] but with a population capacity hint:
    /// pre-sizes the network's per-node tables and the event calendar's
    /// active heap so scenario installation doesn't regrow them
    /// incrementally. Purely an allocation hint — behaviour is identical
    /// for any `n_nodes`.
    pub fn with_capacity(protocol: P, net_cfg: NetConfig, seed: u64, n_nodes: usize) -> Self {
        let hub = RngHub::new(seed);
        Simulator {
            core: SimCore {
                clock: SimTime::ZERO,
                // Rule of thumb: a live overlay keeps a small constant
                // number of in-flight events per node (timers + deliveries).
                queue: EventQueue::with_capacity(n_nodes.saturating_mul(4)),
                net: Network::with_capacity(net_cfg, n_nodes),
                alive: AliveSet::new(0),
                counters: Counters::new(),
                rng: hub.engine_rng(),
                hub,
                stats: EngineStats::default(),
                digest: TRACE_DIGEST_INIT,
            },
            protocol,
            max_events: 2_000_000_000,
        }
    }

    /// Sets the runaway-event guard (default 2×10⁹).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Registers a node with the given link capacities. The node starts
    /// **dead**; schedule a join to bring it up.
    pub fn add_node(&mut self, caps: NodeCaps) -> NodeId {
        let id = self.core.net.push_node(caps);
        self.core.alive.grow(self.core.net.len());
        id
    }

    /// Schedules `node` to join at `at`.
    pub fn schedule_join(&mut self, node: NodeId, at: SimTime) {
        self.core.queue.push(at, Event::Join { node });
    }

    /// Schedules `node` to leave at `at` (gracefully or abruptly).
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime, graceful: bool) {
        self.core.queue.push(at, Event::Leave { node, graceful });
    }

    /// Enqueues a message delivery at `at` as if sent by `from` — a driver
    /// hook for injecting application commands into a running protocol
    /// without going through the network (no latency, no overhead units).
    pub fn inject_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: P::Msg) {
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Deliver { from, to, msg });
    }

    /// Dispatches the next event, if any. Returns `false` when the calendar
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.core.clock, "time went backwards");
        self.core.clock = at;
        self.dispatch(ev);
        true
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs every event scheduled at or before `t`, then advances the clock
    /// to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.core.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.core.clock < t {
            self.core.clock = t;
        }
    }

    fn dispatch(&mut self, ev: Event<P>) {
        self.core.stats.events_processed += 1;
        assert!(
            self.core.stats.events_processed <= self.max_events,
            "event budget exceeded ({}) — runaway simulation?",
            self.max_events
        );
        let core = &mut self.core;
        let protocol = &mut self.protocol;
        // Fold the event's structure into the running digest *before*
        // handing it to the protocol, so the digest covers exactly the
        // dispatched event sequence: (time, kind, node, peer). Message
        // payloads are not hashed — their content is a pure function of
        // the event order and the seeded RNG streams, so structural
        // identity already implies behavioural identity.
        let t = core.clock.as_micros();
        core.digest = match &ev {
            Event::Deliver { from, to, .. } => fold(
                fold(fold(core.digest, t), 1 << 56 | u64::from(to.0)),
                u64::from(from.0),
            ),
            Event::Timer { node, .. } => fold(fold(core.digest, t), 2 << 56 | u64::from(node.0)),
            Event::Join { node } => fold(fold(core.digest, t), 3 << 56 | u64::from(node.0)),
            Event::Leave { node, graceful } => fold(
                fold(core.digest, t),
                (4 + u64::from(*graceful)) << 56 | u64::from(node.0),
            ),
        };
        match ev {
            Event::Deliver { from, to, msg } => {
                if !core.alive.is_alive(to) {
                    core.counters.record_dropped_dead();
                    return;
                }
                protocol.on_message(to, from, msg, &mut Ctx { core });
            }
            Event::Timer { node, timer } => {
                if !core.alive.is_alive(node) {
                    core.stats.timers_skipped_dead += 1;
                    return;
                }
                core.stats.timers_fired += 1;
                protocol.on_timer(node, timer, &mut Ctx { core });
            }
            Event::Join { node } => {
                let now = core.clock;
                core.net.reset_pipes(node, now);
                if core.alive.set_alive(node) {
                    protocol.on_join(node, &mut Ctx { core });
                }
            }
            Event::Leave { node, graceful } => {
                if !core.alive.is_alive(node) {
                    return;
                }
                if graceful {
                    // Farewell messages allowed: still alive during the hook.
                    protocol.on_leave(node, true, &mut Ctx { core });
                    core.alive.set_dead(node);
                } else {
                    core.alive.set_dead(node);
                    protocol.on_leave(node, false, &mut Ctx { core });
                }
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// Read access to the overhead counters.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// A 64-bit digest of the dispatched event trace so far: every event's
    /// `(time, kind, node, peer)` tuple folded in dispatch order. Two runs
    /// of the same `(scenario, seed)` cell are bit-identical iff their
    /// digests (plus [`Counters::snapshot`]) match — this is the invariant
    /// the sweep harness asserts across `--jobs` levels.
    pub fn trace_digest(&self) -> u64 {
        self.core.digest
    }

    /// True if `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive.is_alive(node)
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.core.alive.alive_count()
    }

    /// Total registered nodes.
    pub fn num_nodes(&self) -> usize {
        self.core.net.len()
    }

    /// Pending calendar entries (diagnostic).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Mutable access to the fault plan (flip faults mid-run in tests).
    pub fn faults_mut(&mut self) -> &mut crate::net::FaultPlan {
        self.core.net.faults_mut()
    }

    /// Shared access to the protocol under test.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol under test.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Consumes the simulator, returning the protocol (for result harvest).
    pub fn into_protocol(self) -> P {
        self.protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: every node, on join, pings node 0; node 0 answers;
    /// each node counts ponged replies and echoes timers.
    #[derive(Default)]
    struct PingPong {
        pings_seen: u64,
        pongs: Vec<u32>,
        timer_log: Vec<(u32, &'static str)>,
        leaves: Vec<(u32, bool)>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = Msg;
        type Timer = &'static str;

        fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
            if self.pongs.len() < ctx.num_nodes() {
                self.pongs.resize(ctx.num_nodes(), 0);
            }
            if node != NodeId(0) {
                ctx.send_control(node, NodeId(0), Msg::Ping, "ping");
            }
        }

        fn on_message(&mut self, node: NodeId, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Self>) {
            match msg {
                Msg::Ping => {
                    self.pings_seen += 1;
                    ctx.send_control(node, from, Msg::Pong, "pong");
                }
                Msg::Pong => self.pongs[node.index()] += 1,
            }
        }

        fn on_timer(&mut self, node: NodeId, timer: &'static str, _ctx: &mut Ctx<'_, Self>) {
            self.timer_log.push((node.0, timer));
        }

        fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
            self.leaves.push((node.0, graceful));
            // Farewell ping: only delivered when graceful.
            ctx.send_control(node, NodeId(0), Msg::Ping, "farewell");
        }
    }

    fn build(n: usize) -> Simulator<PingPong> {
        let mut sim = Simulator::new(PingPong::default(), NetConfig::default(), 7);
        for i in 0..n {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(5);
        sim.run();
        let p = sim.protocol();
        assert_eq!(p.pings_seen, 4);
        assert_eq!(p.pongs.iter().sum::<u32>(), 4);
        // 4 pings + 4 pongs = 8 overhead units.
        assert_eq!(sim.counters().control_total(), 8);
        assert_eq!(sim.counters().tagged("ping"), 4);
        assert_eq!(sim.counters().tagged("pong"), 4);
        // Ping at 50 ms, pong back at 100 ms.
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = build(2);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut sim = build(3);
        // Kill node 0 before the pings arrive.
        sim.schedule_leave(NodeId(0), SimTime::from_millis(1), false);
        sim.run();
        assert_eq!(sim.protocol().pings_seen, 0);
        assert_eq!(sim.counters().dropped_dead(), 2);
    }

    #[test]
    fn graceful_leave_can_say_farewell_but_abrupt_cannot() {
        let mut sim = build(3);
        sim.run_until(SimTime::from_secs(1));
        sim.schedule_leave(NodeId(1), SimTime::from_secs(2), true);
        sim.schedule_leave(NodeId(2), SimTime::from_secs(2), false);
        sim.run();
        let p = sim.protocol();
        assert_eq!(p.leaves, vec![(1, true), (2, false)]);
        // Only the graceful farewell arrives: 2 joins' pings + 1 farewell.
        assert_eq!(p.pings_seen, 3);
        assert_eq!(sim.stats().sends_from_dead, 1);
    }

    #[test]
    fn timers_fire_in_order_and_skip_dead() {
        let mut sim = build(2);
        sim.run_until(SimTime::from_secs(1));
        {
            // Set timers directly through a join-time hook replacement:
            // schedule via the public Simulator API by re-joining node 1 is
            // overkill; instead drive timers through events.
            sim.core.queue.push(
                SimTime::from_secs(2),
                Event::Timer {
                    node: NodeId(1),
                    timer: "a",
                },
            );
            sim.core.queue.push(
                SimTime::from_secs(3),
                Event::Timer {
                    node: NodeId(1),
                    timer: "b",
                },
            );
            sim.core.queue.push(
                SimTime::from_secs(4),
                Event::Timer {
                    node: NodeId(1),
                    timer: "dead",
                },
            );
        }
        sim.schedule_leave(NodeId(1), SimTime::from_millis(3500), false);
        sim.run();
        assert_eq!(sim.protocol().timer_log, vec![(1, "a"), (1, "b")]);
        assert_eq!(sim.stats().timers_skipped_dead, 1);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn rejoin_after_leave() {
        let mut sim = build(2);
        sim.schedule_leave(NodeId(1), SimTime::from_secs(1), false);
        sim.schedule_join(NodeId(1), SimTime::from_secs(2));
        sim.run();
        // Node 1 pinged twice: once per join.
        assert_eq!(sim.protocol().pings_seen, 2);
        assert!(sim.is_alive(NodeId(1)));
        assert_eq!(sim.alive_count(), 2);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = Simulator::new(PingPong::default(), NetConfig::default(), seed);
            for i in 0..10 {
                let id = sim.add_node(NodeCaps::peer_default());
                sim.schedule_join(id, SimTime::from_millis(i * 10));
            }
            sim.run();
            (
                sim.counters().control_total(),
                sim.now(),
                sim.stats().events_processed,
                sim.trace_digest(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn trace_digest_separates_different_histories() {
        let run = |n| {
            let mut sim = build(n);
            sim.run();
            sim.trace_digest()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        // An idle simulator keeps the initial digest.
        let sim = build(3);
        let fresh = sim.trace_digest();
        let mut ran = build(3);
        ran.run();
        assert_ne!(fresh, ran.trace_digest());
    }

    #[test]
    fn trace_digest_distinguishes_graceful_from_abrupt_leave() {
        let run = |graceful| {
            let mut sim = build(3);
            sim.run_until(SimTime::from_secs(1));
            sim.schedule_leave(NodeId(1), SimTime::from_secs(2), graceful);
            sim.run();
            sim.trace_digest()
        };
        assert_ne!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn event_budget_guard() {
        /// A protocol that schedules itself forever.
        struct Loopy;
        impl Protocol for Loopy {
            type Msg = ();
            type Timer = ();
            fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
                ctx.set_timer(node, SimDuration::from_secs(1), ());
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
            fn on_timer(&mut self, node: NodeId, _: (), ctx: &mut Ctx<'_, Self>) {
                ctx.set_timer(node, SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulator::new(Loopy, NetConfig::default(), 1);
        let id = sim.add_node(NodeCaps::peer_default());
        sim.schedule_join(id, SimTime::ZERO);
        sim.set_max_events(100);
        sim.run();
    }
}

#[cfg(test)]
mod inject_tests {
    use super::*;
    use crate::net::NetConfig;

    /// Echo protocol: counts every message per node.
    struct Echo {
        seen: Vec<u32>,
    }
    impl Protocol for Echo {
        type Msg = u64;
        type Timer = ();
        fn on_join(&mut self, _: NodeId, _: &mut Ctx<'_, Self>) {}
        fn on_message(&mut self, node: NodeId, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {
            self.seen[node.index()] += 1;
        }
        fn on_timer(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
    }

    fn sim2() -> Simulator<Echo> {
        let mut sim = Simulator::new(Echo { seen: vec![0; 2] }, NetConfig::default(), 1);
        for _ in 0..2 {
            let id = sim.add_node(crate::net::NodeCaps::peer_default());
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn inject_message_delivers_without_overhead() {
        let mut sim = sim2();
        sim.inject_message(SimTime::from_secs(1), NodeId(0), NodeId(1), 42);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 1);
        assert_eq!(sim.counters().control_total(), 0, "injection is free");
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn inject_message_clamps_to_now() {
        let mut sim = sim2();
        sim.run_until(SimTime::from_secs(5));
        sim.inject_message(SimTime::from_secs(1), NodeId(0), NodeId(1), 7);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 1);
        assert_eq!(sim.now(), SimTime::from_secs(5), "clamped, no time travel");
    }

    #[test]
    fn inject_to_dead_node_is_dropped() {
        let mut sim = sim2();
        sim.schedule_leave(NodeId(1), SimTime::from_secs(1), false);
        sim.inject_message(SimTime::from_secs(2), NodeId(0), NodeId(1), 9);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 0);
        assert_eq!(sim.counters().dropped_dead(), 1);
    }
}
