//! The discrete-event engine.
//!
//! A [`Simulator`] owns a user-supplied [`Protocol`] (the distributed
//! algorithm under test, holding *all* nodes' state) and a [`SimCore`] (the
//! clock, calendar, network substrate, liveness map, RNGs and counters). The
//! run loop pops events in `(time, insertion)` order and dispatches them to
//! the protocol through a [`Ctx`] handle, which is how the protocol sends
//! messages, sets timers and queries the network.
//!
//! # Liveness semantics
//!
//! * **Join** — the node's pipes are reset, its liveness bit set, then
//!   [`Protocol::on_join`] runs.
//! * **Graceful leave** — [`Protocol::on_leave`] runs *while the node is
//!   still alive* (so it can send farewell messages, as DCO's departure
//!   protocol requires), then the bit is cleared.
//! * **Abrupt failure** — the bit is cleared *first*, then `on_leave` runs
//!   purely for internal cleanup; any send the protocol attempts from the
//!   dead node is suppressed, modelling a crash with no goodbye.
//! * Messages **to** a dead node are dropped (the sender only learns through
//!   its own timeouts). Messages already in flight when the *sender* dies are
//!   still delivered. Timers on dead nodes are skipped.

use core::fmt;

use crate::counters::Counters;
use crate::msg::{MsgClass, SizeBits};
use crate::net::{Kbps, NetConfig, Network, NodeCaps, Transmit};
use crate::node::{AliveSet, NodeId};
use crate::queue::EventQueue;
use crate::rng::{splitmix64, RngHub, SimRng};
use crate::time::{SimDuration, SimTime};

/// A distributed algorithm driven by the engine.
///
/// The implementor owns the state of *every* node (typically a
/// `Vec<PerNodeState>` indexed by [`NodeId`]); the engine tells it which node
/// an event is for.
pub trait Protocol: Sized {
    /// The protocol's wire message type.
    ///
    /// Deliberately *not* `Clone`-bounded: the engine moves each message
    /// from send to delivery exactly once, so fan-out payloads can be
    /// shared behind an `Rc` instead of deep-copied per neighbor.
    type Msg: fmt::Debug;
    /// The protocol's timer token type.
    type Timer: Clone + fmt::Debug;

    /// `node` just joined (or re-joined) the overlay.
    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>);

    /// `node` received `msg` from `from`.
    fn on_message(&mut self, node: NodeId, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self>);

    /// A timer set by `node` fired.
    fn on_timer(&mut self, node: NodeId, timer: Self::Timer, ctx: &mut Ctx<'_, Self>);

    /// `node` is leaving. If `graceful` the node is still alive and may send
    /// farewell messages; if not it is already dead and sends are suppressed.
    fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
        let _ = (node, graceful, ctx);
    }
}

/// Internal calendar entries.
enum Event<P: Protocol> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
    },
    Timer {
        node: NodeId,
        timer: P::Timer,
    },
    Join {
        node: NodeId,
    },
    Leave {
        node: NodeId,
        graceful: bool,
    },
}

/// Engine-level statistics (orthogonal to protocol metrics).
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Events dispatched so far.
    pub events_processed: u64,
    /// Timers that fired on live nodes.
    pub timers_fired: u64,
    /// Timers silently skipped because the node was dead.
    pub timers_skipped_dead: u64,
    /// Sends suppressed because the sender was dead.
    pub sends_from_dead: u64,
}

/// A message whose receiver lives on another shard of a sharded run.
///
/// The sending worker computes the arrival time (sender-side pipes plus the
/// constant link latency) and the canonical stamp `key` locally, so the
/// owning worker can inject the event with [`Simulator::inject_remote`] and
/// land it at exactly the position the canonical schedule assigns it.
pub struct RemoteMsg<M> {
    /// Arrival instant (already includes latency and upload queueing).
    pub at: SimTime,
    /// Canonical stamp key — identical no matter which worker computes it.
    pub key: u128,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node (owned by another shard).
    pub to: NodeId,
    /// The payload.
    pub msg: M,
}

/// Per-shard run summary: what a worker reports upward for digest folding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Events dispatched for nodes this shard owns (shadow membership flips
    /// for foreign nodes are not counted).
    pub owned_events: u64,
    /// Order-independent digest over the owned dispatched events. Folding
    /// all shards' digests with a wrapping add yields the root digest,
    /// which is invariant under the shard count.
    pub set_digest: u64,
    /// Messages handed to the outbox for other shards.
    pub remote_msgs_sent: u64,
}

/// Canonical stamp keys (sharded mode).
///
/// The 128-bit queue key encodes an event's provenance so that every worker
/// — and a single-process run — assigns the *same* key to the same logical
/// event, making the per-worker dispatch order a deterministic function of
/// the workload alone:
///
/// ```text
/// bit 127      : class — 0 = install (pre-run schedule), 1 = runtime
/// install : bits 0..64   = position in the install script
/// runtime : bits 81..127 = push time in µs (46 bits, ~2.2 years)
///           bits 57..81  = pushing node (24 bits)
///           bits 24..57  = pushing node's dispatch counter (33 bits)
///           bits 0..24   = push index within that dispatch (24 bits)
/// ```
///
/// Keys are globally unique by construction (the heap is not stable, so
/// uniqueness is required), and class 0 sorts before class 1 at equal due
/// time: membership flips scripted before the run dispatch ahead of any
/// runtime event of the same instant on every worker, which keeps the
/// global alive set consistent wherever it is read.
const KEY_RUNTIME_CLASS: u128 = 1 << 127;
const KEY_T_SHIFT: u32 = 81;
const KEY_NODE_SHIFT: u32 = 57;
const KEY_PSEQ_SHIFT: u32 = 24;

/// Salt for the order-independent per-shard event digest (distinct from the
/// chain digest so the two spaces cannot be confused).
const SET_DIGEST_SALT: u64 = 0x5EED_5E7D_16E5_7AB1;

/// Sharding state carried by a worker's engine (`None` in ordinary runs).
struct Shard<M> {
    /// `map[node] == me` iff this worker dispatches that node's events.
    map: Vec<u8>,
    me: u8,
    /// Cross-shard messages produced since the last drain.
    outbox: Vec<RemoteMsg<M>>,
    /// Per-node dispatch counters (the `pseq` field of runtime keys).
    node_seq: Vec<u64>,
    /// Install-script position counter (class-0 keys).
    install_seq: u64,
    /// Stamp context of the dispatch currently executing.
    cur_push_t: u64,
    cur_pusher: u32,
    cur_pseq: u64,
    cur_i: u32,
    /// Order-independent digest over owned dispatched events.
    set_digest: u64,
    owned_events: u64,
    remote_sent: u64,
}

impl<M> Shard<M> {
    #[inline]
    fn owns(&self, node: NodeId) -> bool {
        self.map[node.index()] == self.me
    }

    /// The key for the next event pushed by the currently executing
    /// dispatch. Increments the per-dispatch push index whether the event
    /// lands in the local queue or the outbox, so every worker assigns the
    /// same index sequence.
    #[inline]
    fn next_runtime_key(&mut self) -> u128 {
        let i = self.cur_i;
        self.cur_i += 1;
        debug_assert!(self.cur_push_t < 1 << 46, "clock beyond stamp range");
        debug_assert!(i < 1 << 24, "push fan-out beyond stamp range");
        debug_assert!(self.cur_pseq < 1 << 33, "dispatch count beyond stamp range");
        KEY_RUNTIME_CLASS
            | (self.cur_push_t as u128) << KEY_T_SHIFT
            | (self.cur_pusher as u128) << KEY_NODE_SHIFT
            | (self.cur_pseq as u128) << KEY_PSEQ_SHIFT
            | i as u128
    }

    #[inline]
    fn next_install_key(&mut self) -> u128 {
        let k = self.install_seq;
        self.install_seq += 1;
        k as u128
    }
}

/// The order-independent hash of one dispatched event, accumulated by
/// wrapping addition. Uses the same `(time, kind, node, peer)` words as the
/// chain digest, but each event is hashed independently so the running sum
/// is invariant under dispatch interleaving — the property that lets K
/// workers' digests fold into one root equal to the single-process value.
#[inline]
fn set_hash(t: u64, kind_node: u64, peer: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(t ^ SET_DIGEST_SALT) ^ kind_node) ^ peer)
}

/// Everything the engine owns besides the protocol itself.
pub struct SimCore<P: Protocol> {
    clock: SimTime,
    queue: EventQueue<Event<P>>,
    net: Network,
    alive: AliveSet,
    counters: Counters,
    rng: SimRng,
    hub: RngHub,
    stats: EngineStats,
    /// Running structural digest of every dispatched event; see
    /// [`Simulator::trace_digest`].
    digest: u64,
    /// Sharding state (`None` in ordinary single-process runs).
    shard: Option<Box<Shard<P::Msg>>>,
}

impl<P: Protocol> SimCore<P> {
    /// Routes a computed delivery either into the local calendar or, when
    /// the receiver belongs to another shard, into the outbox.
    #[inline]
    fn push_deliver(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: P::Msg) {
        match &mut self.shard {
            None => self.queue.push(at, Event::Deliver { from, to, msg }),
            Some(s) => {
                let key = s.next_runtime_key();
                if s.owns(to) {
                    self.queue
                        .push_keyed(at, key, Event::Deliver { from, to, msg });
                } else {
                    s.remote_sent += 1;
                    s.outbox.push(RemoteMsg {
                        at,
                        key,
                        from,
                        to,
                        msg,
                    });
                }
            }
        }
    }

    /// Pushes a timer event; in sharded mode the target must be owned
    /// locally (protocols may only arm timers on nodes they are currently
    /// dispatching for, which DCO does — timers are always self-targeted).
    #[inline]
    fn push_timer(&mut self, at: SimTime, node: NodeId, timer: P::Timer) {
        match &mut self.shard {
            None => self.queue.push(at, Event::Timer { node, timer }),
            Some(s) => {
                assert!(
                    s.owns(node),
                    "sharded run: timer armed for foreign node {node}"
                );
                let key = s.next_runtime_key();
                self.queue.push_keyed(at, key, Event::Timer { node, timer });
            }
        }
    }
}

/// The handle protocols use to act on the world.
pub struct Ctx<'a, P: Protocol> {
    core: &'a mut SimCore<P>,
}

impl<P: Protocol> Ctx<'_, P> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// Sends a zero-size control message, counting one unit of extra
    /// overhead under `tag`. No-op if the sender is dead; silently dropped
    /// (after counting) if the receiver is dead at delivery time.
    pub fn send_control(&mut self, from: NodeId, to: NodeId, msg: P::Msg, tag: &'static str) {
        self.send_control_sized(from, to, msg, tag, SizeBits::ZERO)
    }

    /// Sends a control message with an explicit size (only relevant when the
    /// network is configured to charge control traffic to the pipes).
    pub fn send_control_sized(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        tag: &'static str,
        size: SizeBits,
    ) {
        let core = &mut *self.core;
        if !core.alive.is_alive(from) {
            core.stats.sends_from_dead += 1;
            return;
        }
        core.counters.record_control(core.clock, tag);
        match core
            .net
            .transmit(core.clock, from, to, MsgClass::Control, size, &mut core.rng)
        {
            Transmit::Deliver(at) => core.push_deliver(at, from, to, msg),
            Transmit::Dropped => core.counters.record_dropped_fault(),
        }
    }

    /// Sends a data (chunk) message of `size` bits through both access
    /// pipes. Not counted as overhead. No-op if the sender is dead.
    pub fn send_data(&mut self, from: NodeId, to: NodeId, msg: P::Msg, size: SizeBits) {
        let core = &mut *self.core;
        if !core.alive.is_alive(from) {
            core.stats.sends_from_dead += 1;
            return;
        }
        core.counters.record_data();
        match core
            .net
            .transmit(core.clock, from, to, MsgClass::Data, size, &mut core.rng)
        {
            Transmit::Deliver(at) => core.push_deliver(at, from, to, msg),
            Transmit::Dropped => core.counters.record_dropped_fault(),
        }
    }

    /// Arms a timer for `node` to fire after `delay`.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, timer: P::Timer) {
        let at = self.core.clock.saturating_add(delay);
        self.core.push_timer(at, node, timer);
    }

    /// Arms a timer for `node` at an absolute instant (clamped to now).
    pub fn set_timer_at(&mut self, node: NodeId, at: SimTime, timer: P::Timer) {
        let at = at.max(self.core.clock);
        self.core.push_timer(at, node, timer);
    }

    /// Schedules `node` to join at absolute time `at`.
    ///
    /// Not available in sharded runs: membership there is fixed by the
    /// pre-run install script so that every worker can replay the whole
    /// churn schedule (shadow flips keep the global alive set consistent).
    pub fn schedule_join(&mut self, node: NodeId, at: SimTime) {
        assert!(
            self.core.shard.is_none(),
            "sharded run: runtime membership scheduling is not supported"
        );
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Join { node });
    }

    /// Schedules `node` to leave at absolute time `at`.
    ///
    /// Not available in sharded runs (see [`Ctx::schedule_join`]).
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime, graceful: bool) {
        assert!(
            self.core.shard.is_none(),
            "sharded run: runtime membership scheduling is not supported"
        );
        let at = at.max(self.core.clock);
        self.core.queue.push(at, Event::Leave { node, graceful });
    }

    /// True if `node` is currently alive.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive.is_alive(node)
    }

    /// Number of currently alive nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.core.alive.alive_count()
    }

    /// Total registered nodes (alive or not).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.core.net.len()
    }

    /// The engine's RNG (deterministic given the seed and event order).
    ///
    /// Panics in sharded runs: the shared engine stream is consumed in
    /// dispatch order, which is worker-local, so a draw here would diverge
    /// across shard counts. Sharded protocols must use per-node streams
    /// from [`Ctx::hub`] instead (a pure function of seed and node).
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        assert!(
            self.core.shard.is_none(),
            "sharded run: the shared engine RNG is not shard-invariant; use hub().node_rng"
        );
        &mut self.core.rng
    }

    /// The seed hub, for protocols wanting private per-node streams.
    #[inline]
    pub fn hub(&self) -> RngHub {
        self.core.hub
    }

    /// True when this engine runs as one shard of a partitioned
    /// simulation (see [`Simulator::enable_sharding`]). Protocols that
    /// draw randomness must switch from the shared stream ([`Ctx::rng`])
    /// to per-node hub streams when this is set: a node's dispatches run
    /// in the same canonical order on every shard count, so per-node
    /// draws are shard-invariant where shared-stream draws are not.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.core.shard.is_some()
    }

    /// Spare upload capacity of `node` averaged over `horizon`.
    pub fn available_upload(&self, node: NodeId, horizon: SimDuration) -> Kbps {
        self.core
            .net
            .available_upload(node, self.core.clock, horizon)
    }

    /// Queueing delay currently ahead of `node`'s upload pipe.
    pub fn upload_backlog(&self, node: NodeId) -> SimDuration {
        self.core.net.upload_backlog(node, self.core.clock)
    }

    /// Queueing delay currently ahead of `node`'s download pipe.
    pub fn download_backlog(&self, node: NodeId) -> SimDuration {
        self.core.net.download_backlog(node, self.core.clock)
    }

    /// Configured upload rate of `node`.
    pub fn upload_rate(&self, node: NodeId) -> Kbps {
        self.core.net.upload_rate(node)
    }

    /// Configured download rate of `node`.
    pub fn download_rate(&self, node: NodeId) -> Kbps {
        self.core.net.download_rate(node)
    }

    /// Read access to the overhead counters.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }
}

/// Seed of the running trace digest (FNV-1a 64-bit offset basis).
const TRACE_DIGEST_INIT: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds one word into a trace digest.
#[inline]
fn fold(digest: u64, word: u64) -> u64 {
    splitmix64(digest ^ word)
}

/// The simulator: protocol + engine core + run loop.
pub struct Simulator<P: Protocol> {
    core: SimCore<P>,
    protocol: P,
    /// Hard cap on dispatched events; `run*` panics past it (runaway guard).
    max_events: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator around `protocol` with the given network
    /// configuration and master seed.
    pub fn new(protocol: P, net_cfg: NetConfig, seed: u64) -> Self {
        Self::with_capacity(protocol, net_cfg, seed, 0)
    }

    /// Like [`Simulator::new`] but with a population capacity hint:
    /// pre-sizes the network's per-node tables and the event calendar's
    /// active heap so scenario installation doesn't regrow them
    /// incrementally. Purely an allocation hint — behaviour is identical
    /// for any `n_nodes`.
    pub fn with_capacity(protocol: P, net_cfg: NetConfig, seed: u64, n_nodes: usize) -> Self {
        let hub = RngHub::new(seed);
        Simulator {
            core: SimCore {
                clock: SimTime::ZERO,
                // Rule of thumb: a live overlay keeps a small constant
                // number of in-flight events per node (timers + deliveries).
                queue: EventQueue::with_capacity(n_nodes.saturating_mul(4)),
                net: Network::with_capacity(net_cfg, n_nodes),
                alive: AliveSet::new(0),
                counters: Counters::new(),
                rng: hub.engine_rng(),
                hub,
                stats: EngineStats::default(),
                digest: TRACE_DIGEST_INIT,
                shard: None,
            },
            protocol,
            max_events: 2_000_000_000,
        }
    }

    /// Sets the runaway-event guard (default 2×10⁹).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Registers a node with the given link capacities. The node starts
    /// **dead**; schedule a join to bring it up.
    pub fn add_node(&mut self, caps: NodeCaps) -> NodeId {
        assert!(
            self.core.shard.is_none(),
            "register all nodes before enable_sharding"
        );
        let id = self.core.net.push_node(caps);
        self.core.alive.grow(self.core.net.len());
        id
    }

    /// Schedules `node` to join at `at`.
    ///
    /// In sharded mode this is part of the **install script**: every worker
    /// must make the identical sequence of `schedule_join`/`schedule_leave`
    /// calls before running, and the position in that sequence becomes the
    /// event's canonical key.
    pub fn schedule_join(&mut self, node: NodeId, at: SimTime) {
        match &mut self.core.shard {
            None => self.core.queue.push(at, Event::Join { node }),
            Some(s) => {
                let key = s.next_install_key();
                self.core.queue.push_keyed(at, key, Event::Join { node });
            }
        }
    }

    /// Schedules `node` to leave at `at` (gracefully or abruptly). Part of
    /// the install script in sharded mode (see [`Simulator::schedule_join`]).
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime, graceful: bool) {
        match &mut self.core.shard {
            None => self.core.queue.push(at, Event::Leave { node, graceful }),
            Some(s) => {
                let key = s.next_install_key();
                self.core
                    .queue
                    .push_keyed(at, key, Event::Leave { node, graceful });
            }
        }
    }

    /// Enqueues a message delivery at `at` as if sent by `from` — a driver
    /// hook for injecting application commands into a running protocol
    /// without going through the network (no latency, no overhead units).
    ///
    /// In sharded mode injections are install-script entries and must be
    /// made identically on every worker before the run starts.
    pub fn inject_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: P::Msg) {
        let at = at.max(self.core.clock);
        match &mut self.core.shard {
            None => self.core.queue.push(at, Event::Deliver { from, to, msg }),
            Some(s) => {
                let key = s.next_install_key();
                self.core
                    .queue
                    .push_keyed(at, key, Event::Deliver { from, to, msg });
            }
        }
    }

    /// Switches this engine into **sharded worker** mode.
    ///
    /// `map[node]` names the worker that owns each node and `me` is this
    /// worker's index. Must be called after all nodes are registered and
    /// before anything is scheduled. The network model must be *conservative
    /// lookahead safe*: constant link latency `L > 0`, no fault injection,
    /// and no receiver-side bandwidth charging — then any cross-shard send
    /// arrives at least `L` after it was sent, so workers can run in
    /// lockstep windows of width `L` exchanging messages only at window
    /// boundaries. Returns that lookahead.
    pub fn enable_sharding(&mut self, map: Vec<u8>, me: u8, n_shards: u8) -> SimDuration {
        assert!(n_shards >= 1 && me < n_shards, "bad shard index");
        assert_eq!(map.len(), self.core.net.len(), "shard map size != nodes");
        assert!(map.len() < 1 << 24, "stamp keys address 2^24 nodes");
        assert!(
            map.iter().all(|&s| s < n_shards),
            "shard map entry out of range"
        );
        assert!(
            self.core.queue.scheduled_total() == 0 && self.core.stats.events_processed == 0,
            "enable_sharding before scheduling or running"
        );
        let cfg = self.core.net.config();
        let lookahead = cfg
            .latency
            .as_constant()
            .expect("sharded runs need a constant latency model");
        assert!(
            !lookahead.is_zero(),
            "sharded runs need a positive link latency (the lookahead)"
        );
        assert!(
            !cfg.faults.is_active(),
            "sharded runs do not support fault injection"
        );
        assert!(
            !cfg.charge_download,
            "sharded runs need sender-side-only bandwidth charging"
        );
        let n = map.len();
        self.core.shard = Some(Box::new(Shard {
            map,
            me,
            outbox: Vec::new(),
            node_seq: vec![0; n],
            install_seq: 0,
            cur_push_t: 0,
            cur_pusher: 0,
            cur_pseq: 0,
            cur_i: 0,
            set_digest: 0,
            owned_events: 0,
            remote_sent: 0,
        }));
        lookahead
    }

    /// Runs every event scheduled strictly before `t`, leaving the clock at
    /// the last dispatched event. The sharded epoch loop runs
    /// `run_before(window_end)` then exchanges cross-shard batches: with
    /// lookahead `L`, a message sent inside `[T, T+L)` arrives at or after
    /// `T+L`, so injecting at the barrier can never land in a window that
    /// already ran.
    pub fn run_before(&mut self, t: SimTime) {
        while let Some(next) = self.core.queue.peek_time() {
            if next >= t {
                break;
            }
            self.step();
        }
    }

    /// Drains the cross-shard outbox (messages produced since last drain).
    pub fn drain_shard_outbox(&mut self) -> impl Iterator<Item = RemoteMsg<P::Msg>> + '_ {
        self.core
            .shard
            .as_mut()
            .expect("not a sharded run")
            .outbox
            .drain(..)
    }

    /// Injects a message routed from another shard. The key computed by the
    /// sending worker already places it at its canonical position among
    /// this worker's events.
    pub fn inject_remote(&mut self, m: RemoteMsg<P::Msg>) {
        let s = self.core.shard.as_ref().expect("not a sharded run");
        debug_assert!(s.owns(m.to), "misrouted remote message");
        debug_assert!(m.at >= self.core.clock, "remote message in the past");
        self.core.queue.push_keyed(
            m.at,
            m.key,
            Event::Deliver {
                from: m.from,
                to: m.to,
                msg: m.msg,
            },
        );
    }

    /// This worker's shard summary, or `None` in ordinary runs.
    pub fn shard_stats(&self) -> Option<ShardRunStats> {
        self.core.shard.as_ref().map(|s| ShardRunStats {
            owned_events: s.owned_events,
            set_digest: s.set_digest,
            remote_msgs_sent: s.remote_sent,
        })
    }

    /// The shard owning `node`, or `None` in ordinary runs.
    pub fn shard_of(&self, node: NodeId) -> Option<u8> {
        self.core.shard.as_ref().map(|s| s.map[node.index()])
    }

    /// Dispatches the next event, if any. Returns `false` when the calendar
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.core.clock, "time went backwards");
        self.core.clock = at;
        self.dispatch(ev);
        true
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs every event scheduled at or before `t`, then advances the clock
    /// to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.core.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.core.clock < t {
            self.core.clock = t;
        }
    }

    fn dispatch(&mut self, ev: Event<P>) {
        self.core.stats.events_processed += 1;
        assert!(
            self.core.stats.events_processed <= self.max_events,
            "event budget exceeded ({}) — runaway simulation?",
            self.max_events
        );
        let core = &mut self.core;
        let protocol = &mut self.protocol;
        let t = core.clock.as_micros();
        if let Some(shard) = &mut core.shard {
            let subject = match &ev {
                Event::Deliver { to, .. } => *to,
                Event::Timer { node, .. } => *node,
                Event::Join { node } => *node,
                Event::Leave { node, .. } => *node,
            };
            if !shard.owns(subject) {
                // Shadow membership flip: every worker replays the whole
                // install script, but only the owner runs protocol hooks,
                // folds the digest or counts the event. Flipping the alive
                // bit everywhere keeps cross-shard liveness reads (audience
                // scans, send-to-dead drops) consistent with a one-process
                // run; install keys sort before runtime keys at equal time,
                // so the flip is visible to every same-instant event.
                match ev {
                    Event::Join { node } => {
                        core.net.reset_pipes(node, core.clock);
                        core.alive.set_alive(node);
                    }
                    Event::Leave { node, .. } => {
                        core.alive.set_dead(node);
                    }
                    Event::Deliver { .. } | Event::Timer { .. } => {
                        panic!("sharded dispatch: runtime event for foreign node {subject}")
                    }
                }
                return;
            }
            // Owned dispatch: open the stamp context for events this
            // handler will push, and fold the order-independent digest.
            shard.owned_events += 1;
            shard.cur_push_t = t;
            shard.cur_pusher = subject.0;
            shard.cur_pseq = shard.node_seq[subject.index()];
            shard.node_seq[subject.index()] += 1;
            shard.cur_i = 0;
            let (kind_node, peer) = match &ev {
                Event::Deliver { from, to, .. } => (1 << 56 | u64::from(to.0), u64::from(from.0)),
                Event::Timer { node, .. } => (2 << 56 | u64::from(node.0), 0),
                Event::Join { node } => (3 << 56 | u64::from(node.0), 0),
                Event::Leave { node, graceful } => {
                    ((4 + u64::from(*graceful)) << 56 | u64::from(node.0), 0)
                }
            };
            shard.set_digest = shard.set_digest.wrapping_add(set_hash(t, kind_node, peer));
        }
        // Fold the event's structure into the running digest *before*
        // handing it to the protocol, so the digest covers exactly the
        // dispatched event sequence: (time, kind, node, peer). Message
        // payloads are not hashed — their content is a pure function of
        // the event order and the seeded RNG streams, so structural
        // identity already implies behavioural identity.
        core.digest = match &ev {
            Event::Deliver { from, to, .. } => fold(
                fold(fold(core.digest, t), 1 << 56 | u64::from(to.0)),
                u64::from(from.0),
            ),
            Event::Timer { node, .. } => fold(fold(core.digest, t), 2 << 56 | u64::from(node.0)),
            Event::Join { node } => fold(fold(core.digest, t), 3 << 56 | u64::from(node.0)),
            Event::Leave { node, graceful } => fold(
                fold(core.digest, t),
                (4 + u64::from(*graceful)) << 56 | u64::from(node.0),
            ),
        };
        match ev {
            Event::Deliver { from, to, msg } => {
                if !core.alive.is_alive(to) {
                    core.counters.record_dropped_dead();
                    return;
                }
                protocol.on_message(to, from, msg, &mut Ctx { core });
            }
            Event::Timer { node, timer } => {
                if !core.alive.is_alive(node) {
                    core.stats.timers_skipped_dead += 1;
                    return;
                }
                core.stats.timers_fired += 1;
                protocol.on_timer(node, timer, &mut Ctx { core });
            }
            Event::Join { node } => {
                let now = core.clock;
                core.net.reset_pipes(node, now);
                if core.alive.set_alive(node) {
                    protocol.on_join(node, &mut Ctx { core });
                }
            }
            Event::Leave { node, graceful } => {
                if !core.alive.is_alive(node) {
                    return;
                }
                if graceful {
                    // Farewell messages allowed: still alive during the hook.
                    protocol.on_leave(node, true, &mut Ctx { core });
                    core.alive.set_dead(node);
                } else {
                    core.alive.set_dead(node);
                    protocol.on_leave(node, false, &mut Ctx { core });
                }
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// Read access to the overhead counters.
    pub fn counters(&self) -> &Counters {
        &self.core.counters
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// A 64-bit digest of the dispatched event trace so far: every event's
    /// `(time, kind, node, peer)` tuple folded in dispatch order. Two runs
    /// of the same `(scenario, seed)` cell are bit-identical iff their
    /// digests (plus [`Counters::snapshot`]) match — this is the invariant
    /// the sweep harness asserts across `--jobs` levels.
    pub fn trace_digest(&self) -> u64 {
        self.core.digest
    }

    /// True if `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive.is_alive(node)
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.core.alive.alive_count()
    }

    /// Total registered nodes.
    pub fn num_nodes(&self) -> usize {
        self.core.net.len()
    }

    /// Pending calendar entries (diagnostic).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Mutable access to the fault plan (flip faults mid-run in tests).
    pub fn faults_mut(&mut self) -> &mut crate::net::FaultPlan {
        self.core.net.faults_mut()
    }

    /// Shared access to the protocol under test.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol under test.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Consumes the simulator, returning the protocol (for result harvest).
    pub fn into_protocol(self) -> P {
        self.protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: every node, on join, pings node 0; node 0 answers;
    /// each node counts ponged replies and echoes timers.
    #[derive(Default)]
    struct PingPong {
        pings_seen: u64,
        pongs: Vec<u32>,
        timer_log: Vec<(u32, &'static str)>,
        leaves: Vec<(u32, bool)>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = Msg;
        type Timer = &'static str;

        fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
            if self.pongs.len() < ctx.num_nodes() {
                self.pongs.resize(ctx.num_nodes(), 0);
            }
            if node != NodeId(0) {
                ctx.send_control(node, NodeId(0), Msg::Ping, "ping");
            }
        }

        fn on_message(&mut self, node: NodeId, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Self>) {
            match msg {
                Msg::Ping => {
                    self.pings_seen += 1;
                    ctx.send_control(node, from, Msg::Pong, "pong");
                }
                Msg::Pong => self.pongs[node.index()] += 1,
            }
        }

        fn on_timer(&mut self, node: NodeId, timer: &'static str, _ctx: &mut Ctx<'_, Self>) {
            self.timer_log.push((node.0, timer));
        }

        fn on_leave(&mut self, node: NodeId, graceful: bool, ctx: &mut Ctx<'_, Self>) {
            self.leaves.push((node.0, graceful));
            // Farewell ping: only delivered when graceful.
            ctx.send_control(node, NodeId(0), Msg::Ping, "farewell");
        }
    }

    fn build(n: usize) -> Simulator<PingPong> {
        let mut sim = Simulator::new(PingPong::default(), NetConfig::default(), 7);
        for i in 0..n {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(5);
        sim.run();
        let p = sim.protocol();
        assert_eq!(p.pings_seen, 4);
        assert_eq!(p.pongs.iter().sum::<u32>(), 4);
        // 4 pings + 4 pongs = 8 overhead units.
        assert_eq!(sim.counters().control_total(), 8);
        assert_eq!(sim.counters().tagged("ping"), 4);
        assert_eq!(sim.counters().tagged("pong"), 4);
        // Ping at 50 ms, pong back at 100 ms.
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = build(2);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut sim = build(3);
        // Kill node 0 before the pings arrive.
        sim.schedule_leave(NodeId(0), SimTime::from_millis(1), false);
        sim.run();
        assert_eq!(sim.protocol().pings_seen, 0);
        assert_eq!(sim.counters().dropped_dead(), 2);
    }

    #[test]
    fn graceful_leave_can_say_farewell_but_abrupt_cannot() {
        let mut sim = build(3);
        sim.run_until(SimTime::from_secs(1));
        sim.schedule_leave(NodeId(1), SimTime::from_secs(2), true);
        sim.schedule_leave(NodeId(2), SimTime::from_secs(2), false);
        sim.run();
        let p = sim.protocol();
        assert_eq!(p.leaves, vec![(1, true), (2, false)]);
        // Only the graceful farewell arrives: 2 joins' pings + 1 farewell.
        assert_eq!(p.pings_seen, 3);
        assert_eq!(sim.stats().sends_from_dead, 1);
    }

    #[test]
    fn timers_fire_in_order_and_skip_dead() {
        let mut sim = build(2);
        sim.run_until(SimTime::from_secs(1));
        {
            // Set timers directly through a join-time hook replacement:
            // schedule via the public Simulator API by re-joining node 1 is
            // overkill; instead drive timers through events.
            sim.core.queue.push(
                SimTime::from_secs(2),
                Event::Timer {
                    node: NodeId(1),
                    timer: "a",
                },
            );
            sim.core.queue.push(
                SimTime::from_secs(3),
                Event::Timer {
                    node: NodeId(1),
                    timer: "b",
                },
            );
            sim.core.queue.push(
                SimTime::from_secs(4),
                Event::Timer {
                    node: NodeId(1),
                    timer: "dead",
                },
            );
        }
        sim.schedule_leave(NodeId(1), SimTime::from_millis(3500), false);
        sim.run();
        assert_eq!(sim.protocol().timer_log, vec![(1, "a"), (1, "b")]);
        assert_eq!(sim.stats().timers_skipped_dead, 1);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn rejoin_after_leave() {
        let mut sim = build(2);
        sim.schedule_leave(NodeId(1), SimTime::from_secs(1), false);
        sim.schedule_join(NodeId(1), SimTime::from_secs(2));
        sim.run();
        // Node 1 pinged twice: once per join.
        assert_eq!(sim.protocol().pings_seen, 2);
        assert!(sim.is_alive(NodeId(1)));
        assert_eq!(sim.alive_count(), 2);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = Simulator::new(PingPong::default(), NetConfig::default(), seed);
            for i in 0..10 {
                let id = sim.add_node(NodeCaps::peer_default());
                sim.schedule_join(id, SimTime::from_millis(i * 10));
            }
            sim.run();
            (
                sim.counters().control_total(),
                sim.now(),
                sim.stats().events_processed,
                sim.trace_digest(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn trace_digest_separates_different_histories() {
        let run = |n| {
            let mut sim = build(n);
            sim.run();
            sim.trace_digest()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        // An idle simulator keeps the initial digest.
        let sim = build(3);
        let fresh = sim.trace_digest();
        let mut ran = build(3);
        ran.run();
        assert_ne!(fresh, ran.trace_digest());
    }

    #[test]
    fn trace_digest_distinguishes_graceful_from_abrupt_leave() {
        let run = |graceful| {
            let mut sim = build(3);
            sim.run_until(SimTime::from_secs(1));
            sim.schedule_leave(NodeId(1), SimTime::from_secs(2), graceful);
            sim.run();
            sim.trace_digest()
        };
        assert_ne!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn event_budget_guard() {
        /// A protocol that schedules itself forever.
        struct Loopy;
        impl Protocol for Loopy {
            type Msg = ();
            type Timer = ();
            fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
                ctx.set_timer(node, SimDuration::from_secs(1), ());
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
            fn on_timer(&mut self, node: NodeId, _: (), ctx: &mut Ctx<'_, Self>) {
                ctx.set_timer(node, SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulator::new(Loopy, NetConfig::default(), 1);
        let id = sim.add_node(NodeCaps::peer_default());
        sim.schedule_join(id, SimTime::ZERO);
        sim.set_max_events(100);
        sim.run();
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::net::{NetConfig, NodeCaps};

    /// Exercises timers, fan-out sends, replies and liveness reads: every
    /// node pings its ring successor each 100 ms (answered with a pong),
    /// and node 0 broadcasts to every alive node each second.
    struct Mesh {
        n: u32,
        got: Vec<u64>,
    }

    impl Protocol for Mesh {
        type Msg = u32;
        type Timer = u8;

        fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
            ctx.set_timer(node, SimDuration::from_millis(100), 0);
            if node == NodeId(0) {
                ctx.set_timer(node, SimDuration::from_secs(1), 1);
            }
        }

        fn on_message(&mut self, node: NodeId, from: NodeId, msg: u32, ctx: &mut Ctx<'_, Self>) {
            self.got[node.index()] += u64::from(msg);
            if msg == 1 {
                ctx.send_control(node, from, 2, "pong");
            }
        }

        fn on_timer(&mut self, node: NodeId, timer: u8, ctx: &mut Ctx<'_, Self>) {
            match timer {
                0 => {
                    let succ = NodeId((node.0 + 1) % self.n);
                    ctx.send_control(node, succ, 1, "ping");
                    ctx.set_timer(node, SimDuration::from_millis(100), 0);
                }
                _ => {
                    for i in 1..self.n {
                        if ctx.is_alive(NodeId(i)) {
                            ctx.send_control(node, NodeId(i), 7, "bcast");
                        }
                    }
                    ctx.set_timer(node, SimDuration::from_secs(1), 1);
                }
            }
        }
    }

    /// Runs the Mesh workload across `k` in-process workers with the
    /// conservative epoch loop, returning `(root digest, total owned
    /// events, merged per-node message totals)`.
    fn run_sharded(k: u8) -> (u64, u64, Vec<u64>) {
        let n = 8u32;
        let horizon = SimTime::from_millis(5030); // deliberately not a window multiple
        let map: Vec<u8> = (0..n).map(|i| (i % u32::from(k)) as u8).collect();
        let mut sims: Vec<Simulator<Mesh>> = (0..k)
            .map(|me| {
                let mut sim = Simulator::new(
                    Mesh {
                        n,
                        got: vec![0; n as usize],
                    },
                    NetConfig::paper_model(),
                    42,
                );
                for i in 0..n {
                    let caps = if i == 0 {
                        NodeCaps::server_default()
                    } else {
                        NodeCaps::peer_default()
                    };
                    sim.add_node(caps);
                }
                let lookahead = sim.enable_sharding(map.clone(), me, k);
                assert_eq!(lookahead, SimDuration::from_millis(50));
                // The install script — identical on every worker.
                for i in 0..n {
                    sim.schedule_join(NodeId(i), SimTime::ZERO);
                }
                sim.schedule_leave(NodeId(3), SimTime::from_millis(2500), false);
                sim.schedule_join(NodeId(3), SimTime::from_millis(3500));
                sim
            })
            .collect();
        let step = SimDuration::from_millis(50);
        let mut e = 0u64;
        loop {
            let end = SimTime::ZERO + step * (e + 1);
            if end > horizon {
                break;
            }
            let mut routed: Vec<Vec<RemoteMsg<u32>>> = (0..k).map(|_| Vec::new()).collect();
            for sim in &mut sims {
                sim.run_before(end);
                for m in sim.drain_shard_outbox() {
                    routed[usize::from(map[m.to.index()])].push(m);
                }
            }
            for (sim, batch) in sims.iter_mut().zip(routed) {
                for m in batch {
                    sim.inject_remote(m);
                }
            }
            e += 1;
        }
        for sim in &mut sims {
            sim.run_until(horizon);
        }
        let mut root = 0u64;
        let mut events = 0u64;
        let mut got = vec![0u64; n as usize];
        for (w, sim) in sims.iter().enumerate() {
            let s = sim.shard_stats().expect("sharded");
            root = root.wrapping_add(s.set_digest);
            events += s.owned_events;
            for i in 0..n as usize {
                if usize::from(map[i]) == w {
                    got[i] = sim.protocol().got[i];
                }
            }
        }
        (root, events, got)
    }

    #[test]
    fn shard_count_invariance_k_1_2_4() {
        let one = run_sharded(1);
        let two = run_sharded(2);
        let four = run_sharded(4);
        assert!(one.1 > 1000, "workload should be non-trivial: {}", one.1);
        assert!(one.2.iter().sum::<u64>() > 0);
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn sharded_workers_actually_exchange_messages() {
        let n = 8;
        let _ = n;
        // Re-run K=2 and check the outboxes saw traffic (the invariance
        // test would pass vacuously if everything were local).
        let map: Vec<u8> = (0..8u32).map(|i| (i % 2) as u8).collect();
        let mut sim = Simulator::new(
            Mesh {
                n: 8,
                got: vec![0; 8],
            },
            NetConfig::paper_model(),
            42,
        );
        for _ in 0..8 {
            sim.add_node(NodeCaps::peer_default());
        }
        sim.enable_sharding(map, 0, 2);
        for i in 0..8 {
            sim.schedule_join(NodeId(i), SimTime::ZERO);
        }
        sim.run_before(SimTime::from_millis(200));
        let s = sim.shard_stats().unwrap();
        assert!(s.remote_msgs_sent > 0, "ring pings must cross the cut");
        assert!(sim.drain_shard_outbox().count() > 0);
    }

    #[test]
    fn sharding_rejects_unsafe_network_models() {
        let mut sim = Simulator::new(
            Mesh { n: 1, got: vec![0] },
            NetConfig::default(), // charge_download = true
            1,
        );
        sim.add_node(NodeCaps::peer_default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.enable_sharding(vec![0], 0, 1);
        }));
        assert!(err.is_err(), "receiver-side charging must be rejected");
    }

    #[test]
    fn set_digest_is_order_independent_but_content_sensitive() {
        // Same multiset folded in different order → same sum; different
        // events → different sum.
        let a = set_hash(5, 1 << 56 | 3, 2);
        let b = set_hash(7, 2 << 56 | 1, 0);
        assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        assert_ne!(a, set_hash(5, 1 << 56 | 3, 4));
        assert_ne!(a, set_hash(6, 1 << 56 | 3, 2));
    }
}

#[cfg(test)]
mod inject_tests {
    use super::*;
    use crate::net::NetConfig;

    /// Echo protocol: counts every message per node.
    struct Echo {
        seen: Vec<u32>,
    }
    impl Protocol for Echo {
        type Msg = u64;
        type Timer = ();
        fn on_join(&mut self, _: NodeId, _: &mut Ctx<'_, Self>) {}
        fn on_message(&mut self, node: NodeId, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {
            self.seen[node.index()] += 1;
        }
        fn on_timer(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
    }

    fn sim2() -> Simulator<Echo> {
        let mut sim = Simulator::new(Echo { seen: vec![0; 2] }, NetConfig::default(), 1);
        for _ in 0..2 {
            let id = sim.add_node(crate::net::NodeCaps::peer_default());
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn inject_message_delivers_without_overhead() {
        let mut sim = sim2();
        sim.inject_message(SimTime::from_secs(1), NodeId(0), NodeId(1), 42);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 1);
        assert_eq!(sim.counters().control_total(), 0, "injection is free");
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn inject_message_clamps_to_now() {
        let mut sim = sim2();
        sim.run_until(SimTime::from_secs(5));
        sim.inject_message(SimTime::from_secs(1), NodeId(0), NodeId(1), 7);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 1);
        assert_eq!(sim.now(), SimTime::from_secs(5), "clamped, no time travel");
    }

    #[test]
    fn inject_to_dead_node_is_dropped() {
        let mut sim = sim2();
        sim.schedule_leave(NodeId(1), SimTime::from_secs(1), false);
        sim.inject_message(SimTime::from_secs(2), NodeId(0), NodeId(1), 9);
        sim.run();
        assert_eq!(sim.protocol().seen[1], 0);
        assert_eq!(sim.counters().dropped_dead(), 1);
    }
}
