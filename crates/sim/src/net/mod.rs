//! The network substrate: latency, access-link pipes and fault injection.
//!
//! This is the engine's replacement for P2PSim's network layer. The model is
//! deliberately the simplest one that reproduces the paper's dynamics:
//!
//! * every node has a private upload pipe and download pipe with fixed rates
//!   ([`Pipe`], [`NodeCaps`]);
//! * a **data** transfer first serializes through the sender's upload pipe
//!   (FIFO), then propagates for one latency sample, then serializes through
//!   the receiver's download pipe (FIFO again);
//! * a **control** message incurs one latency sample only (the paper counts
//!   control traffic in *message units*, not bytes), unless
//!   `control_uses_bandwidth` is enabled;
//! * a [`FaultPlan`] may drop any transmission.
//!
//! Pipe occupancy is *reserved at send time*: when a data transfer is
//! admitted, both pipes' horizons advance immediately. Two transfers racing
//! for the same receiver therefore serialize in the order their sends were
//! processed, which is a standard store-and-forward approximation and keeps
//! the engine single-pass and deterministic.

mod bandwidth;
mod fault;
mod latency;
mod pipe;

pub use bandwidth::{Kbps, NodeCaps};
pub use fault::FaultPlan;
pub use latency::LatencyModel;
pub use pipe::Pipe;

use crate::msg::{MsgClass, SizeBits};
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Configuration of the network substrate.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// One-way propagation latency model. Default: constant 50 ms.
    pub latency: LatencyModel,
    /// Message-loss policy. Default: no loss.
    pub faults: FaultPlan,
    /// If true, control messages are also charged to the pipes at their
    /// declared size. The paper's overhead metric counts message units, so
    /// this defaults to `false`.
    pub control_uses_bandwidth: bool,
    /// If true (default), a data transfer also serializes through the
    /// receiver's download pipe. §IV of the paper describes sender-side
    /// queueing only ("when a node is overloaded, it will queue its chunks
    /// … until it has sufficient bandwidth"), so the figure-replication
    /// harness turns this off; the full store-and-forward model remains the
    /// default for everything else.
    pub charge_download: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::paper_default(),
            faults: FaultPlan::none(),
            control_uses_bandwidth: false,
            charge_download: true,
        }
    }
}

impl NetConfig {
    /// The paper's §IV network model: sender-side queueing only.
    pub fn paper_model() -> Self {
        NetConfig {
            charge_download: false,
            ..NetConfig::default()
        }
    }
}

/// Per-node link state plus the shared latency/fault models.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetConfig,
    up: Vec<Pipe>,
    down: Vec<Pipe>,
}

/// The outcome of submitting a transmission to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transmit {
    /// The message will arrive at the given instant.
    Deliver(SimTime),
    /// The message was lost (fault injection).
    Dropped,
}

impl Network {
    /// An empty network with the given configuration.
    pub fn new(cfg: NetConfig) -> Self {
        Self::with_capacity(cfg, 0)
    }

    /// An empty network pre-sized for `n_nodes` registrations (capacity
    /// hint only; the network still grows on demand past it).
    pub fn with_capacity(cfg: NetConfig, n_nodes: usize) -> Self {
        Network {
            cfg,
            up: Vec::with_capacity(n_nodes),
            down: Vec::with_capacity(n_nodes),
        }
    }

    /// Registers a new node and returns its dense id.
    pub fn push_node(&mut self, caps: NodeCaps) -> NodeId {
        let id = NodeId(self.up.len() as u32);
        self.up.push(Pipe::new(caps.up));
        self.down.push(Pipe::new(caps.down));
        id
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// The network configuration this substrate was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Mutable access to the fault plan (tests flip faults mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.cfg.faults
    }

    /// Computes when a transmission submitted at `now` arrives, reserving
    /// pipe capacity for data (and, if configured, control) messages.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
        size: SizeBits,
        rng: &mut SimRng,
    ) -> Transmit {
        if self.cfg.faults.is_active() && self.cfg.faults.drops(from, to, class, rng) {
            return Transmit::Dropped;
        }
        let latency = self.cfg.latency.sample(from, to, rng);
        let charged = class.is_data() || self.cfg.control_uses_bandwidth;
        if !charged || size.is_zero() {
            return Transmit::Deliver(now + latency);
        }
        let (_, up_done) = self.up[from.index()].admit(now, size);
        let arrive = up_done.saturating_add(latency);
        if !self.cfg.charge_download {
            return Transmit::Deliver(arrive);
        }
        let (_, down_done) = self.down[to.index()].admit(arrive, size);
        Transmit::Deliver(down_done)
    }

    /// The queueing delay currently ahead of `node`'s upload pipe.
    pub fn upload_backlog(&self, node: NodeId, now: SimTime) -> SimDuration {
        self.up[node.index()].backlog(now)
    }

    /// The queueing delay currently ahead of `node`'s download pipe.
    pub fn download_backlog(&self, node: NodeId, now: SimTime) -> SimDuration {
        self.down[node.index()].backlog(now)
    }

    /// Spare upload capacity averaged over `horizon` (what DCO advertises).
    pub fn available_upload(&self, node: NodeId, now: SimTime, horizon: SimDuration) -> Kbps {
        self.up[node.index()].available_kbps(now, horizon)
    }

    /// Spare download capacity averaged over `horizon`.
    pub fn available_download(&self, node: NodeId, now: SimTime, horizon: SimDuration) -> Kbps {
        self.down[node.index()].available_kbps(now, horizon)
    }

    /// Configured upload rate of `node`.
    pub fn upload_rate(&self, node: NodeId) -> Kbps {
        self.up[node.index()].rate()
    }

    /// Configured download rate of `node`.
    pub fn download_rate(&self, node: NodeId) -> Kbps {
        self.down[node.index()].rate()
    }

    /// Clears any queued transfers on both of `node`'s pipes (slot recycling
    /// after churn).
    pub fn reset_pipes(&mut self, node: NodeId, now: SimTime) {
        self.up[node.index()].reset(now);
        self.down[node.index()].reset(now);
    }

    /// Total data bits admitted to `node`'s upload pipe (diagnostic).
    pub fn uploaded_bits(&self, node: NodeId) -> u64 {
        self.up[node.index()].bits_admitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn net() -> (Network, SimRng) {
        let mut n = Network::new(NetConfig::default());
        n.push_node(NodeCaps::server_default()); // N0
        n.push_node(NodeCaps::peer_default()); // N1
        n.push_node(NodeCaps::peer_default()); // N2
        (n, SimRng::seed_from_u64(1))
    }

    const CHUNK: SizeBits = SizeBits(300_000);

    #[test]
    fn control_message_is_latency_only() {
        let (mut n, mut rng) = net();
        let t = n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Control,
            SizeBits::ZERO,
            &mut rng,
        );
        assert_eq!(t, Transmit::Deliver(SimTime::from_millis(50)));
        // Pipes untouched.
        assert!(n.upload_backlog(NodeId(1), SimTime::ZERO).is_zero());
    }

    #[test]
    fn data_chunk_server_to_peer() {
        let (mut n, mut rng) = net();
        // 75 ms serialization at server + 50 ms latency + 500 ms at peer
        // download = 625 ms.
        let t = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        assert_eq!(t, Transmit::Deliver(SimTime::from_millis(625)));
    }

    #[test]
    fn upload_pipe_serializes_consecutive_chunks() {
        let (mut n, mut rng) = net();
        let t1 = n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        let t2 = n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        // First: 500 up + 50 + 500 down = 1.05 s. Second queues behind both
        // pipes: up 0.5..1.0, arrive 1.05, down busy until 1.05 -> 1.55 s.
        assert_eq!(t1, Transmit::Deliver(SimTime::from_millis(1050)));
        assert_eq!(t2, Transmit::Deliver(SimTime::from_millis(1550)));
        assert_eq!(
            n.upload_backlog(NodeId(1), SimTime::ZERO),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn download_pipe_serializes_concurrent_senders() {
        let (mut n, mut rng) = net();
        let t1 = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        let t2 = n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        // Server chunk occupies N2's download 0.125..0.625.
        assert_eq!(t1, Transmit::Deliver(SimTime::from_millis(625)));
        // Peer chunk arrives at 0.55 but the pipe is busy until 0.625.
        assert_eq!(t2, Transmit::Deliver(SimTime::from_millis(1125)));
    }

    #[test]
    fn fault_plan_drops() {
        let cfg = NetConfig {
            faults: FaultPlan::uniform(1.0),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg);
        n.push_node(NodeCaps::peer_default());
        n.push_node(NodeCaps::peer_default());
        let mut rng = SimRng::seed_from_u64(1);
        let t = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        assert_eq!(t, Transmit::Dropped);
    }

    #[test]
    fn control_charged_when_configured() {
        let cfg = NetConfig {
            control_uses_bandwidth: true,
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg);
        n.push_node(NodeCaps::peer_default());
        n.push_node(NodeCaps::peer_default());
        let mut rng = SimRng::seed_from_u64(1);
        let t = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            MsgClass::Control,
            SizeBits::from_bytes(600_000 / 8), // 600 kb -> 1 s up + 1 s down
            &mut rng,
        );
        assert_eq!(t, Transmit::Deliver(SimTime::from_millis(2050)));
    }

    #[test]
    fn available_upload_reflects_load() {
        let (mut n, mut rng) = net();
        assert_eq!(
            n.available_upload(NodeId(1), SimTime::ZERO, SimDuration::from_secs(1)),
            Kbps(600)
        );
        n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        assert_eq!(
            n.available_upload(NodeId(1), SimTime::ZERO, SimDuration::from_secs(1)),
            Kbps(300)
        );
    }

    #[test]
    fn paper_model_skips_download_pipe() {
        let mut n = Network::new(NetConfig::paper_model());
        n.push_node(NodeCaps::peer_default());
        n.push_node(NodeCaps::peer_default());
        let mut rng = SimRng::seed_from_u64(1);
        // 500 ms upload + 50 ms latency, no download serialization.
        let t = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        assert_eq!(t, Transmit::Deliver(SimTime::from_millis(550)));
        // Concurrent senders to one receiver are not serialized there.
        let mut m = Network::new(NetConfig::paper_model());
        for _ in 0..3 {
            m.push_node(NodeCaps::peer_default());
        }
        let t1 = m.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        let t2 = m.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn reset_pipes_clears_backlog() {
        let (mut n, mut rng) = net();
        n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            MsgClass::Data,
            CHUNK,
            &mut rng,
        );
        n.reset_pipes(NodeId(1), SimTime::from_millis(100));
        assert!(n
            .upload_backlog(NodeId(1), SimTime::from_millis(100))
            .is_zero());
    }
}

#[cfg(test)]
mod latency_jitter_tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn uniform_latency_affects_deliveries() {
        let cfg = NetConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_millis(10),
                max: SimDuration::from_millis(200),
            },
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg);
        n.push_node(NodeCaps::peer_default());
        n.push_node(NodeCaps::peer_default());
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            match n.transmit(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                MsgClass::Control,
                SizeBits::ZERO,
                &mut rng,
            ) {
                Transmit::Deliver(at) => {
                    assert!(at >= SimTime::from_millis(10));
                    assert!(at <= SimTime::from_millis(200));
                    seen.insert(at.as_micros());
                }
                Transmit::Dropped => panic!("no faults configured"),
            }
        }
        assert!(
            seen.len() > 10,
            "jitter should vary deliveries: {}",
            seen.len()
        );
    }

    #[test]
    fn matrix_latency_is_pairwise() {
        let cfg = NetConfig {
            latency: LatencyModel::from_fn(2, SimDuration::from_millis(1), |a, b| {
                SimDuration::from_millis(u64::from(a.0 * 100 + b.0 * 10 + 5))
            }),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg);
        n.push_node(NodeCaps::peer_default());
        n.push_node(NodeCaps::peer_default());
        let mut rng = SimRng::seed_from_u64(3);
        let t01 = n.transmit(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            MsgClass::Control,
            SizeBits::ZERO,
            &mut rng,
        );
        let t10 = n.transmit(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            MsgClass::Control,
            SizeBits::ZERO,
            &mut rng,
        );
        assert_eq!(t01, Transmit::Deliver(SimTime::from_millis(15)));
        assert_eq!(t10, Transmit::Deliver(SimTime::from_millis(105)));
    }
}
