//! A FIFO access-link pipe.
//!
//! Each node owns two [`Pipe`]s — upload and download. A pipe serializes the
//! transfers pushed through it at its fixed rate: a transfer admitted at
//! `now` begins draining at `max(now, busy_until)` and occupies the pipe for
//! `size / rate`. This is exactly the paper's queueing rule: *"When a node is
//! overloaded, it will queue its chunks in its buffer and will not perform
//! any chunk transmission until it has sufficient bandwidth."*
//!
//! The pipe also answers two questions protocols need:
//!
//! * [`Pipe::backlog`] — how long until the pipe is idle again. DCO
//!   coordinators use the *provider's* upload backlog to judge "sufficient
//!   available bandwidth".
//! * [`Pipe::available_kbps`] — the average spare rate over a smoothing
//!   horizon, which is what a chunk index advertises.

use crate::msg::SizeBits;
use crate::time::{SimDuration, SimTime};

use super::bandwidth::Kbps;

/// A fixed-rate FIFO pipe.
#[derive(Clone, Debug)]
pub struct Pipe {
    rate: Kbps,
    /// The instant at which the last admitted transfer finishes draining.
    busy_until: SimTime,
    /// Total bits ever admitted (diagnostic).
    bits_admitted: u64,
    /// Total transfers ever admitted (diagnostic).
    transfers: u64,
}

impl Pipe {
    /// A new idle pipe with the given rate.
    pub fn new(rate: Kbps) -> Self {
        Pipe {
            rate,
            busy_until: SimTime::ZERO,
            bits_admitted: 0,
            transfers: 0,
        }
    }

    /// The pipe's configured rate.
    #[inline]
    pub fn rate(&self) -> Kbps {
        self.rate
    }

    /// Admits a transfer of `size` at time `now`.
    ///
    /// Returns `(start, finish)`: the transfer occupies the pipe on
    /// `[start, finish)` where `start = max(now, busy_until)` and
    /// `finish = start + size/rate`. The pipe's horizon advances to `finish`.
    pub fn admit(&mut self, now: SimTime, size: SizeBits) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let finish = start.saturating_add(self.rate.transfer_time(size));
        self.busy_until = finish;
        self.bits_admitted = self.bits_admitted.saturating_add(size.bits());
        self.transfers += 1;
        (start, finish)
    }

    /// How much queueing delay a transfer admitted at `now` would see before
    /// it starts draining (zero when idle).
    #[inline]
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// True if the pipe has no queued or in-flight transfer at `now`.
    #[inline]
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// The instant the pipe next becomes idle.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The spare capacity, averaged over the next `horizon`, in kbps.
    ///
    /// If the current backlog already exceeds the horizon the answer is 0; if
    /// the pipe is idle the answer is the full rate. This is the figure a DCO
    /// node advertises as its "available bandwidth" in chunk indices.
    pub fn available_kbps(&self, now: SimTime, horizon: SimDuration) -> Kbps {
        if horizon.is_zero() {
            return if self.is_idle(now) {
                self.rate
            } else {
                Kbps(0)
            };
        }
        let backlog = self.backlog(now);
        if backlog >= horizon {
            return Kbps(0);
        }
        let idle = horizon - backlog;
        let frac = idle.as_micros() as f64 / horizon.as_micros() as f64;
        Kbps((self.rate.0 as f64 * frac).floor() as u32)
    }

    /// Total bits ever admitted through the pipe.
    #[inline]
    pub fn bits_admitted(&self) -> u64 {
        self.bits_admitted
    }

    /// Total transfers ever admitted through the pipe.
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Resets the queue (used when a node slot is recycled after churn).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(k: u64) -> SizeBits {
        SizeBits::from_kilobits(k)
    }

    #[test]
    fn idle_pipe_starts_immediately() {
        let mut p = Pipe::new(Kbps(600));
        let (start, finish) = p.admit(SimTime::from_secs(10), kb(300));
        assert_eq!(start, SimTime::from_secs(10));
        assert_eq!(
            finish,
            SimTime::from_secs(10) + SimDuration::from_millis(500)
        );
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut p = Pipe::new(Kbps(600));
        let (_, f1) = p.admit(SimTime::ZERO, kb(300)); // 0.0 .. 0.5
        let (s2, f2) = p.admit(SimTime::ZERO, kb(300)); // 0.5 .. 1.0
        assert_eq!(s2, f1, "second transfer queues behind the first");
        assert_eq!(f2, SimTime::from_secs(1));
        assert_eq!(p.transfers(), 2);
        assert_eq!(p.bits_admitted(), 600_000);
    }

    #[test]
    fn pipe_drains_over_time() {
        let mut p = Pipe::new(Kbps(600));
        p.admit(SimTime::ZERO, kb(300));
        assert!(!p.is_idle(SimTime::from_millis(499)));
        assert!(p.is_idle(SimTime::from_millis(500)));
        // Admitting after an idle gap does not inherit the stale horizon.
        let (s, _) = p.admit(SimTime::from_secs(2), kb(300));
        assert_eq!(s, SimTime::from_secs(2));
    }

    #[test]
    fn backlog_measurement() {
        let mut p = Pipe::new(Kbps(600));
        p.admit(SimTime::ZERO, kb(300));
        assert_eq!(p.backlog(SimTime::ZERO), SimDuration::from_millis(500));
        assert_eq!(
            p.backlog(SimTime::from_millis(200)),
            SimDuration::from_millis(300)
        );
        assert_eq!(p.backlog(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn available_bandwidth_full_when_idle() {
        let p = Pipe::new(Kbps(600));
        assert_eq!(
            p.available_kbps(SimTime::ZERO, SimDuration::from_secs(1)),
            Kbps(600)
        );
    }

    #[test]
    fn available_bandwidth_zero_when_saturated() {
        let mut p = Pipe::new(Kbps(600));
        for _ in 0..10 {
            p.admit(SimTime::ZERO, kb(300)); // 5 s of backlog
        }
        assert_eq!(
            p.available_kbps(SimTime::ZERO, SimDuration::from_secs(1)),
            Kbps(0)
        );
    }

    #[test]
    fn available_bandwidth_partial() {
        let mut p = Pipe::new(Kbps(600));
        p.admit(SimTime::ZERO, kb(300)); // 0.5 s busy of a 1 s horizon
        assert_eq!(
            p.available_kbps(SimTime::ZERO, SimDuration::from_secs(1)),
            Kbps(300)
        );
    }

    #[test]
    fn available_bandwidth_zero_horizon_is_idle_test() {
        let mut p = Pipe::new(Kbps(600));
        assert_eq!(
            p.available_kbps(SimTime::ZERO, SimDuration::ZERO),
            Kbps(600)
        );
        p.admit(SimTime::ZERO, kb(300));
        assert_eq!(p.available_kbps(SimTime::ZERO, SimDuration::ZERO), Kbps(0));
    }

    #[test]
    fn reset_clears_backlog() {
        let mut p = Pipe::new(Kbps(600));
        p.admit(SimTime::ZERO, kb(3000));
        p.reset(SimTime::from_secs(1));
        assert!(p.is_idle(SimTime::from_secs(1)));
    }
}
