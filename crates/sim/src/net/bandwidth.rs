//! Access-link capacities.
//!
//! The paper models each node as having a fixed-rate upload pipe and a
//! fixed-rate download pipe (600 kbps for peers, 4000 kbps for the server).
//! [`Kbps`] is the capacity unit; [`NodeCaps`] bundles a node's pair.

use core::fmt;

use crate::msg::SizeBits;
use crate::time::SimDuration;

/// A link rate in kilobits per second (1 kbps = 1000 bits/s).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kbps(pub u32);

impl Kbps {
    /// The paper's peer capacity (both directions).
    pub const PEER_DEFAULT: Kbps = Kbps(600);
    /// The paper's server capacity (both directions).
    pub const SERVER_DEFAULT: Kbps = Kbps(4000);

    /// Rate in bits per second.
    #[inline]
    pub const fn bits_per_sec(self) -> u64 {
        self.0 as u64 * 1_000
    }

    /// Serialization time of `size` at this rate, rounded up to the next
    /// microsecond so a transfer never finishes early.
    ///
    /// A zero rate yields [`SimDuration::MAX`] — the message never drains,
    /// which models a node with no upstream capacity.
    pub fn transfer_time(self, size: SizeBits) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        let bps = self.bits_per_sec();
        if bps == 0 {
            return SimDuration::MAX;
        }
        // micros = ceil(bits * 1e6 / bps); bits ≤ 2^40ish in practice so the
        // u128 intermediate cannot overflow.
        let micros = (size.bits() as u128 * 1_000_000)
            .div_ceil(bps as u128)
            .min(u64::MAX as u128) as u64;
        SimDuration::from_micros(micros)
    }
}

impl fmt::Debug for Kbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kbps", self.0)
    }
}

impl fmt::Display for Kbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kbps", self.0)
    }
}

/// A node's access-link capacities.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeCaps {
    /// Upstream capacity.
    pub up: Kbps,
    /// Downstream capacity.
    pub down: Kbps,
}

impl NodeCaps {
    /// Symmetric capacity.
    pub const fn symmetric(rate: Kbps) -> Self {
        NodeCaps {
            up: rate,
            down: rate,
        }
    }

    /// The paper's peer profile: 600 kbps both ways.
    pub const fn peer_default() -> Self {
        NodeCaps::symmetric(Kbps::PEER_DEFAULT)
    }

    /// The paper's server profile: 4000 kbps both ways.
    pub const fn server_default() -> Self {
        NodeCaps::symmetric(Kbps::SERVER_DEFAULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_sec() {
        assert_eq!(Kbps(600).bits_per_sec(), 600_000);
        assert_eq!(Kbps(0).bits_per_sec(), 0);
    }

    #[test]
    fn chunk_serialization_times_match_paper() {
        // 300 kb chunk over a 600 kbps peer link = 0.5 s.
        let d = Kbps::PEER_DEFAULT.transfer_time(SizeBits::from_kilobits(300));
        assert_eq!(d, SimDuration::from_millis(500));
        // Same chunk from the 4000 kbps server = 75 ms.
        let d = Kbps::SERVER_DEFAULT.transfer_time(SizeBits::from_kilobits(300));
        assert_eq!(d, SimDuration::from_millis(75));
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 bit at 600 kbps is 1.67 µs -> rounds up to 2 µs.
        let d = Kbps(600).transfer_time(SizeBits(1));
        assert_eq!(d, SimDuration::from_micros(2));
    }

    #[test]
    fn zero_size_is_instant() {
        assert_eq!(Kbps(600).transfer_time(SizeBits::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn zero_rate_never_drains() {
        assert_eq!(
            Kbps(0).transfer_time(SizeBits::from_kilobits(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn caps_profiles() {
        let p = NodeCaps::peer_default();
        assert_eq!(p.up, Kbps(600));
        assert_eq!(p.down, Kbps(600));
        let s = NodeCaps::server_default();
        assert_eq!(s.up, Kbps(4000));
        assert_eq!(s.down, Kbps(4000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Kbps(600)), "600kbps");
    }
}
