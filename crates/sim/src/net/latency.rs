//! Propagation latency models.
//!
//! §III of the paper assumes "the typical delay in today's broadband Internet
//! connection is below 0.1 s"; the default model therefore charges a constant
//! 50 ms one-way delay (≈0.1 s round trip). A uniform-jitter model and an
//! explicit per-pair matrix are provided for sensitivity studies.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// A one-way propagation latency model between node pairs.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// The same latency for every pair.
    Constant(SimDuration),
    /// Latency drawn uniformly from `[min, max]` per transmission.
    ///
    /// Draws are made from the engine's seeded RNG, so runs stay
    /// reproducible.
    Uniform {
        /// Lower bound (inclusive).
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// An explicit symmetric matrix indexed by `(from, to)`; missing entries
    /// fall back to `default`.
    Matrix {
        /// Row-major `n × n` one-way latencies.
        table: Vec<SimDuration>,
        /// Side length of the matrix.
        n: usize,
        /// Fallback latency for out-of-range nodes.
        default: SimDuration,
    },
}

impl LatencyModel {
    /// The paper's default: 50 ms one-way (≈0.1 s RTT).
    pub fn paper_default() -> Self {
        LatencyModel::Constant(SimDuration::from_millis(50))
    }

    /// Builds an `n × n` matrix model from a function of the pair.
    pub fn from_fn(
        n: usize,
        default: SimDuration,
        f: impl Fn(NodeId, NodeId) -> SimDuration,
    ) -> Self {
        let mut table = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                table.push(f(NodeId(a as u32), NodeId(b as u32)));
            }
        }
        LatencyModel::Matrix { table, n, default }
    }

    /// The constant latency, when the model is [`LatencyModel::Constant`].
    ///
    /// Sharded runs use this as the conservative lookahead: with a constant
    /// one-way delay every cross-worker message arrives at least this far
    /// after it was sent, so workers can advance in lockstep windows of
    /// exactly this width.
    pub fn as_constant(&self) -> Option<SimDuration> {
        match self {
            LatencyModel::Constant(d) => Some(*d),
            _ => None,
        }
    }

    /// Samples the one-way latency from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    *min
                } else {
                    let span = max.as_micros() - min.as_micros();
                    SimDuration::from_micros(min.as_micros() + rng.gen_range(0..=span))
                }
            }
            LatencyModel::Matrix { table, n, default } => {
                let (a, b) = (from.index(), to.index());
                if a < *n && b < *n {
                    table[a * n + b]
                } else {
                    *default
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let m = LatencyModel::paper_default();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            m.sample(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(90),
        };
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(10));
            assert!(d <= SimDuration::from_millis(90));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(30),
            max: SimDuration::from_millis(30),
        };
        let mut rng = SimRng::seed_from_u64(7);
        assert_eq!(
            m.sample(NodeId(2), NodeId(3), &mut rng),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn matrix_lookup_and_fallback() {
        let m = LatencyModel::from_fn(3, SimDuration::from_millis(99), |a, b| {
            SimDuration::from_millis((a.0 * 10 + b.0) as u64)
        });
        let mut rng = SimRng::seed_from_u64(7);
        assert_eq!(
            m.sample(NodeId(2), NodeId(1), &mut rng),
            SimDuration::from_millis(21)
        );
        assert_eq!(
            m.sample(NodeId(5), NodeId(1), &mut rng),
            SimDuration::from_millis(99),
            "out-of-range uses default"
        );
    }
}
