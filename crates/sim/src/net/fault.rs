//! Fault injection.
//!
//! A [`FaultPlan`] lets tests and churn experiments drop messages
//! probabilistically (per traffic class) or cut specific node pairs entirely.
//! Draws come from the engine RNG so faulty runs are as reproducible as clean
//! ones.

use std::collections::HashSet;

use crate::msg::MsgClass;
use crate::node::NodeId;
use crate::rng::SimRng;

/// A message-loss policy applied to every transmission.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a data message is lost in flight.
    pub data_loss: f64,
    /// Probability in `[0, 1]` that a control message is lost in flight.
    pub control_loss: f64,
    /// Directed pairs that are completely partitioned.
    cut_links: HashSet<(NodeId, NodeId)>,
}

impl FaultPlan {
    /// A plan that never drops anything.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with uniform loss probability across both classes.
    pub fn uniform(loss: f64) -> Self {
        FaultPlan {
            data_loss: loss,
            control_loss: loss,
            cut_links: HashSet::new(),
        }
    }

    /// Severs the directed link `from → to`.
    pub fn cut_link(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.insert((from, to));
    }

    /// Severs both directions between `a` and `b`.
    pub fn cut_pair(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert((a, b));
        self.cut_links.insert((b, a));
    }

    /// Restores the directed link `from → to`.
    pub fn heal_link(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.remove(&(from, to));
    }

    /// True if any fault can ever fire (lets the engine skip RNG draws on
    /// the fast path of a clean run).
    pub fn is_active(&self) -> bool {
        self.data_loss > 0.0 || self.control_loss > 0.0 || !self.cut_links.is_empty()
    }

    /// Decides whether the transmission `from → to` of class `class` is
    /// dropped.
    pub fn drops(&self, from: NodeId, to: NodeId, class: MsgClass, rng: &mut SimRng) -> bool {
        if self.cut_links.contains(&(from, to)) {
            return true;
        }
        let p = match class {
            MsgClass::Data => self.data_loss,
            MsgClass::Control => self.control_loss,
        };
        p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn clean_plan_never_drops() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!plan.drops(NodeId(0), NodeId(1), MsgClass::Data, &mut rng));
            assert!(!plan.drops(NodeId(0), NodeId(1), MsgClass::Control, &mut rng));
        }
    }

    #[test]
    fn certain_loss_always_drops() {
        let plan = FaultPlan::uniform(1.0);
        assert!(plan.is_active());
        let mut rng = SimRng::seed_from_u64(3);
        assert!(plan.drops(NodeId(0), NodeId(1), MsgClass::Data, &mut rng));
        assert!(plan.drops(NodeId(0), NodeId(1), MsgClass::Control, &mut rng));
    }

    #[test]
    fn per_class_loss() {
        let plan = FaultPlan {
            data_loss: 1.0,
            control_loss: 0.0,
            ..FaultPlan::default()
        };
        let mut rng = SimRng::seed_from_u64(3);
        assert!(plan.drops(NodeId(0), NodeId(1), MsgClass::Data, &mut rng));
        assert!(!plan.drops(NodeId(0), NodeId(1), MsgClass::Control, &mut rng));
    }

    #[test]
    fn cut_links_are_directed() {
        let mut plan = FaultPlan::none();
        plan.cut_link(NodeId(0), NodeId(1));
        let mut rng = SimRng::seed_from_u64(3);
        assert!(plan.drops(NodeId(0), NodeId(1), MsgClass::Control, &mut rng));
        assert!(!plan.drops(NodeId(1), NodeId(0), MsgClass::Control, &mut rng));
        plan.heal_link(NodeId(0), NodeId(1));
        assert!(!plan.drops(NodeId(0), NodeId(1), MsgClass::Control, &mut rng));
    }

    #[test]
    fn cut_pair_severs_both_directions() {
        let mut plan = FaultPlan::none();
        plan.cut_pair(NodeId(4), NodeId(9));
        let mut rng = SimRng::seed_from_u64(3);
        assert!(plan.drops(NodeId(4), NodeId(9), MsgClass::Data, &mut rng));
        assert!(plan.drops(NodeId(9), NodeId(4), MsgClass::Data, &mut rng));
    }

    #[test]
    fn approximate_loss_rate() {
        let plan = FaultPlan::uniform(0.3);
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| plan.drops(NodeId(0), NodeId(1), MsgClass::Data, &mut rng))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "measured {rate}");
    }
}
