//! Seeded randomness.
//!
//! Every run is driven by a single master `u64` seed. The engine keeps one
//! [`SmallRng`] for its own draws (latency jitter, fault coin-flips) and
//! protocols can derive **independent per-node streams** through
//! [`RngHub`], so adding a random draw in one protocol module does not
//! perturb the sequence seen by another.
//!
//! Stream derivation uses SplitMix64 over `(master, stream, node)`, the
//! standard way to fan one seed out into decorrelated substreams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::node::NodeId;

/// SplitMix64 finalizer; decorrelates nearby seeds.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A factory of decorrelated RNG streams derived from one master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngHub {
    master: u64,
}

impl RngHub {
    /// A hub for the given master seed.
    pub fn new(master: u64) -> Self {
        RngHub { master }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// The engine's own stream.
    pub fn engine_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(self.master ^ 0xE46E_0000_0000_0001))
    }

    /// A named protocol-level stream (`stream` distinguishes subsystems,
    /// e.g. 0 = membership, 1 = neighbor pick, ...).
    pub fn stream_rng(&self, stream: u64) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(splitmix64(self.master) ^ stream))
    }

    /// A per-node stream within a subsystem.
    pub fn node_rng(&self, stream: u64, node: NodeId) -> SmallRng {
        let s = splitmix64(splitmix64(self.master) ^ stream);
        SmallRng::seed_from_u64(splitmix64(s ^ (node.0 as u64).wrapping_mul(0x9E37_79B9)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Nearby inputs produce far-apart outputs.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn same_seed_same_streams() {
        let h1 = RngHub::new(42);
        let h2 = RngHub::new(42);
        let mut a = h1.node_rng(3, NodeId(7));
        let mut b = h2.node_rng(3, NodeId(7));
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_nodes_get_different_streams() {
        let h = RngHub::new(42);
        let mut a = h.node_rng(0, NodeId(1));
        let mut b = h.node_rng(0, NodeId(2));
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_streams_differ_for_same_node() {
        let h = RngHub::new(42);
        let mut a = h.node_rng(0, NodeId(1));
        let mut b = h.node_rng(1, NodeId(1));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn engine_rng_differs_from_streams() {
        let h = RngHub::new(42);
        let mut e = h.engine_rng();
        let mut s = h.stream_rng(0);
        assert_ne!(e.gen::<u64>(), s.gen::<u64>());
        assert_eq!(h.master_seed(), 42);
    }
}
