//! Seeded randomness.
//!
//! Every run is driven by a single master `u64` seed. The engine keeps one
//! [`SimRng`] for its own draws (latency jitter, fault coin-flips) and
//! protocols can derive **independent per-node streams** through
//! [`RngHub`], so adding a random draw in one protocol module does not
//! perturb the sequence seen by another.
//!
//! Stream derivation uses SplitMix64 over `(master, stream, node)`, the
//! standard way to fan one seed out into decorrelated substreams.
//!
//! [`SimRng`] is an in-tree xoshiro256++ generator: the workspace builds
//! with no external crates (offline-reproducible), and the sequence for a
//! given seed is bit-identical on every platform and toolchain — a harder
//! guarantee than an external RNG crate gives across versions, and the
//! bedrock of the sweep harness's cross-`--jobs` determinism checks.

use crate::node::NodeId;

/// SplitMix64 finalizer; decorrelates nearby seeds.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic PRNG used everywhere in the workspace: xoshiro256++
/// seeded through SplitMix64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// A generator whose whole state is derived from `seed` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw of the requested type (`u64`, `u32`, `usize`, `f64`
    /// in `[0, 1)`, or `bool`).
    #[inline]
    pub fn gen<T: StandardDraw>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from a half-open or inclusive integer range, or a
    /// half-open `f64` range. Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen::<f64>() < p
        }
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniform pick from `xs`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }
}

/// Types [`SimRng::gen`] can draw uniformly.
pub trait StandardDraw {
    /// Draws one value.
    fn draw(rng: &mut SimRng) -> Self;
}

impl StandardDraw for u64 {
    #[inline]
    fn draw(rng: &mut SimRng) -> u64 {
        rng.next_u64()
    }
}

impl StandardDraw for u32 {
    #[inline]
    fn draw(rng: &mut SimRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDraw for usize {
    #[inline]
    fn draw(rng: &mut SimRng) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardDraw for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw(rng: &mut SimRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDraw for bool {
    #[inline]
    fn draw(rng: &mut SimRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SimRng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The element type of the range.
    type Output;
    /// Samples one value.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

/// Uniform integer in `[0, n)` by multiply-shift; `n` must be non-zero.
/// A modulo would do for simulation purposes, but widening multiply is
/// just as cheap and nearly bias-free.
#[inline]
fn below(rng: &mut SimRng, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && core::mem::size_of::<$t>() == 8 {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    };
}

impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(usize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty f64 range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// A factory of decorrelated RNG streams derived from one master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngHub {
    master: u64,
}

impl RngHub {
    /// A hub for the given master seed.
    pub fn new(master: u64) -> Self {
        RngHub { master }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// The engine's own stream.
    pub fn engine_rng(&self) -> SimRng {
        SimRng::seed_from_u64(splitmix64(self.master ^ 0xE46E_0000_0000_0001))
    }

    /// A named protocol-level stream (`stream` distinguishes subsystems,
    /// e.g. 0 = membership, 1 = neighbor pick, ...).
    pub fn stream_rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from_u64(splitmix64(splitmix64(self.master) ^ stream))
    }

    /// A per-node stream within a subsystem.
    pub fn node_rng(&self, stream: u64, node: NodeId) -> SimRng {
        let s = splitmix64(splitmix64(self.master) ^ stream);
        SimRng::seed_from_u64(splitmix64(s ^ (node.0 as u64).wrapping_mul(0x9E37_79B9)))
    }

    /// An independent stream for one experiment cell, derived from the
    /// cell's coordinates — the sweep harness gives every `(method, scale,
    /// churn, seed)` cell its own master seed so cells stay decorrelated
    /// however they are ordered across worker threads.
    pub fn cell_seed(&self, cell: u64) -> u64 {
        splitmix64(splitmix64(self.master ^ 0xCE11_CE11_CE11_CE11) ^ cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Nearby inputs produce far-apart outputs.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn same_seed_same_streams() {
        let h1 = RngHub::new(42);
        let h2 = RngHub::new(42);
        let mut a = h1.node_rng(3, NodeId(7));
        let mut b = h2.node_rng(3, NodeId(7));
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_nodes_get_different_streams() {
        let h = RngHub::new(42);
        let mut a = h.node_rng(0, NodeId(1));
        let mut b = h.node_rng(0, NodeId(2));
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_streams_differ_for_same_node() {
        let h = RngHub::new(42);
        let mut a = h.node_rng(0, NodeId(1));
        let mut b = h.node_rng(1, NodeId(1));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn engine_rng_differs_from_streams() {
        let h = RngHub::new(42);
        let mut e = h.engine_rng();
        let mut s = h.stream_rng(0);
        assert_ne!(e.gen::<u64>(), s.gen::<u64>());
        assert_eq!(h.master_seed(), 42);
    }

    #[test]
    fn cell_seeds_are_decorrelated() {
        let h = RngHub::new(42);
        assert_eq!(h.cell_seed(3), h.cell_seed(3));
        assert_ne!(h.cell_seed(3), h.cell_seed(4));
        assert_ne!(RngHub::new(1).cell_seed(3), RngHub::new(2).cell_seed(3));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SimRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "measured {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // A 50-element shuffle virtually never returns identity.
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::seed_from_u64(17);
        let xs = [1, 2, 3];
        for _ in 0..20 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        assert!(rng.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn sequences_are_platform_stable() {
        // Golden values pin the exact bit stream: any change to seeding or
        // the generator is a determinism break and must be deliberate.
        let mut rng = SimRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Verified against an independent implementation of xoshiro256++
        // with SplitMix64 state expansion (the reference construction).
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }
}
