//! Overhead accounting.
//!
//! The paper's third metric, *extra overhead*, is "the number of
//! communication messages other than video chunks", where "one message
//! forwarding operation is regarded as one unit". The engine therefore bumps
//! a counter on **every control transmission** (including each per-hop DHT
//! forward, since a forward is a fresh transmission).
//!
//! Counters are kept three ways:
//!
//! * a grand total per traffic class,
//! * a per-tag breakdown (protocols label sends — `"bufmap"`, `"lookup"`,
//!   `"insert"`, ... ) for diagnosing *where* overhead comes from,
//! * a per-second time series of control units, which is exactly the series
//!   Figure 10 plots.

use crate::rng::splitmix64;
use crate::time::SimTime;

/// Message counters maintained by the engine.
///
/// The per-tag breakdown is a **sorted vector** rather than a `BTreeMap`:
/// the tag population is tiny (one entry per distinct protocol label) while
/// `record_control` runs once per control transmission — tens of millions
/// of times in a large run — so a binary search over one contiguous array,
/// fronted by a last-tag hit cache (sends are bursty per tag), beats tree
/// traversal. Iteration order stays sorted-by-tag, which the snapshot and
/// digest rely on.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    control_total: u64,
    data_total: u64,
    /// `(tag, units)`, sorted by tag.
    by_tag: Vec<(&'static str, u64)>,
    /// Index into `by_tag` of the most recently bumped tag.
    last_tag: usize,
    /// control units bucketed by whole sim second.
    control_per_sec: Vec<u64>,
    dropped_dead: u64,
    dropped_fault: u64,
}

impl Counters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Records one control transmission at `now` with a diagnostic tag.
    pub fn record_control(&mut self, now: SimTime, tag: &'static str) {
        self.control_total += 1;
        self.bump_tag(tag);
        let sec = now.as_secs() as usize;
        if self.control_per_sec.len() <= sec {
            self.control_per_sec.resize(sec + 1, 0);
        }
        self.control_per_sec[sec] += 1;
    }

    #[inline]
    fn bump_tag(&mut self, tag: &'static str) {
        if let Some(e) = self.by_tag.get_mut(self.last_tag) {
            if e.0 == tag {
                e.1 += 1;
                return;
            }
        }
        match self.by_tag.binary_search_by(|(t, _)| (*t).cmp(tag)) {
            Ok(i) => {
                self.by_tag[i].1 += 1;
                self.last_tag = i;
            }
            Err(i) => {
                self.by_tag.insert(i, (tag, 1));
                self.last_tag = i;
            }
        }
    }

    /// Records one data (chunk) transmission.
    pub fn record_data(&mut self) {
        self.data_total += 1;
    }

    /// Records a message dropped because the destination was dead.
    pub fn record_dropped_dead(&mut self) {
        self.dropped_dead += 1;
    }

    /// Records a message dropped by fault injection.
    pub fn record_dropped_fault(&mut self) {
        self.dropped_fault += 1;
    }

    /// Total control transmissions — the paper's "extra overhead".
    pub fn control_total(&self) -> u64 {
        self.control_total
    }

    /// Total data (chunk) transmissions.
    pub fn data_total(&self) -> u64 {
        self.data_total
    }

    /// Units attributed to one tag.
    pub fn tagged(&self, tag: &str) -> u64 {
        match self.by_tag.binary_search_by(|(t, _)| (*t).cmp(tag)) {
            Ok(i) => self.by_tag[i].1,
            Err(_) => 0,
        }
    }

    /// The full per-tag breakdown, sorted by tag.
    pub fn tags(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_tag.iter().map(|&(k, v)| (k, v))
    }

    /// Control units in the whole second `sec` (0 if beyond the run).
    pub fn control_in_second(&self, sec: u64) -> u64 {
        self.control_per_sec.get(sec as usize).copied().unwrap_or(0)
    }

    /// Cumulative control units up to and including second `sec`.
    pub fn control_through_second(&self, sec: u64) -> u64 {
        self.control_per_sec.iter().take(sec as usize + 1).sum()
    }

    /// Messages dropped to dead destinations.
    pub fn dropped_dead(&self) -> u64 {
        self.dropped_dead
    }

    /// Messages dropped by fault injection.
    pub fn dropped_fault(&self) -> u64 {
        self.dropped_fault
    }

    /// A comparable, order-stable snapshot of every counter, including the
    /// full per-tag breakdown. Two runs of the same seeded cell must
    /// produce `Eq` snapshots — the determinism regression tests and the
    /// sweep harness rely on this.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            control_total: self.control_total,
            data_total: self.data_total,
            by_tag: self
                .by_tag
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
            control_per_sec: self.control_per_sec.clone(),
            dropped_dead: self.dropped_dead,
            dropped_fault: self.dropped_fault,
        }
    }

    /// A 64-bit digest of [`Counters::snapshot`] — cheap to store per sweep
    /// cell and to compare across `--jobs` levels.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |w: u64| h = splitmix64(h ^ w);
        fold(self.control_total);
        fold(self.data_total);
        fold(self.dropped_dead);
        fold(self.dropped_fault);
        for (tag, n) in &self.by_tag {
            for b in tag.bytes() {
                fold(u64::from(b));
            }
            fold(*n);
        }
        for (sec, n) in self.control_per_sec.iter().enumerate() {
            if *n != 0 {
                fold(sec as u64);
                fold(*n);
            }
        }
        h
    }
}

/// Allocation and event-rate accounting for the perf harness.
///
/// [`perf::CountingAlloc`] wraps the system allocator behind relaxed atomic
/// counters; a perf binary installs it with `#[global_allocator]` and
/// brackets each measured region with [`perf::AllocStats::snapshot`]. The
/// simulation itself never reads these counters — they exist so `dco-perf`
/// can report allocations-per-run alongside wall clock without dragging a
/// profiler into the tree. In binaries that do *not* install the allocator
/// every snapshot is zero and the deltas degrade gracefully.
pub mod perf {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
    use std::time::Instant;

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static FREES: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    /// Bytes currently allocated (allocs minus frees). Signed so a free of
    /// memory obtained before the allocator was consulted cannot wrap.
    static LIVE: AtomicI64 = AtomicI64::new(0);
    /// High-water mark of `LIVE` since process start (or the last
    /// [`AllocStats::reset_peak`]).
    static PEAK: AtomicI64 = AtomicI64::new(0);

    #[inline]
    fn live_add(delta: i64) {
        let live = LIVE.fetch_add(delta, Relaxed) + delta;
        if delta > 0 {
            PEAK.fetch_max(live, Relaxed);
        }
    }

    /// A counting wrapper over the system allocator. Install in a perf
    /// binary with `#[global_allocator] static A: CountingAlloc =
    /// CountingAlloc;` — the per-call cost is two relaxed atomic adds.
    pub struct CountingAlloc;

    // SAFETY: defers every allocation verbatim to `System`; the counters
    // are monotonic atomics with no effect on the returned memory.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            live_add(layout.size() as i64);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            FREES.fetch_add(1, Relaxed);
            live_add(-(layout.size() as i64));
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(new_size as u64, Relaxed);
            live_add(new_size as i64 - layout.size() as i64);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Cumulative allocator totals at one instant.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct AllocStats {
        /// Allocations (incl. reallocs) since process start.
        pub allocs: u64,
        /// Deallocations since process start.
        pub frees: u64,
        /// Bytes requested since process start (not live bytes).
        pub bytes: u64,
    }

    impl AllocStats {
        /// The current cumulative totals (all zero unless a
        /// [`CountingAlloc`] is installed as the global allocator).
        pub fn snapshot() -> AllocStats {
            AllocStats {
                allocs: ALLOCS.load(Relaxed),
                frees: FREES.load(Relaxed),
                bytes: BYTES.load(Relaxed),
            }
        }

        /// Bytes currently allocated and not yet freed (0 unless a
        /// [`CountingAlloc`] is installed).
        pub fn live_bytes() -> u64 {
            LIVE.load(Relaxed).max(0) as u64
        }

        /// High-water mark of [`AllocStats::live_bytes`] since process
        /// start or the last [`AllocStats::reset_peak`].
        pub fn peak_live_bytes() -> u64 {
            PEAK.load(Relaxed).max(0) as u64
        }

        /// Rewinds the live-bytes high-water mark to the current live
        /// level, so the next [`AllocStats::peak_live_bytes`] reports the
        /// peak of the region that starts *now*. Not thread-safe with
        /// respect to concurrent measured regions — the perf binaries
        /// measure one region at a time.
        pub fn reset_peak() {
            PEAK.store(LIVE.load(Relaxed), Relaxed);
        }

        /// Totals accrued since an `earlier` snapshot.
        pub fn delta_since(self, earlier: AllocStats) -> AllocStats {
            AllocStats {
                allocs: self.allocs.saturating_sub(earlier.allocs),
                frees: self.frees.saturating_sub(earlier.frees),
                bytes: self.bytes.saturating_sub(earlier.bytes),
            }
        }
    }

    /// Wall-clock + allocation meter for one measured region.
    pub struct PerfMeter {
        t0: Instant,
        a0: AllocStats,
    }

    impl PerfMeter {
        /// Starts timing now. Also rewinds the live-bytes high-water mark,
        /// so the sample's `peak_live_bytes` covers exactly this region.
        #[allow(clippy::new_without_default)]
        pub fn start() -> PerfMeter {
            AllocStats::reset_peak();
            PerfMeter {
                a0: AllocStats::snapshot(),
                t0: Instant::now(),
            }
        }

        /// Stops timing; `events` is the engine's dispatched-event count
        /// for the region (used for the events/s rate).
        pub fn finish(self, events: u64) -> PerfSample {
            let wall_ns = self.t0.elapsed().as_nanos();
            PerfSample {
                wall_ns,
                events,
                alloc: AllocStats::snapshot().delta_since(self.a0),
                peak_live_bytes: AllocStats::peak_live_bytes(),
                live_bytes_end: AllocStats::live_bytes(),
            }
        }
    }

    /// One measured region: wall clock, event count, allocator deltas.
    #[derive(Clone, Copy, Debug)]
    pub struct PerfSample {
        /// Wall-clock nanoseconds.
        pub wall_ns: u128,
        /// Events dispatched in the region.
        pub events: u64,
        /// Allocator activity in the region.
        pub alloc: AllocStats,
        /// Peak bytes simultaneously live during the region (the memory
        /// the region actually *needed*, as opposed to `alloc.bytes`,
        /// which is cumulative turnover).
        pub peak_live_bytes: u64,
        /// Bytes still live when the region ended.
        pub live_bytes_end: u64,
    }

    impl PerfSample {
        /// Dispatched events per wall-clock second.
        pub fn events_per_sec(&self) -> f64 {
            if self.wall_ns == 0 {
                return 0.0;
            }
            self.events as f64 / (self.wall_ns as f64 / 1e9)
        }

        /// Wall-clock milliseconds as a float.
        pub fn wall_ms(&self) -> f64 {
            self.wall_ns as f64 / 1e6
        }
    }
}

/// An owned, comparable copy of all counters at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total control transmissions.
    pub control_total: u64,
    /// Total data transmissions.
    pub data_total: u64,
    /// Per-tag breakdown, sorted by tag.
    pub by_tag: Vec<(String, u64)>,
    /// Control units per whole second.
    pub control_per_sec: Vec<u64>,
    /// Drops to dead destinations.
    pub dropped_dead: u64,
    /// Drops by fault injection.
    pub dropped_fault: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_tags() {
        let mut c = Counters::new();
        c.record_control(SimTime::from_secs(0), "lookup");
        c.record_control(SimTime::from_secs(0), "lookup");
        c.record_control(SimTime::from_secs(1), "insert");
        c.record_data();
        assert_eq!(c.control_total(), 3);
        assert_eq!(c.data_total(), 1);
        assert_eq!(c.tagged("lookup"), 2);
        assert_eq!(c.tagged("insert"), 1);
        assert_eq!(c.tagged("missing"), 0);
        let tags: Vec<_> = c.tags().collect();
        assert_eq!(tags, vec![("insert", 1), ("lookup", 2)]);
    }

    #[test]
    fn tag_breakdown_stays_sorted_under_interleaving() {
        let mut c = Counters::new();
        // Bursty + interleaved bumps exercise the last-tag hit cache and
        // the binary-search miss path in both directions.
        for tag in ["zz", "aa", "zz", "mm", "aa", "aa", "zz", "mm"] {
            c.record_control(SimTime::from_secs(0), tag);
        }
        let tags: Vec<_> = c.tags().collect();
        assert_eq!(tags, vec![("aa", 3), ("mm", 2), ("zz", 3)]);
        assert_eq!(c.tagged("mm"), 2);
        assert_eq!(c.tagged("absent"), 0);
    }

    #[test]
    fn per_second_series() {
        let mut c = Counters::new();
        c.record_control(SimTime::from_millis(100), "x");
        c.record_control(SimTime::from_millis(900), "x");
        c.record_control(SimTime::from_millis(2500), "x");
        assert_eq!(c.control_in_second(0), 2);
        assert_eq!(c.control_in_second(1), 0);
        assert_eq!(c.control_in_second(2), 1);
        assert_eq!(c.control_in_second(99), 0);
        assert_eq!(c.control_through_second(0), 2);
        assert_eq!(c.control_through_second(2), 3);
        assert_eq!(c.control_through_second(50), 3);
    }

    #[test]
    fn snapshot_and_digest_track_state() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        for c in [&mut a, &mut b] {
            c.record_control(SimTime::from_secs(1), "lookup");
            c.record_data();
            c.record_dropped_fault();
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.digest(), b.digest());
        b.record_control(SimTime::from_secs(2), "insert");
        assert_ne!(a.snapshot(), b.snapshot());
        assert_ne!(a.digest(), b.digest());
        // The digest sees per-second placement, not just totals.
        let mut c = Counters::new();
        c.record_control(SimTime::from_secs(5), "lookup");
        let mut d = Counters::new();
        d.record_control(SimTime::from_secs(6), "lookup");
        assert_eq!(c.control_total(), d.control_total());
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn perf_meter_and_alloc_deltas() {
        use super::perf::{AllocStats, PerfMeter};
        let later = AllocStats {
            allocs: 10,
            frees: 7,
            bytes: 4096,
        };
        let earlier = AllocStats {
            allocs: 4,
            frees: 9, // deltas saturate rather than wrap
            bytes: 1024,
        };
        let d = later.delta_since(earlier);
        assert_eq!((d.allocs, d.frees, d.bytes), (6, 0, 3072));

        let sample = PerfMeter::start().finish(1_000);
        assert_eq!(sample.events, 1_000);
        assert!(sample.events_per_sec() >= 0.0);
        assert!(sample.wall_ms() >= 0.0);
        // Without a CountingAlloc installed (lib tests run on the system
        // allocator) the byte gauges read zero and must not underflow.
        assert_eq!(sample.peak_live_bytes, 0);
        assert_eq!(sample.live_bytes_end, 0);
        assert_eq!(AllocStats::live_bytes(), 0);
        AllocStats::reset_peak();
        assert_eq!(AllocStats::peak_live_bytes(), 0);
    }

    #[test]
    fn drop_counters() {
        let mut c = Counters::new();
        c.record_dropped_dead();
        c.record_dropped_fault();
        c.record_dropped_fault();
        assert_eq!(c.dropped_dead(), 1);
        assert_eq!(c.dropped_fault(), 2);
    }
}
