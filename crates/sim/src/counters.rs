//! Overhead accounting.
//!
//! The paper's third metric, *extra overhead*, is "the number of
//! communication messages other than video chunks", where "one message
//! forwarding operation is regarded as one unit". The engine therefore bumps
//! a counter on **every control transmission** (including each per-hop DHT
//! forward, since a forward is a fresh transmission).
//!
//! Counters are kept three ways:
//!
//! * a grand total per traffic class,
//! * a per-tag breakdown (protocols label sends — `"bufmap"`, `"lookup"`,
//!   `"insert"`, ... ) for diagnosing *where* overhead comes from,
//! * a per-second time series of control units, which is exactly the series
//!   Figure 10 plots.

use std::collections::BTreeMap;

use crate::rng::splitmix64;
use crate::time::SimTime;

/// Message counters maintained by the engine.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    control_total: u64,
    data_total: u64,
    by_tag: BTreeMap<&'static str, u64>,
    /// control units bucketed by whole sim second.
    control_per_sec: Vec<u64>,
    dropped_dead: u64,
    dropped_fault: u64,
}

impl Counters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Records one control transmission at `now` with a diagnostic tag.
    pub fn record_control(&mut self, now: SimTime, tag: &'static str) {
        self.control_total += 1;
        *self.by_tag.entry(tag).or_insert(0) += 1;
        let sec = now.as_secs() as usize;
        if self.control_per_sec.len() <= sec {
            self.control_per_sec.resize(sec + 1, 0);
        }
        self.control_per_sec[sec] += 1;
    }

    /// Records one data (chunk) transmission.
    pub fn record_data(&mut self) {
        self.data_total += 1;
    }

    /// Records a message dropped because the destination was dead.
    pub fn record_dropped_dead(&mut self) {
        self.dropped_dead += 1;
    }

    /// Records a message dropped by fault injection.
    pub fn record_dropped_fault(&mut self) {
        self.dropped_fault += 1;
    }

    /// Total control transmissions — the paper's "extra overhead".
    pub fn control_total(&self) -> u64 {
        self.control_total
    }

    /// Total data (chunk) transmissions.
    pub fn data_total(&self) -> u64 {
        self.data_total
    }

    /// Units attributed to one tag.
    pub fn tagged(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).copied().unwrap_or(0)
    }

    /// The full per-tag breakdown, sorted by tag.
    pub fn tags(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_tag.iter().map(|(k, v)| (*k, *v))
    }

    /// Control units in the whole second `sec` (0 if beyond the run).
    pub fn control_in_second(&self, sec: u64) -> u64 {
        self.control_per_sec.get(sec as usize).copied().unwrap_or(0)
    }

    /// Cumulative control units up to and including second `sec`.
    pub fn control_through_second(&self, sec: u64) -> u64 {
        self.control_per_sec.iter().take(sec as usize + 1).sum()
    }

    /// Messages dropped to dead destinations.
    pub fn dropped_dead(&self) -> u64 {
        self.dropped_dead
    }

    /// Messages dropped by fault injection.
    pub fn dropped_fault(&self) -> u64 {
        self.dropped_fault
    }

    /// A comparable, order-stable snapshot of every counter, including the
    /// full per-tag breakdown. Two runs of the same seeded cell must
    /// produce `Eq` snapshots — the determinism regression tests and the
    /// sweep harness rely on this.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            control_total: self.control_total,
            data_total: self.data_total,
            by_tag: self
                .by_tag
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            control_per_sec: self.control_per_sec.clone(),
            dropped_dead: self.dropped_dead,
            dropped_fault: self.dropped_fault,
        }
    }

    /// A 64-bit digest of [`Counters::snapshot`] — cheap to store per sweep
    /// cell and to compare across `--jobs` levels.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |w: u64| h = splitmix64(h ^ w);
        fold(self.control_total);
        fold(self.data_total);
        fold(self.dropped_dead);
        fold(self.dropped_fault);
        for (tag, n) in &self.by_tag {
            for b in tag.bytes() {
                fold(u64::from(b));
            }
            fold(*n);
        }
        for (sec, n) in self.control_per_sec.iter().enumerate() {
            if *n != 0 {
                fold(sec as u64);
                fold(*n);
            }
        }
        h
    }
}

/// An owned, comparable copy of all counters at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total control transmissions.
    pub control_total: u64,
    /// Total data transmissions.
    pub data_total: u64,
    /// Per-tag breakdown, sorted by tag.
    pub by_tag: Vec<(String, u64)>,
    /// Control units per whole second.
    pub control_per_sec: Vec<u64>,
    /// Drops to dead destinations.
    pub dropped_dead: u64,
    /// Drops by fault injection.
    pub dropped_fault: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_tags() {
        let mut c = Counters::new();
        c.record_control(SimTime::from_secs(0), "lookup");
        c.record_control(SimTime::from_secs(0), "lookup");
        c.record_control(SimTime::from_secs(1), "insert");
        c.record_data();
        assert_eq!(c.control_total(), 3);
        assert_eq!(c.data_total(), 1);
        assert_eq!(c.tagged("lookup"), 2);
        assert_eq!(c.tagged("insert"), 1);
        assert_eq!(c.tagged("missing"), 0);
        let tags: Vec<_> = c.tags().collect();
        assert_eq!(tags, vec![("insert", 1), ("lookup", 2)]);
    }

    #[test]
    fn per_second_series() {
        let mut c = Counters::new();
        c.record_control(SimTime::from_millis(100), "x");
        c.record_control(SimTime::from_millis(900), "x");
        c.record_control(SimTime::from_millis(2500), "x");
        assert_eq!(c.control_in_second(0), 2);
        assert_eq!(c.control_in_second(1), 0);
        assert_eq!(c.control_in_second(2), 1);
        assert_eq!(c.control_in_second(99), 0);
        assert_eq!(c.control_through_second(0), 2);
        assert_eq!(c.control_through_second(2), 3);
        assert_eq!(c.control_through_second(50), 3);
    }

    #[test]
    fn snapshot_and_digest_track_state() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        for c in [&mut a, &mut b] {
            c.record_control(SimTime::from_secs(1), "lookup");
            c.record_data();
            c.record_dropped_fault();
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.digest(), b.digest());
        b.record_control(SimTime::from_secs(2), "insert");
        assert_ne!(a.snapshot(), b.snapshot());
        assert_ne!(a.digest(), b.digest());
        // The digest sees per-second placement, not just totals.
        let mut c = Counters::new();
        c.record_control(SimTime::from_secs(5), "lookup");
        let mut d = Counters::new();
        d.record_control(SimTime::from_secs(6), "lookup");
        assert_eq!(c.control_total(), d.control_total());
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn drop_counters() {
        let mut c = Counters::new();
        c.record_dropped_dead();
        c.record_dropped_fault();
        c.record_dropped_fault();
        assert_eq!(c.dropped_dead(), 1);
        assert_eq!(c.dropped_fault(), 2);
    }
}
