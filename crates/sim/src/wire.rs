//! In-tree binary wire codec.
//!
//! The sharded runner moves protocol messages between worker processes, and
//! the workspace has **zero external dependencies** — so serialization is a
//! small hand-rolled codec: fixed-width little-endian integers, `u32`
//! length-prefixed sequences, one tag byte per enum variant. No
//! self-description, no versioning — both ends of a pipe are always the
//! same binary (workers are re-execs of the orchestrator), so the format
//! only has to be unambiguous and cheap.
//!
//! Every decode is bounds-checked: a truncated or corrupt buffer yields
//! [`WireError`], never a panic or an out-of-bounds read.

use crate::engine::RemoteMsg;
use crate::msg::SizeBits;
use crate::net::Kbps;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Decoding failure: the buffer ended early or a tag byte was invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the value needs.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: truncated buffer"),
            WireError::BadTag(t) => write!(f, "wire: invalid enum tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an encoded buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes one value.
    pub fn get<T: WireCodec>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }
}

/// A type that can be written to and read back from the wire.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer (convenience for tests and frames).
pub fn encode_to_vec<T: WireCodec>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

/// Decodes a value that must consume the whole buffer.
pub fn decode_exact<T: WireCodec>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        // Trailing garbage means the stream is out of sync — reject rather
        // than silently drop bytes.
        return Err(WireError::Truncated);
    }
    Ok(v)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let b = r.take(core::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i64);

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get::<u8>()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.get()?))
    }
}

impl WireCodec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.get()?))
    }
}

impl WireCodec for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimTime::from_micros(r.get()?))
    }
}

impl WireCodec for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_micros(r.get()?))
    }
}

impl WireCodec for Kbps {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Kbps(r.get()?))
    }
}

impl WireCodec for SizeBits {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SizeBits(r.get()?))
    }
}

impl<M: WireCodec> WireCodec for RemoteMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.key.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.msg.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RemoteMsg {
            at: r.get()?,
            key: r.get()?,
            from: r.get()?,
            to: r.get()?,
            msg: r.get()?,
        })
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get::<u8>()? {
            0 => Ok(None),
            1 => Ok(Some(r.get()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get::<u32>()? as usize;
        // A length prefix can claim at most `remaining` one-byte elements;
        // rejecting larger claims up front prevents huge pre-allocations
        // from a corrupt prefix.
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.get()?);
        }
        Ok(out)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((r.get()?, r.get()?))
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get::<u32>()? as usize;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadTag(0xFF))
    }
}

impl WireCodec for crate::counters::CounterSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.control_total.encode(out);
        self.data_total.encode(out);
        self.by_tag.encode(out);
        self.control_per_sec.encode(out);
        self.dropped_dead.encode(out);
        self.dropped_fault.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::counters::CounterSnapshot {
            control_total: r.get()?,
            data_total: r.get()?,
            by_tag: r.get()?,
            control_per_sec: r.get()?,
            dropped_dead: r.get()?,
            dropped_fault: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireCodec + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_exact::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xA5u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX - 3);
        round_trip(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEFu128);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(NodeId(77));
        round_trip(SimTime::from_micros(123_456_789));
        round_trip(SimDuration::from_millis(50));
        round_trip(SizeBits(600_000));
        round_trip(Kbps(600));
        round_trip(crate::counters::CounterSnapshot {
            control_total: 10,
            data_total: 3,
            by_tag: vec![("chord.notify".to_string(), 4), ("lookup".to_string(), 6)],
            control_per_sec: vec![1, 0, 9],
            dropped_dead: 2,
            dropped_fault: 0,
        });
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let v = 0.1f64 + 0.2; // classic non-representable sum
        let bytes = encode_to_vec(&v);
        let back = decode_exact::<f64>(&bytes).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Option::<u32>::None);
        round_trip(Some(9u64));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip((NodeId(1), 99u64));
        round_trip(vec![(3u32, Some(4u8)), (5, None)]);
        round_trip("chunk-driven overlay".to_string());
        round_trip(String::new());
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let bytes = encode_to_vec(&0xDEAD_BEEFu32);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_exact::<u32>(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
        // A vector length prefix claiming more elements than the buffer holds.
        let mut evil = Vec::new();
        1_000_000u32.encode(&mut evil);
        assert_eq!(decode_exact::<Vec<u64>>(&evil), Err(WireError::Truncated));
        // Truncated mid-element.
        let mut v = encode_to_vec(&vec![1u64, 2, 3]);
        v.truncate(v.len() - 1);
        assert_eq!(decode_exact::<Vec<u64>>(&v), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert_eq!(decode_exact::<u32>(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(decode_exact::<bool>(&[2]), Err(WireError::BadTag(2)));
        assert_eq!(
            decode_exact::<Option<u8>>(&[9, 0]),
            Err(WireError::BadTag(9))
        );
    }
}
