//! # dco-metrics — the paper's four evaluation metrics
//!
//! §IV of the paper evaluates every protocol on four metrics; this crate
//! implements their bookkeeping and the figure-shaped output containers:
//!
//! 1. **Mesh delay** — generation → last receiver
//!    ([`StreamObserver::mean_mesh_delay`]).
//! 2. **Fill ratio** — audience fraction holding a chunk at an instant
//!    ([`StreamObserver::mean_fill_ratio_at_offset`],
//!    [`StreamObserver::global_fill_ratio`]).
//! 3. **Extra overhead** — control-message units; counted by
//!    `dco_sim::counters::Counters` at the engine, summarized here.
//! 4. **Percentage of received chunks** —
//!    [`StreamObserver::received_percentage`].
//!
//! [`Figure`]/[`Series`] carry harness results and render as text tables or
//! CSV; [`stats`] has the small numeric helpers used to check the paper's
//! qualitative claims (linearity, orderings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitgrid;
pub mod observer;
pub mod playback;
pub mod reference;
pub mod series;
pub mod shard;
pub mod stats;

pub use bitgrid::BitGrid;
pub use observer::{ReceptionLog, StreamObserver};
pub use playback::{mean_continuity, replay, PlaybackReport, PlayerPolicy};
pub use reference::RetainedObserver;
pub use series::{average_figures, Figure, Series};
pub use shard::ObserverShard;
