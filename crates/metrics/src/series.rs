//! Figure-shaped result containers.
//!
//! The bench harness regenerates each of the paper's figures as a
//! [`Figure`]: a title, axis labels, and one [`Series`] per curve. Figures
//! render as aligned text tables (for the terminal and EXPERIMENTS.md) and
//! as CSV (for external plotting).

use std::fmt::Write as _;

/// One curve: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"DCO"`, `"push"`).
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Mean of all y values (0 for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }
}

/// A complete figure: several curves over a shared x axis.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// Figure id and caption, e.g. `"Fig. 5: mesh delay vs neighbors"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Finds a curve by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All distinct x values across curves, sorted.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders the figure as an aligned text table, one row per x value.
    pub fn to_text_table(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "#   y: {}", self.y_label);
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>12}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for x in xs {
            let mut row = format!("{x:>12.2}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, " {y:>12.4}");
                    }
                    None => {
                        let _ = write!(row, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Renders the figure as CSV: `x,label1,label2,...`.
    pub fn to_csv(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        let mut header = self.x_label.clone();
        for s in &self.series {
            header.push(',');
            header.push_str(&s.label);
        }
        let _ = writeln!(out, "{header}");
        for x in xs {
            let mut row = format!("{x}");
            for s in &self.series {
                row.push(',');
                if let Some(y) = s.y_at(x) {
                    let _ = write!(row, "{y}");
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

/// Averages several same-shaped figures (multi-seed runs) point by point.
///
/// Panics if the figures do not share identical series labels and x values.
pub fn average_figures(figs: &[Figure]) -> Figure {
    assert!(!figs.is_empty(), "no figures to average");
    let mut out = figs[0].clone();
    for s in &mut out.series {
        for p in &mut s.points {
            p.1 = 0.0;
        }
    }
    for f in figs {
        assert_eq!(f.series.len(), out.series.len(), "series count mismatch");
        for (si, s) in f.series.iter().enumerate() {
            assert_eq!(s.label, out.series[si].label, "label mismatch");
            assert_eq!(s.points.len(), out.series[si].points.len(), "point count");
            for (pi, &(x, y)) in s.points.iter().enumerate() {
                let q = &mut out.series[si].points[pi];
                assert!((q.0 - x).abs() < 1e-9, "x mismatch");
                q.1 += y;
            }
        }
    }
    let k = figs.len() as f64;
    for s in &mut out.series {
        for p in &mut s.points {
            p.1 /= k;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut f = Figure::new("Fig. T: test", "x", "y");
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("b");
        b.push(1.0, 1.0);
        b.push(3.0, 3.0);
        f.push_series(a);
        f.push_series(b);
        f
    }

    #[test]
    fn series_accessors() {
        let f = fig();
        let a = f.series_by_label("a").unwrap();
        assert_eq!(a.y_at(2.0), Some(20.0));
        assert_eq!(a.y_at(9.0), None);
        assert!((a.mean_y() - 15.0).abs() < 1e-12);
        assert!(f.series_by_label("zzz").is_none());
        assert_eq!(Series::new("e").mean_y(), 0.0);
    }

    #[test]
    fn x_values_merged_and_sorted() {
        let f = fig();
        assert_eq!(f.x_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn text_table_renders_gaps() {
        let t = fig().to_text_table();
        assert!(t.contains("Fig. T: test"));
        assert!(t.contains('a') && t.contains('b'));
        // The b series has no point at x=2 → a dash in that row.
        let row2: Vec<&str> = t
            .lines()
            .filter(|l| l.trim_start().starts_with("2.00"))
            .collect();
        assert_eq!(row2.len(), 1);
        assert!(row2[0].contains('-'));
    }

    #[test]
    fn csv_round_trips_values() {
        let c = fig().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("x,a,b"));
        assert_eq!(lines.next(), Some("1,10,1"));
        assert_eq!(lines.next(), Some("2,20,"));
        assert_eq!(lines.next(), Some("3,,3"));
    }

    #[test]
    fn averaging_multi_seed_runs() {
        let f1 = fig();
        let mut f2 = fig();
        for s in &mut f2.series {
            for p in &mut s.points {
                p.1 *= 3.0;
            }
        }
        let avg = average_figures(&[f1, f2]);
        assert_eq!(avg.series_by_label("a").unwrap().y_at(1.0), Some(20.0));
        assert_eq!(avg.series_by_label("b").unwrap().y_at(3.0), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "no figures")]
    fn averaging_empty_panics() {
        average_figures(&[]);
    }

    #[test]
    fn clone_round_trip() {
        let f = fig();
        let cloned = f.clone();
        assert_eq!(f, cloned);
    }
}
