//! A flat 2-D bit matrix.
//!
//! Backs the observer's audience record: one bit per `(chunk, node)` pair
//! in a single `Vec<u64>` allocation — an 8× reduction over the nested
//! `Vec<Vec<bool>>` layout it replaced, with the row fold the metrics run
//! (`count_ones`, iterate-set-bits) compiled down to word operations.

/// A rows × cols bit matrix in one contiguous word slab. Rows can grow;
/// the column count is fixed at construction.
#[derive(Clone, Debug)]
pub struct BitGrid {
    cols: usize,
    /// Words per row (rows are word-aligned so row operations never touch
    /// a neighboring row).
    row_words: usize,
    words: Vec<u64>,
    rows: usize,
}

impl BitGrid {
    /// An all-zero matrix of `rows` × `cols` bits.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row_words = cols.div_ceil(64);
        BitGrid {
            cols,
            row_words,
            words: vec![0; rows * row_words],
            rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grows to at least `rows` rows (new rows all-zero).
    pub fn grow_rows(&mut self, rows: usize) {
        if rows > self.rows {
            self.rows = rows;
            self.words.resize(rows * self.row_words, 0);
        }
    }

    /// Sets bit `(row, col)`. Panics if `col >= cols`; grows are the
    /// caller's job (`row` must be in range).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        self.words[row * self.row_words + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`; out-of-range coordinates read as `false`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        if row >= self.rows || col >= self.cols {
            return false;
        }
        self.words[row * self.row_words + col / 64] >> (col % 64) & 1 != 0
    }

    /// Iterates the set-bit column indices of `row` in increasing order
    /// (empty for an out-of-range row).
    pub fn ones(&self, row: usize) -> Ones<'_> {
        let words: &[u64] = if row < self.rows {
            &self.words[row * self.row_words..(row + 1) * self.row_words]
        } else {
            &[]
        };
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Total set bits over the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing word slab (row-major, `rows() * cols().div_ceil(64)`
    /// words). Used to ship audience grids between shard workers.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs another grid's word slab (same column count, `rows` rows) into
    /// this one, growing the row dimension if needed.
    pub fn or_words(&mut self, rows: usize, words: &[u64]) {
        assert_eq!(
            words.len(),
            rows * self.row_words,
            "word slab does not match this grid's geometry"
        );
        self.grow_rows(rows);
        for (dst, src) in self.words.iter_mut().zip(words) {
            *dst |= src;
        }
    }
}

/// Iterator over the set-bit columns of one [`BitGrid`] row.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut g = BitGrid::new(3, 130);
        assert!(!g.get(0, 0));
        g.set(0, 0);
        g.set(1, 63);
        g.set(1, 64);
        g.set(2, 129);
        assert!(g.get(0, 0));
        assert!(g.get(1, 63));
        assert!(g.get(1, 64));
        assert!(g.get(2, 129));
        assert!(!g.get(2, 128));
        assert!(!g.get(99, 0), "out-of-range row reads false");
        assert!(!g.get(0, 999), "out-of-range col reads false");
        assert_eq!(g.count_ones(), 4);
        assert_eq!((g.rows(), g.cols()), (3, 130));
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut g = BitGrid::new(2, 200);
        for col in [5usize, 0, 64, 199, 63] {
            g.set(1, col);
        }
        let got: Vec<usize> = g.ones(1).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 199]);
        assert_eq!(g.ones(0).count(), 0, "untouched row");
        assert_eq!(g.ones(7).count(), 0, "out-of-range row");
    }

    #[test]
    fn rows_are_word_isolated() {
        // 10 cols → 1 word per row; setting the whole of row 0 must not
        // leak into row 1.
        let mut g = BitGrid::new(2, 10);
        for col in 0..10 {
            g.set(0, col);
        }
        assert_eq!(g.ones(1).count(), 0);
        assert_eq!(g.count_ones(), 10);
    }

    #[test]
    fn grow_rows_preserves_and_zeroes() {
        let mut g = BitGrid::new(1, 70);
        g.set(0, 69);
        g.grow_rows(4);
        assert_eq!(g.rows(), 4);
        assert!(g.get(0, 69));
        assert_eq!(g.count_ones(), 1);
        g.set(3, 1);
        assert!(g.get(3, 1));
        g.grow_rows(2); // shrink request is a no-op
        assert_eq!(g.rows(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_col_panics() {
        let mut g = BitGrid::new(1, 10);
        g.set(0, 10);
    }
}
