//! The retained reference model of the stream observer.
//!
//! [`RetainedObserver`] is the nested-`Vec`, keep-everything formulation of
//! the reception record: every reception instant of every `(chunk, node)`
//! pair is retained and the metrics fold over the retained lists at query
//! time. It is deliberately the *obviously correct* executable
//! specification — O(receptions) memory, one heap allocation per chunk row
//! and per pair — and exists for two jobs:
//!
//! * the property tests (`crates/metrics/tests/proptest_observer.rs`) pin
//!   the flat [`StreamObserver`](crate::StreamObserver)'s semantics against
//!   it on randomized arrival patterns (duplicates and out-of-order
//!   arrivals included), metric by metric and through the playback
//!   replayer;
//! * the observer microbenchmark (`cargo bench -p dco-bench --bench micro`)
//!   measures the record path of both layouts side by side.
//!
//! It is **not** used by any simulation: at N = 100k nodes it is exactly
//! the memory shape the flat observer exists to avoid.

use dco_sim::node::NodeId;
use dco_sim::time::{SimDuration, SimTime};

use crate::observer::ReceptionLog;

/// Keep-everything reception record: the semantic reference the flat
/// observer is property-tested against.
#[derive(Clone, Debug, Default)]
pub struct RetainedObserver {
    n_nodes: usize,
    /// Generation time per chunk sequence number.
    generated: Vec<Option<SimTime>>,
    /// `recv[seq][node]` = every reception instant, in arrival order.
    recv: Vec<Vec<Vec<SimTime>>>,
    /// `expected[seq][node]`.
    expected: Vec<Vec<bool>>,
}

impl RetainedObserver {
    /// An observer for up to `n_nodes` nodes and `n_chunks` chunks.
    pub fn new(n_nodes: usize, n_chunks: usize) -> Self {
        RetainedObserver {
            n_nodes,
            generated: vec![None; n_chunks],
            recv: vec![vec![Vec::new(); n_nodes]; n_chunks],
            expected: vec![vec![false; n_nodes]; n_chunks],
        }
    }

    /// Number of chunk slots.
    pub fn n_chunks(&self) -> usize {
        self.generated.len()
    }

    /// Number of node slots.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Grows the chunk dimension to at least `n` slots.
    pub fn grow_chunks(&mut self, n: usize) {
        while self.generated.len() < n {
            self.generated.push(None);
            self.recv.push(vec![Vec::new(); self.n_nodes]);
            self.expected.push(vec![false; self.n_nodes]);
        }
    }

    /// Records that chunk `seq` was generated at `t`.
    pub fn record_generated(&mut self, seq: u32, t: SimTime) {
        self.grow_chunks(seq as usize + 1);
        self.generated[seq as usize] = Some(t);
    }

    /// Marks `(seq, node)` as part of the audience.
    pub fn mark_expected(&mut self, seq: u32, node: NodeId) {
        self.grow_chunks(seq as usize + 1);
        if node.index() < self.n_nodes {
            self.expected[seq as usize][node.index()] = true;
        }
    }

    /// Records a reception of chunk `seq` by `node` at `t`. Every arrival
    /// is retained; the metrics use the earliest.
    pub fn record_received(&mut self, seq: u32, node: NodeId, t: SimTime) {
        self.grow_chunks(seq as usize + 1);
        if node.index() >= self.n_nodes {
            return;
        }
        self.recv[seq as usize][node.index()].push(t);
    }

    /// Generation time of chunk `seq`, if recorded.
    pub fn generated_at(&self, seq: u32) -> Option<SimTime> {
        self.generated.get(seq as usize).copied().flatten()
    }

    /// First (earliest) reception of `seq` by `node`, if any.
    pub fn received_at(&self, seq: u32, node: NodeId) -> Option<SimTime> {
        if node.index() >= self.n_nodes {
            return None;
        }
        self.recv
            .get(seq as usize)?
            .get(node.index())?
            .iter()
            .min()
            .copied()
    }

    /// True if `(seq, node)` is in the audience.
    pub fn is_expected(&self, seq: u32, node: NodeId) -> bool {
        self.expected
            .get(seq as usize)
            .map(|v| node.index() < v.len() && v[node.index()])
            .unwrap_or(false)
    }

    /// Arrivals retained beyond the first (what the flat observer folds
    /// into its duplicate/out-of-order counters).
    pub fn rereceptions(&self) -> u64 {
        self.recv
            .iter()
            .flatten()
            .map(|l| l.len().saturating_sub(1) as u64)
            .sum()
    }

    /// Generation → last expected receiver for chunk `seq` (see
    /// [`StreamObserver::mesh_delay`](crate::StreamObserver::mesh_delay)).
    pub fn mesh_delay(&self, seq: u32, horizon: SimTime) -> Option<SimDuration> {
        let gen = self.generated_at(seq)?;
        let mut last = gen;
        let mut expected_any = false;
        for node in 0..self.n_nodes {
            if !self.expected[seq as usize][node] {
                continue;
            }
            expected_any = true;
            match self.received_at(seq, NodeId(node as u32)) {
                None => return Some(horizon.saturating_since(gen)),
                Some(t) => last = last.max(t),
            }
        }
        expected_any.then(|| last - gen)
    }

    /// Mean mesh delay over generated chunks, horizon-capped.
    pub fn mean_mesh_delay(&self, horizon: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for seq in 0..self.generated.len() as u32 {
            if let Some(d) = self.mesh_delay(seq, horizon) {
                sum += d.as_secs_f64();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of the audience of `seq` holding the chunk at `at`.
    pub fn fill_ratio(&self, seq: u32, at: SimTime) -> Option<f64> {
        self.generated_at(seq)?;
        let mut have = 0usize;
        let mut audience = 0usize;
        for node in 0..self.n_nodes {
            if !self.expected[seq as usize][node] {
                continue;
            }
            audience += 1;
            if self
                .received_at(seq, NodeId(node as u32))
                .is_some_and(|t| t <= at)
            {
                have += 1;
            }
        }
        (audience > 0).then(|| have as f64 / audience as f64)
    }

    /// Mean fill ratio `offset` after each chunk's generation.
    pub fn mean_fill_ratio_at_offset(&self, offset: SimDuration) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for seq in 0..self.generated.len() as u32 {
            if let Some(gen) = self.generated_at(seq) {
                if let Some(f) = self.fill_ratio(seq, gen + offset) {
                    sum += f;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Received expected pairs over all expected pairs at instant `at`.
    pub fn global_fill_ratio(&self, at: SimTime) -> f64 {
        let mut have = 0usize;
        let mut total = 0usize;
        for seq in 0..self.generated.len() {
            if self.generated[seq].is_none() {
                continue;
            }
            for node in 0..self.n_nodes {
                if !self.expected[seq][node] {
                    continue;
                }
                total += 1;
                if self
                    .received_at(seq as u32, NodeId(node as u32))
                    .is_some_and(|t| t <= at)
                {
                    have += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            have as f64 / total as f64
        }
    }

    /// Received expected pairs by `deadline`, in percent.
    pub fn received_percentage(&self, deadline: SimTime) -> f64 {
        100.0 * self.global_fill_ratio(deadline)
    }

    /// Total expected `(chunk, node)` pairs.
    pub fn expected_pairs(&self) -> usize {
        self.expected
            .iter()
            .map(|v| v.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Total received expected pairs (any time).
    pub fn received_pairs(&self) -> usize {
        let mut n = 0;
        for seq in 0..self.generated.len() {
            for node in 0..self.n_nodes {
                if self.expected[seq][node] && !self.recv[seq][node].is_empty() {
                    n += 1;
                }
            }
        }
        n
    }
}

impl ReceptionLog for RetainedObserver {
    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn n_chunks(&self) -> usize {
        self.generated.len()
    }

    fn generated_at(&self, seq: u32) -> Option<SimTime> {
        RetainedObserver::generated_at(self, seq)
    }

    fn received_at(&self, seq: u32, node: NodeId) -> Option<SimTime> {
        RetainedObserver::received_at(self, seq, node)
    }

    fn is_expected(&self, seq: u32, node: NodeId) -> bool {
        RetainedObserver::is_expected(self, seq, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn retains_every_arrival_and_folds_min_on_query() {
        let mut o = RetainedObserver::new(2, 1);
        o.record_generated(0, t(0));
        o.mark_expected(0, NodeId(1));
        o.record_received(0, NodeId(1), t(5));
        o.record_received(0, NodeId(1), t(3)); // out of order
        o.record_received(0, NodeId(1), t(9)); // duplicate
        assert_eq!(o.received_at(0, NodeId(1)), Some(t(3)));
        assert_eq!(o.rereceptions(), 2);
        assert_eq!(o.received_pairs(), 1);
        assert_eq!(o.expected_pairs(), 1);
        assert_eq!(o.mesh_delay(0, t(100)), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn grow_and_range_edges() {
        let mut o = RetainedObserver::new(2, 0);
        o.record_received(3, NodeId(0), t(1));
        assert_eq!(o.n_chunks(), 4);
        assert_eq!(o.generated_at(3), None);
        o.record_received(0, NodeId(7), t(1)); // out of range: ignored
        assert_eq!(o.received_at(0, NodeId(7)), None);
        assert!(!o.is_expected(9, NodeId(0)));
    }
}
