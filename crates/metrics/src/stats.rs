//! Small numeric helpers shared by the harness: mean, percentiles, linear
//! regression slope (used to check "overhead grows linearly with n" style
//! claims from the paper).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
/// Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// Sample standard deviation (Bessel-corrected, n−1); 0 for fewer than two
/// samples. This is the estimator confidence intervals want — [`std_dev`]
/// stays population-form for the existing descriptive uses.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The median on a sorted copy: middle element, or mean of the middle two.
/// 0 for an empty slice. The multi-seed paper-shape tests assert on this —
/// robust to one outlier seed where a mean is not.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom (exact
/// table through df = 30, the asymptote beyond) — what a 95% CI multiplies
/// the standard error by. Seed counts in sweeps are small, so the normal
/// approximation would understate the interval badly (df = 4: 2.776 vs
/// 1.960).
pub fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        _ => 1.960,
    }
}

/// Half-width of the 95% confidence interval for the mean: `t · s / √n`.
/// 0 for fewer than two samples (no spread estimate exists).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    t_quantile_975(xs.len() - 1) * sample_std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Mean / spread / interval summary of one metric over seeds — the row
/// shape the sweep harness aggregates each cell group into.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryStats {
    /// Samples summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Median.
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Half-width of the 95% CI for the mean (Student-t).
    pub ci95: f64,
}

impl SummaryStats {
    /// Summarizes `xs`; all-zero for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return SummaryStats {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
                ci95: 0.0,
            };
        }
        SummaryStats {
            n: xs.len(),
            mean: mean(xs),
            std_dev: sample_std_dev(xs),
            median: median(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            ci95: ci95_half_width(xs),
        }
    }
}

/// Least-squares slope of y over x; 0 when degenerate.
pub fn linreg_slope(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// Pearson correlation coefficient; 0 when degenerate. Used to verify
/// "grows linearly" claims (r close to 1).
pub fn pearson_r(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let (mx, my) = (mean(&xs), mean(&ys));
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for &(x, y) in points {
        num += (x - mx) * (y - my);
        dx2 += (x - mx) * (x - mx);
        dy2 += (y - my) * (y - my);
    }
    let denom = (dx2 * dy2).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        // Robust to one wild outlier, unlike the mean.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0, 1e9]), 3.0);
    }

    #[test]
    fn sample_std_dev_uses_bessel() {
        // Population: sqrt(1.0); sample: sqrt(2.0/1) = sqrt(2).
        let xs = [2.0, 4.0];
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
        assert!((sample_std_dev(&xs) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(sample_std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn t_quantiles_shrink_toward_normal() {
        assert!(t_quantile_975(0).is_infinite());
        assert!((t_quantile_975(4) - 2.776).abs() < 1e-9);
        assert!((t_quantile_975(30) - 2.042).abs() < 1e-9);
        assert_eq!(t_quantile_975(1000), 1.960);
        for df in 1..40 {
            assert!(t_quantile_975(df) >= t_quantile_975(df + 1));
        }
    }

    #[test]
    fn ci95_matches_hand_computation() {
        // n=5, s=sample std dev, t(4)=2.776.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = sample_std_dev(&xs);
        let expect = 2.776 * s / 5f64.sqrt();
        assert!((ci95_half_width(&xs) - expect).abs() < 1e-12);
        assert_eq!(ci95_half_width(&[3.0]), 0.0);
    }

    #[test]
    fn summary_stats_round_trip() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        let s = SummaryStats::from_samples(&xs);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95 > 0.0);
        let empty = SummaryStats::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn slope_of_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linreg_slope(&pts) - 3.0).abs() < 1e-9);
        assert!((pearson_r(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_regression() {
        assert_eq!(linreg_slope(&[(1.0, 2.0)]), 0.0);
        assert_eq!(linreg_slope(&[(1.0, 2.0), (1.0, 3.0)]), 0.0);
        assert_eq!(pearson_r(&[(1.0, 1.0)]), 0.0);
        // Flat line: slope 0, r degenerate → 0.
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        assert_eq!(linreg_slope(&flat), 0.0);
        assert_eq!(pearson_r(&flat), 0.0);
    }

    #[test]
    fn anticorrelation() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -2.0 * i as f64)).collect();
        assert!((pearson_r(&pts) + 1.0).abs() < 1e-9);
        assert!((linreg_slope(&pts) + 2.0).abs() < 1e-9);
    }
}
