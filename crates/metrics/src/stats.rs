//! Small numeric helpers shared by the harness: mean, percentiles, linear
//! regression slope (used to check "overhead grows linearly with n" style
//! claims from the paper).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
/// Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// Least-squares slope of y over x; 0 when degenerate.
pub fn linreg_slope(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// Pearson correlation coefficient; 0 when degenerate. Used to verify
/// "grows linearly" claims (r close to 1).
pub fn pearson_r(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let (mx, my) = (mean(&xs), mean(&ys));
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for &(x, y) in points {
        num += (x - mx) * (y - my);
        dx2 += (x - mx) * (x - mx);
        dy2 += (y - my) * (y - my);
    }
    let denom = (dx2 * dy2).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn slope_of_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linreg_slope(&pts) - 3.0).abs() < 1e-9);
        assert!((pearson_r(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_regression() {
        assert_eq!(linreg_slope(&[(1.0, 2.0)]), 0.0);
        assert_eq!(linreg_slope(&[(1.0, 2.0), (1.0, 3.0)]), 0.0);
        assert_eq!(pearson_r(&[(1.0, 1.0)]), 0.0);
        // Flat line: slope 0, r degenerate → 0.
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        assert_eq!(linreg_slope(&flat), 0.0);
        assert_eq!(pearson_r(&flat), 0.0);
    }

    #[test]
    fn anticorrelation() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -2.0 * i as f64)).collect();
        assert!((pearson_r(&pts) + 1.0).abs() < 1e-9);
        assert!((linreg_slope(&pts) + 2.0).abs() < 1e-9);
    }
}
