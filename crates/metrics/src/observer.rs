//! The stream observer: per-chunk reception bookkeeping.
//!
//! Every streaming protocol in the workspace reports three things to a
//! [`StreamObserver`]:
//!
//! * when the server **generated** each chunk,
//! * which `(chunk, node)` pairs are **expected** (the audience — for the
//!   no-churn experiments every non-server node; under churn, the nodes
//!   alive when the chunk was generated),
//! * when each node first **received** each chunk.
//!
//! All four of the paper's metrics fold out of this record:
//!
//! 1. **Mesh delay** (Fig. 5) — generation → last expected receiver.
//! 2. **Fill ratio** (Figs. 6–7) — fraction of the audience holding a chunk
//!    at a given instant.
//! 3. **Extra overhead** (Figs. 8–10) — read from the engine's
//!    [`Counters`](dco_sim::counters::Counters), not from here.
//! 4. **Percentage of received chunks** (Figs. 11–12) — received pairs over
//!    expected pairs by a deadline.
//!
//! # Memory layout
//!
//! The observer is the largest single data structure of a big run — it is
//! O(nodes × chunks) while everything else is O(nodes) — so its layout is
//! flat by design:
//!
//! * first-arrival instants live in **one contiguous slab** (`first_rx`,
//!   row-major by chunk), not a `Vec` of per-chunk `Vec`s;
//! * the audience matrix is **one bit per pair** ([`BitGrid`]), an 8×
//!   reduction over `Vec<Vec<bool>>`;
//! * duplicate and out-of-order re-receptions are **folded online** into
//!   two counters instead of being retained.
//!
//! At N = 100k nodes × 100 chunks that is ~81 MB in three allocations,
//! versus ~91 MB in ~200 allocations for the nested layout — and the slab
//! never reallocates during a run once sized. The semantics are pinned
//! against the retained nested model
//! ([`reference::RetainedObserver`](crate::reference::RetainedObserver)) by
//! a property test (`crates/metrics/tests/proptest_observer.rs`).

use dco_sim::node::NodeId;
use dco_sim::time::{SimDuration, SimTime, MICROS_PER_SEC};

use crate::bitgrid::BitGrid;

/// Read access to a reception record: the interface the playback replayer
/// ([`crate::playback`]) and the figure extractors need. Implemented by the
/// flat [`StreamObserver`] and by the retained reference model
/// ([`crate::reference::RetainedObserver`]), so QoS replay results can be
/// compared bit-for-bit across layouts.
pub trait ReceptionLog {
    /// Number of node slots.
    fn n_nodes(&self) -> usize;
    /// Number of chunk slots.
    fn n_chunks(&self) -> usize;
    /// Generation time of chunk `seq`, if recorded.
    fn generated_at(&self, seq: u32) -> Option<SimTime>;
    /// First reception of `seq` by `node`, if any.
    fn received_at(&self, seq: u32, node: NodeId) -> Option<SimTime>;
    /// True if `(seq, node)` is in the audience.
    fn is_expected(&self, seq: u32, node: NodeId) -> bool;
}

/// Reception record for one simulation run (flat single-slab layout).
#[derive(Clone, Debug)]
pub struct StreamObserver {
    n_nodes: usize,
    /// Generation time per chunk sequence number (MAX = not generated).
    generated: Vec<SimTime>,
    /// `first_rx[seq * n_nodes + node]` = first reception instant
    /// (MAX = never). One allocation, row-major by chunk.
    first_rx: Vec<SimTime>,
    /// Audience bit per `(seq, node)` pair.
    expected: BitGrid,
    /// Re-receptions at or after the recorded first arrival (folded, not
    /// retained).
    duplicates: u64,
    /// Re-receptions that *beat* the recorded arrival (out-of-order
    /// delivery); the earlier instant replaces the slot.
    out_of_order: u64,
}

impl StreamObserver {
    /// An observer for up to `n_nodes` nodes and `n_chunks` chunks.
    pub fn new(n_nodes: usize, n_chunks: usize) -> Self {
        StreamObserver {
            n_nodes,
            generated: vec![SimTime::MAX; n_chunks],
            first_rx: vec![SimTime::MAX; n_chunks * n_nodes],
            expected: BitGrid::new(n_chunks, n_nodes),
            duplicates: 0,
            out_of_order: 0,
        }
    }

    /// Number of chunk slots.
    pub fn n_chunks(&self) -> usize {
        self.generated.len()
    }

    /// Number of node slots.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Re-receptions folded into the record because an earlier-or-equal
    /// arrival was already recorded.
    pub fn duplicate_receptions(&self) -> u64 {
        self.duplicates
    }

    /// Re-receptions that arrived out of order (earlier than the instant
    /// already recorded) and replaced it.
    pub fn out_of_order_receptions(&self) -> u64 {
        self.out_of_order
    }

    /// The first-arrival row for chunk `seq` (length `n_nodes`, MAX =
    /// never received). The slab view the metric folds run over.
    #[inline]
    fn row(&self, seq: usize) -> &[SimTime] {
        &self.first_rx[seq * self.n_nodes..(seq + 1) * self.n_nodes]
    }

    /// Grows the chunk dimension to at least `n` slots.
    pub fn grow_chunks(&mut self, n: usize) {
        if n <= self.generated.len() {
            return;
        }
        self.generated.resize(n, SimTime::MAX);
        self.first_rx.resize(n * self.n_nodes, SimTime::MAX);
        self.expected.grow_rows(n);
    }

    /// Records that chunk `seq` was generated at `t`.
    pub fn record_generated(&mut self, seq: u32, t: SimTime) {
        self.grow_chunks(seq as usize + 1);
        let slot = &mut self.generated[seq as usize];
        debug_assert!(*slot == SimTime::MAX, "chunk {seq} generated twice");
        *slot = t;
    }

    /// Marks `(seq, node)` as part of the audience.
    pub fn mark_expected(&mut self, seq: u32, node: NodeId) {
        self.grow_chunks(seq as usize + 1);
        if node.index() < self.n_nodes {
            self.expected.set(seq as usize, node.index());
        }
    }

    /// Marks every chunk slot as expected for `node` (static audiences).
    pub fn mark_expected_all_chunks(&mut self, node: NodeId) {
        for seq in 0..self.generated.len() {
            self.expected.set(seq, node.index());
        }
    }

    /// Records the first reception of chunk `seq` by `node` at `t`.
    /// Duplicate receptions keep the earliest instant; the later (or
    /// out-of-order earlier) arrivals are folded into counters.
    pub fn record_received(&mut self, seq: u32, node: NodeId, t: SimTime) {
        self.grow_chunks(seq as usize + 1);
        if node.index() >= self.n_nodes {
            return;
        }
        let slot = &mut self.first_rx[seq as usize * self.n_nodes + node.index()];
        if *slot == SimTime::MAX {
            *slot = t;
        } else if t < *slot {
            self.out_of_order += 1;
            *slot = t;
        } else {
            self.duplicates += 1;
        }
    }

    /// Generation time of chunk `seq`, if recorded.
    pub fn generated_at(&self, seq: u32) -> Option<SimTime> {
        let t = *self.generated.get(seq as usize)?;
        (t != SimTime::MAX).then_some(t)
    }

    /// First reception of `seq` by `node`, if any.
    pub fn received_at(&self, seq: u32, node: NodeId) -> Option<SimTime> {
        if node.index() >= self.n_nodes {
            return None;
        }
        let t = *self
            .first_rx
            .get(seq as usize * self.n_nodes + node.index())?;
        (t != SimTime::MAX).then_some(t)
    }

    /// True if `(seq, node)` is in the audience.
    pub fn is_expected(&self, seq: u32, node: NodeId) -> bool {
        self.expected.get(seq as usize, node.index())
    }

    // ------------------------------------------------------------------
    // Metric 1: mesh delay
    // ------------------------------------------------------------------

    /// Generation → last expected receiver for chunk `seq`.
    ///
    /// If any audience member never received the chunk, the delay is capped
    /// at `horizon - generated` (the chunk did not finish spreading within
    /// the measured run).
    pub fn mesh_delay(&self, seq: u32, horizon: SimTime) -> Option<SimDuration> {
        let gen = self.generated_at(seq)?;
        let row = self.row(seq as usize);
        let mut last = gen;
        let mut expected_any = false;
        for node in self.expected.ones(seq as usize) {
            expected_any = true;
            let t = row[node];
            if t == SimTime::MAX {
                return Some(horizon.saturating_since(gen));
            }
            last = last.max(t);
        }
        expected_any.then(|| last - gen)
    }

    /// Mean mesh delay over all generated chunks (seconds), with unreceived
    /// chunks capped at the horizon.
    pub fn mean_mesh_delay(&self, horizon: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for seq in 0..self.generated.len() as u32 {
            if let Some(d) = self.mesh_delay(seq, horizon) {
                sum += d.as_secs_f64();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    // ------------------------------------------------------------------
    // Metric 2: fill ratio
    // ------------------------------------------------------------------

    /// Fraction of the audience of `seq` holding the chunk at instant `at`.
    pub fn fill_ratio(&self, seq: u32, at: SimTime) -> Option<f64> {
        self.generated_at(seq)?;
        let row = self.row(seq as usize);
        let mut have = 0usize;
        let mut audience = 0usize;
        for node in self.expected.ones(seq as usize) {
            audience += 1;
            if row[node] <= at {
                have += 1;
            }
        }
        (audience > 0).then(|| have as f64 / audience as f64)
    }

    /// Mean over all chunks of the fill ratio measured `offset` after each
    /// chunk's generation (the paper's Fig. 6 statistic, offset = 2 s).
    pub fn mean_fill_ratio_at_offset(&self, offset: SimDuration) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for seq in 0..self.generated.len() as u32 {
            if let Some(gen) = self.generated_at(seq) {
                if let Some(f) = self.fill_ratio(seq, gen + offset) {
                    sum += f;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Global fill ratio at instant `at`: received (chunk, node) pairs over
    /// all expected pairs (the paper's Fig. 7 timeline statistic).
    pub fn global_fill_ratio(&self, at: SimTime) -> f64 {
        let mut have = 0usize;
        let mut total = 0usize;
        for seq in 0..self.generated.len() {
            if self.generated[seq] == SimTime::MAX {
                continue;
            }
            let row = self.row(seq);
            for node in self.expected.ones(seq) {
                total += 1;
                if row[node] <= at {
                    have += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            have as f64 / total as f64
        }
    }

    /// One-pass per-second cumulative reception counts: element `t` is the
    /// number of expected pairs received by instant `t` seconds, i.e.
    /// exactly the numerator of [`StreamObserver::global_fill_ratio`] at
    /// `SimTime::from_secs(t)`; the returned total is its denominator.
    ///
    /// The figure extractors sample the whole-second timeline (Figs. 7,
    /// 11–12); folding the slab once instead of per sample turns an
    /// O(pairs × seconds) extraction into O(pairs + seconds) — at
    /// N = 100k that is the difference between seconds and minutes.
    pub fn received_by_second(&self, horizon_secs: u64) -> (Vec<u64>, u64) {
        let mut cumulative = vec![0u64; horizon_secs as usize + 1];
        let mut total = 0u64;
        for seq in 0..self.generated.len() {
            if self.generated[seq] == SimTime::MAX {
                continue;
            }
            let row = self.row(seq);
            for node in self.expected.ones(seq) {
                total += 1;
                let t = row[node];
                if t == SimTime::MAX {
                    continue;
                }
                // First whole second at which `t <= from_secs(sec)`.
                let sec = t.as_micros().div_ceil(MICROS_PER_SEC);
                if sec <= horizon_secs {
                    cumulative[sec as usize] += 1;
                }
            }
        }
        for i in 1..cumulative.len() {
            cumulative[i] += cumulative[i - 1];
        }
        (cumulative, total)
    }

    // ------------------------------------------------------------------
    // Single-pass figure fold
    // ------------------------------------------------------------------

    /// Every slab-derived figure statistic, folded in **one** pass over the
    /// reception record: the per-second cumulative reception counts (as
    /// [`StreamObserver::received_by_second`]), the mean mesh delay, the
    /// mean fill ratio at each requested offset, and the percentage
    /// received by `horizon`.
    ///
    /// The per-metric methods each walk the whole O(nodes × chunks) slab;
    /// a figures extraction calls five of them. At churn scale (N ≥ 50k)
    /// the slab is the dominant allocation, so walking it once instead of
    /// five times keeps the extraction phase proportional to the record,
    /// not to the metric count. Accumulation order per metric matches the
    /// per-metric methods exactly, so every derived float is bit-identical
    /// to its slow-path counterpart (asserted by a unit test and by the
    /// pinned trace digests in `dco-perf`).
    pub fn fold_figures(&self, horizon: SimTime, offsets: &[SimDuration]) -> FigureMetrics {
        let horizon_secs = horizon.as_secs();
        let mut cumulative = vec![0u64; horizon_secs as usize + 1];
        let mut total = 0u64;
        let mut mesh_sum = 0.0f64;
        let mut mesh_n = 0usize;
        let mut fill_sums = vec![0.0f64; offsets.len()];
        let mut fill_counts = vec![0usize; offsets.len()];
        let mut have_by_deadline = 0u64;
        // Per-chunk scratch, reused across iterations.
        let mut have_at_offset = vec![0u64; offsets.len()];
        for seq in 0..self.generated.len() {
            let gen = self.generated[seq];
            if gen == SimTime::MAX {
                continue;
            }
            let row = self.row(seq);
            let mut last = gen;
            let mut missing = false;
            let mut audience = 0u64;
            have_at_offset.iter_mut().for_each(|h| *h = 0);
            for node in self.expected.ones(seq) {
                audience += 1;
                total += 1;
                let t = row[node];
                if t == SimTime::MAX {
                    missing = true;
                    continue;
                }
                last = last.max(t);
                if t <= horizon {
                    have_by_deadline += 1;
                }
                // First whole second at which `t <= from_secs(sec)`.
                let sec = t.as_micros().div_ceil(MICROS_PER_SEC);
                if sec <= horizon_secs {
                    cumulative[sec as usize] += 1;
                }
                for (have, &off) in have_at_offset.iter_mut().zip(offsets) {
                    if t <= gen + off {
                        *have += 1;
                    }
                }
            }
            if audience > 0 {
                // Mesh delay: capped at the horizon if anyone missed out.
                let d = if missing {
                    horizon.saturating_since(gen)
                } else {
                    last - gen
                };
                mesh_sum += d.as_secs_f64();
                mesh_n += 1;
                for ((sum, n), &have) in fill_sums
                    .iter_mut()
                    .zip(fill_counts.iter_mut())
                    .zip(have_at_offset.iter())
                {
                    *sum += have as f64 / audience as f64;
                    *n += 1;
                }
            }
        }
        for i in 1..cumulative.len() {
            cumulative[i] += cumulative[i - 1];
        }
        let mean_of = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
        FigureMetrics {
            received_by_second: cumulative,
            expected_pairs: total,
            mean_mesh_delay: mean_of(mesh_sum, mesh_n),
            fill_at_offsets: fill_sums
                .iter()
                .zip(fill_counts.iter())
                .map(|(&s, &n)| mean_of(s, n))
                .collect(),
            received_pct: if total == 0 {
                0.0
            } else {
                100.0 * (have_by_deadline as f64 / total as f64)
            },
        }
    }

    // ------------------------------------------------------------------
    // Metric 4: percentage of received chunks
    // ------------------------------------------------------------------

    /// Received expected pairs by `deadline`, over all expected pairs,
    /// in percent (the paper's Figs. 11–12 statistic).
    pub fn received_percentage(&self, deadline: SimTime) -> f64 {
        100.0 * self.global_fill_ratio(deadline)
    }

    /// Total expected `(chunk, node)` pairs.
    pub fn expected_pairs(&self) -> usize {
        self.expected.count_ones()
    }

    /// Total received expected pairs (any time).
    pub fn received_pairs(&self) -> usize {
        let mut n = 0;
        for seq in 0..self.generated.len() {
            let row = self.row(seq);
            for node in self.expected.ones(seq) {
                if row[node] != SimTime::MAX {
                    n += 1;
                }
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Sharded-run export / merge
    // ------------------------------------------------------------------

    /// Exports this observer's filled slots in sparse wire form for a
    /// shard worker (see [`crate::shard::ObserverShard`]). A worker only
    /// fills the reception slots of the nodes it owns, plus — on the
    /// server's shard — the generation times and the audience grid, so
    /// the export is `O(filled)` rather than `O(chunks × nodes)`.
    pub fn export_shard(&self) -> crate::shard::ObserverShard {
        let generated: Vec<(u32, SimTime)> = self
            .generated
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != SimTime::MAX)
            .map(|(seq, &t)| (seq as u32, t))
            .collect();
        let receptions: Vec<(u64, SimTime)> = self
            .first_rx
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != SimTime::MAX)
            .map(|(slot, &t)| (slot as u64, t))
            .collect();
        // Non-server shards never touch the audience grid; ship nothing
        // rather than rows of zero words.
        let (expected_rows, expected_words) = if self.expected.count_ones() == 0 {
            (0, Vec::new())
        } else {
            (self.expected.rows() as u64, self.expected.words().to_vec())
        };
        crate::shard::ObserverShard {
            n_nodes: self.n_nodes as u64,
            n_chunks: self.generated.len() as u64,
            generated,
            receptions,
            expected_rows,
            expected_words,
            duplicates: self.duplicates,
            out_of_order: self.out_of_order,
        }
    }

    /// Folds one worker's export into this observer. Slot ownership is
    /// disjoint across workers (each node's receptions are recorded on
    /// exactly one shard; generation and audience only on the server's),
    /// so absorbing every shard of a run reassembles the single-process
    /// observer exactly.
    pub fn absorb_shard(&mut self, s: &crate::shard::ObserverShard) {
        assert_eq!(
            self.n_nodes as u64, s.n_nodes,
            "shard node dimension mismatch"
        );
        self.grow_chunks(s.n_chunks as usize);
        for &(seq, t) in &s.generated {
            let slot = &mut self.generated[seq as usize];
            debug_assert!(*slot == SimTime::MAX, "chunk {seq} generated on two shards");
            *slot = t;
        }
        for &(slot, t) in &s.receptions {
            let slot = &mut self.first_rx[slot as usize];
            debug_assert!(*slot == SimTime::MAX, "reception slot owned by two shards");
            *slot = t;
        }
        if !s.expected_words.is_empty() {
            self.expected
                .or_words(s.expected_rows as usize, &s.expected_words);
        }
        self.duplicates += s.duplicates;
        self.out_of_order += s.out_of_order;
    }
}

/// The result of [`StreamObserver::fold_figures`]: every slab-derived
/// figure statistic from one pass over the reception record.
#[derive(Clone, Debug)]
pub struct FigureMetrics {
    /// Element `t` = expected pairs received by instant `t` seconds
    /// (cumulative; the numerator of the global fill ratio per second).
    pub received_by_second: Vec<u64>,
    /// Total expected pairs over generated chunks (the denominator).
    pub expected_pairs: u64,
    /// Mean mesh delay in seconds (Fig. 5), unreceived chunks capped at
    /// the horizon.
    pub mean_mesh_delay: f64,
    /// Mean fill ratio at each requested offset after generation
    /// (Fig. 6), in the same order as the `offsets` argument.
    pub fill_at_offsets: Vec<f64>,
    /// % of expected pairs received by the horizon (Figs. 11–12).
    pub received_pct: f64,
}

impl ReceptionLog for StreamObserver {
    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn n_chunks(&self) -> usize {
        self.generated.len()
    }

    fn generated_at(&self, seq: u32) -> Option<SimTime> {
        StreamObserver::generated_at(self, seq)
    }

    fn received_at(&self, seq: u32, node: NodeId) -> Option<SimTime> {
        StreamObserver::received_at(self, seq, node)
    }

    fn is_expected(&self, seq: u32, node: NodeId) -> bool {
        StreamObserver::is_expected(self, seq, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// 3 nodes, 2 chunks; chunk 0 reaches everyone, chunk 1 misses node 2.
    fn observer() -> StreamObserver {
        let mut o = StreamObserver::new(3, 2);
        o.record_generated(0, t(10));
        o.record_generated(1, t(11));
        for node in 0..3 {
            o.mark_expected(0, NodeId(node));
            o.mark_expected(1, NodeId(node));
        }
        o.record_received(0, NodeId(0), t(11));
        o.record_received(0, NodeId(1), t(12));
        o.record_received(0, NodeId(2), t(14));
        o.record_received(1, NodeId(0), t(12));
        o.record_received(1, NodeId(1), t(13));
        o
    }

    #[test]
    fn generation_and_reception_lookup() {
        let o = observer();
        assert_eq!(o.generated_at(0), Some(t(10)));
        assert_eq!(o.generated_at(5), None);
        assert_eq!(o.received_at(0, NodeId(2)), Some(t(14)));
        assert_eq!(o.received_at(1, NodeId(2)), None);
        assert!(o.is_expected(0, NodeId(1)));
    }

    #[test]
    fn duplicate_reception_keeps_earliest() {
        let mut o = observer();
        o.record_received(0, NodeId(0), t(20));
        assert_eq!(o.received_at(0, NodeId(0)), Some(t(11)));
        o.record_received(0, NodeId(0), t(10));
        assert_eq!(o.received_at(0, NodeId(0)), Some(t(10)));
    }

    #[test]
    fn rereceptions_fold_into_counters() {
        let mut o = observer();
        assert_eq!(o.duplicate_receptions(), 0);
        assert_eq!(o.out_of_order_receptions(), 0);
        o.record_received(0, NodeId(0), t(20)); // later: duplicate
        o.record_received(0, NodeId(0), t(11)); // equal: duplicate
        o.record_received(0, NodeId(0), t(9)); // earlier: out-of-order
        assert_eq!(o.duplicate_receptions(), 2);
        assert_eq!(o.out_of_order_receptions(), 1);
        assert_eq!(o.received_at(0, NodeId(0)), Some(t(9)));
        // Out-of-range nodes are ignored entirely.
        o.record_received(0, NodeId(99), t(1));
        assert_eq!(o.duplicate_receptions(), 2);
    }

    #[test]
    fn mesh_delay_complete_chunk() {
        let o = observer();
        assert_eq!(
            o.mesh_delay(0, t(100)),
            Some(SimDuration::from_secs(4)),
            "last receiver at 14, generated at 10"
        );
    }

    #[test]
    fn mesh_delay_incomplete_chunk_capped_at_horizon() {
        let o = observer();
        assert_eq!(
            o.mesh_delay(1, t(100)),
            Some(SimDuration::from_secs(89)),
            "node 2 never got chunk 1: horizon 100 - gen 11"
        );
    }

    #[test]
    fn mean_mesh_delay() {
        let o = observer();
        let mean = o.mean_mesh_delay(t(100));
        assert!((mean - (4.0 + 89.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fill_ratio_progression() {
        let o = observer();
        assert_eq!(o.fill_ratio(0, t(10)), Some(0.0));
        assert_eq!(o.fill_ratio(0, t(11)), Some(1.0 / 3.0));
        assert_eq!(o.fill_ratio(0, t(12)), Some(2.0 / 3.0));
        assert_eq!(o.fill_ratio(0, t(14)), Some(1.0));
        assert_eq!(o.fill_ratio(9, t(14)), None, "unknown chunk");
    }

    #[test]
    fn mean_fill_ratio_at_offset() {
        let o = observer();
        // Offset 2 s: chunk 0 at t=12 → 2/3; chunk 1 at t=13 → 2/3.
        let f = o.mean_fill_ratio_at_offset(SimDuration::from_secs(2));
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn global_fill_and_received_percentage() {
        let o = observer();
        // By t=13: chunk0 {0,1}, chunk1 {0,1} → 4 of 6.
        assert!((o.global_fill_ratio(t(13)) - 4.0 / 6.0).abs() < 1e-9);
        assert!((o.received_percentage(t(100)) - 100.0 * 5.0 / 6.0).abs() < 1e-9);
        assert_eq!(o.expected_pairs(), 6);
        assert_eq!(o.received_pairs(), 5);
    }

    #[test]
    fn received_by_second_matches_global_fill() {
        let o = observer();
        let horizon = 20u64;
        let (cum, total) = o.received_by_second(horizon);
        assert_eq!(cum.len() as u64, horizon + 1);
        for sec in 0..=horizon {
            let direct = o.global_fill_ratio(t(sec));
            let fast = if total == 0 {
                0.0
            } else {
                cum[sec as usize] as f64 / total as f64
            };
            assert_eq!(fast, direct, "second {sec}");
        }
        // Sub-second arrivals land in the *next* whole-second bucket.
        let mut o2 = StreamObserver::new(1, 1);
        o2.record_generated(0, SimTime::ZERO);
        o2.mark_expected(0, NodeId(0));
        o2.record_received(0, NodeId(0), SimTime::from_millis(1500));
        let (cum2, _) = o2.received_by_second(3);
        assert_eq!(cum2, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fold_figures_is_bit_identical_to_per_metric_methods() {
        // Include an unreceived pair (chunk 1 misses node 2) so the
        // horizon-cap and missing-pair branches are exercised.
        let o = observer();
        let horizon = t(100);
        let offsets = [SimDuration::from_secs(2), SimDuration::from_millis(3500)];
        let fold = o.fold_figures(horizon, &offsets);
        let (cum, total) = o.received_by_second(horizon.as_secs());
        assert_eq!(fold.received_by_second, cum);
        assert_eq!(fold.expected_pairs, total);
        // Floats must match to the bit, not within an epsilon: the fold
        // replays the same accumulation order as the per-metric passes.
        assert_eq!(
            fold.mean_mesh_delay.to_bits(),
            o.mean_mesh_delay(horizon).to_bits()
        );
        for (i, &off) in offsets.iter().enumerate() {
            assert_eq!(
                fold.fill_at_offsets[i].to_bits(),
                o.mean_fill_ratio_at_offset(off).to_bits(),
                "offset {i}"
            );
        }
        assert_eq!(
            fold.received_pct.to_bits(),
            o.received_percentage(horizon).to_bits()
        );
        // Empty record: all zeros, no division by zero.
        let empty = StreamObserver::new(4, 0);
        let f = empty.fold_figures(t(2), &offsets);
        assert_eq!(f.received_by_second, vec![0, 0, 0]);
        assert_eq!(
            (f.expected_pairs, f.mean_mesh_delay, f.received_pct),
            (0, 0.0, 0.0)
        );
        assert_eq!(f.fill_at_offsets, vec![0.0, 0.0]);
    }

    #[test]
    fn audience_restriction() {
        let mut o = StreamObserver::new(3, 1);
        o.record_generated(0, t(0));
        o.mark_expected(0, NodeId(0));
        // Node 1 receives but is not expected: ignored by the metrics.
        o.record_received(0, NodeId(1), t(1));
        o.record_received(0, NodeId(0), t(2));
        assert_eq!(o.fill_ratio(0, t(1)), Some(0.0));
        assert_eq!(o.fill_ratio(0, t(2)), Some(1.0));
        assert_eq!(o.expected_pairs(), 1);
    }

    #[test]
    fn grow_on_demand() {
        let mut o = StreamObserver::new(2, 0);
        o.record_generated(5, t(3));
        assert_eq!(o.n_chunks(), 6);
        o.mark_expected(7, NodeId(1));
        assert_eq!(o.n_chunks(), 8);
        assert!(o.is_expected(7, NodeId(1)));
    }

    #[test]
    fn mark_expected_all_chunks() {
        let mut o = StreamObserver::new(2, 3);
        o.mark_expected_all_chunks(NodeId(1));
        for seq in 0..3 {
            assert!(o.is_expected(seq, NodeId(1)));
            assert!(!o.is_expected(seq, NodeId(0)));
        }
    }

    #[test]
    fn empty_observer_metrics_are_zero() {
        let o = StreamObserver::new(4, 0);
        assert_eq!(o.mean_mesh_delay(t(10)), 0.0);
        assert_eq!(o.global_fill_ratio(t(10)), 0.0);
        assert_eq!(o.mean_fill_ratio_at_offset(SimDuration::from_secs(1)), 0.0);
        let (cum, total) = o.received_by_second(2);
        assert_eq!((cum, total), (vec![0, 0, 0], 0));
    }
}
