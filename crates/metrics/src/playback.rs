//! Playback QoS derived from reception times.
//!
//! The paper motivates DCO with viewer QoS — "image freezes and poor
//! resolution" — but evaluates proxy metrics. This module closes the loop:
//! given a node's chunk reception instants (any [`ReceptionLog`], normally
//! the [`StreamObserver`](crate::StreamObserver)) and a player policy, it
//! replays the playout and reports **startup delay**, **stall count/time**
//! and the **continuity index** (fraction of wall-clock play time not
//! spent frozen).
//!
//! Player model: the viewer starts playing once `startup_chunks`
//! consecutive chunks from its first expected chunk are buffered; each
//! chunk plays for `chunk_len`; if the next chunk has not arrived when its
//! turn comes, the player freezes until it does.

use dco_sim::node::NodeId;
use dco_sim::time::SimDuration;

use crate::observer::ReceptionLog;

/// Player policy.
#[derive(Clone, Copy, Debug)]
pub struct PlayerPolicy {
    /// Chunks buffered before playback starts.
    pub startup_chunks: u32,
    /// Media duration of one chunk.
    pub chunk_len: SimDuration,
}

impl Default for PlayerPolicy {
    fn default() -> Self {
        PlayerPolicy {
            startup_chunks: 3,
            chunk_len: SimDuration::from_secs(1),
        }
    }
}

/// One node's playout report.
#[derive(Clone, Debug, PartialEq)]
pub struct PlaybackReport {
    /// First chunk the player needed.
    pub first_seq: u32,
    /// Chunks actually played.
    pub chunks_played: u32,
    /// Generation of the first chunk → playback start.
    pub startup_delay: SimDuration,
    /// Number of freezes after startup.
    pub stalls: u32,
    /// Total frozen time after startup.
    pub stall_time: SimDuration,
    /// Played time / (played + frozen) in `[0, 1]`; 1.0 = perfectly smooth.
    pub continuity: f64,
}

/// Replays `node`'s playout of chunks `[first, last]` against a reception
/// record (any [`ReceptionLog`] — the flat observer or the retained
/// reference model). Returns `None` when the node never buffered enough to
/// start.
pub fn replay<L: ReceptionLog + ?Sized>(
    obs: &L,
    node: NodeId,
    first: u32,
    last: u32,
    policy: PlayerPolicy,
) -> Option<PlaybackReport> {
    if last < first {
        return None;
    }
    let gen0 = obs.generated_at(first)?;
    // Startup: the instant the first `startup_chunks` consecutive chunks
    // are all buffered.
    let warm_end = (first + policy.startup_chunks.max(1) - 1).min(last);
    let mut start_at = gen0;
    for seq in first..=warm_end {
        start_at = start_at.max(obs.received_at(seq, node)?);
    }
    let mut clock = start_at;
    let mut stalls = 0u32;
    let mut stall_time = SimDuration::ZERO;
    let mut played = 0u32;
    for seq in first..=last {
        match obs.received_at(seq, node) {
            Some(t) => {
                if t > clock {
                    stalls += 1;
                    stall_time += t - clock;
                    clock = t;
                }
                clock += policy.chunk_len;
                played += 1;
            }
            None => break, // playout ends at the first never-received chunk
        }
    }
    let played_time = policy.chunk_len * u64::from(played);
    let denom = played_time.saturating_add(stall_time);
    let continuity = if denom.is_zero() {
        1.0
    } else {
        played_time.as_secs_f64() / denom.as_secs_f64()
    };
    Some(PlaybackReport {
        first_seq: first,
        chunks_played: played,
        startup_delay: start_at.saturating_since(gen0),
        stalls,
        stall_time,
        continuity,
    })
}

/// Mean continuity over all nodes that managed to start (the audience-wide
/// smoothness score).
pub fn mean_continuity<L: ReceptionLog + ?Sized>(
    obs: &L,
    first: u32,
    last: u32,
    policy: PlayerPolicy,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for node in 0..obs.n_nodes() {
        if let Some(r) = replay(obs, NodeId(node as u32), first, last, policy) {
            sum += r.continuity;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamObserver;
    use dco_sim::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// 1 node, 6 chunks generated at t = 0..5.
    fn obs_with(receptions: &[(u32, u64)]) -> StreamObserver {
        let mut o = StreamObserver::new(1, 6);
        for seq in 0..6 {
            o.record_generated(seq, t(u64::from(seq)));
            o.mark_expected(seq, NodeId(0));
        }
        for &(seq, at) in receptions {
            o.record_received(seq, NodeId(0), t(at));
        }
        o
    }

    fn policy() -> PlayerPolicy {
        PlayerPolicy {
            startup_chunks: 2,
            chunk_len: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn smooth_playout_has_full_continuity() {
        // Everything arrives 1 s after generation: once started, never
        // stalls.
        let o = obs_with(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let r = replay(&o, NodeId(0), 0, 5, policy()).unwrap();
        assert_eq!(r.chunks_played, 6);
        assert_eq!(r.stalls, 0);
        assert_eq!(r.continuity, 1.0);
        assert_eq!(
            r.startup_delay,
            SimDuration::from_secs(2),
            "chunks 0,1 by t=2"
        );
    }

    #[test]
    fn late_chunk_causes_a_stall() {
        // Chunk 3 arrives very late.
        let o = obs_with(&[(0, 1), (1, 2), (2, 3), (3, 10), (4, 5), (5, 6)]);
        let r = replay(&o, NodeId(0), 0, 5, policy()).unwrap();
        assert_eq!(r.stalls, 1);
        // Play starts at 2; chunks 0,1,2 play until t=5; chunk 3 arrives at
        // 10 → 5 s frozen.
        assert_eq!(r.stall_time, SimDuration::from_secs(5));
        assert!(r.continuity < 1.0);
        assert!((r.continuity - 6.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn missing_chunk_truncates_playout() {
        let o = obs_with(&[(0, 1), (1, 2), (2, 3)]);
        let r = replay(&o, NodeId(0), 0, 5, policy()).unwrap();
        assert_eq!(r.chunks_played, 3, "stops at the missing chunk 3");
        assert_eq!(r.stalls, 0);
    }

    #[test]
    fn never_starting_returns_none() {
        let o = obs_with(&[(0, 1)]); // chunk 1 never arrives
        assert!(replay(&o, NodeId(0), 0, 5, policy()).is_none());
        // Unknown chunk range too.
        let o2 = obs_with(&[]);
        assert!(replay(&o2, NodeId(0), 0, 5, policy()).is_none());
        assert!(
            replay(&o2, NodeId(0), 3, 2, policy()).is_none(),
            "empty range"
        );
    }

    #[test]
    fn mean_continuity_over_audience() {
        let mut o = StreamObserver::new(2, 3);
        for seq in 0..3 {
            o.record_generated(seq, t(u64::from(seq)));
            for n in 0..2 {
                o.mark_expected(seq, NodeId(n));
            }
        }
        // Node 0: smooth; node 1: never starts.
        for seq in 0..3u32 {
            o.record_received(seq, NodeId(0), t(u64::from(seq) + 1));
        }
        let m = mean_continuity(&o, 0, 2, policy());
        assert_eq!(m, 1.0, "only starters count");
        let empty = StreamObserver::new(2, 0);
        assert_eq!(mean_continuity(&empty, 0, 0, policy()), 0.0);
    }
}
