//! Shipping observer state between shard workers.
//!
//! In a sharded run every worker holds a full-size [`StreamObserver`](crate::StreamObserver) but
//! only fills the slots it owns: receptions are recorded on the receiving
//! node's dispatch (owned by exactly one shard), while generation times and
//! the audience grid are written on the server's dispatch (the server's
//! shard — its shadow-membership view of the alive set is globally
//! consistent, so its audience grid *is* the global one). The orchestrator
//! therefore reassembles the single-process observer exactly: disjoint
//! sparse unions for receptions and generation, a word-wise OR for the
//! audience, plain sums for the duplicate counters. Every figure folded
//! from the merged observer is bit-identical to the one-process run.
//!
//! [`ObserverShard`] is the wire form of one worker's contribution: sparse
//! `(slot, time)` pairs rather than the dense `first_rx` slab, because a
//! worker owns `1/K` of the nodes — at N = 100k / K = 4 that is ~20 MB of
//! pairs instead of an 80 MB slab per worker.

use dco_sim::time::SimTime;
use dco_sim::wire::{WireCodec, WireError, WireReader};

/// One worker's observer contribution, in wire-codable sparse form.
///
/// Produced by [`StreamObserver::export_shard`], folded back with
/// [`StreamObserver::absorb_shard`].
///
/// [`StreamObserver::export_shard`]: crate::StreamObserver::export_shard
/// [`StreamObserver::absorb_shard`]: crate::StreamObserver::absorb_shard
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObserverShard {
    /// Node dimension (identical on every worker).
    pub n_nodes: u64,
    /// Chunk dimension this worker grew to.
    pub n_chunks: u64,
    /// Sparse `(seq, generation time)` records (server shard only).
    pub generated: Vec<(u32, SimTime)>,
    /// Sparse `(seq * n_nodes + node, first reception)` pairs for the
    /// nodes this worker owns.
    pub receptions: Vec<(u64, SimTime)>,
    /// Audience grid row count (server shard only; 0 = no audience data).
    pub expected_rows: u64,
    /// Audience grid word slab (see [`crate::BitGrid::words`]).
    pub expected_words: Vec<u64>,
    /// Folded duplicate receptions on this worker's nodes.
    pub duplicates: u64,
    /// Folded out-of-order receptions on this worker's nodes.
    pub out_of_order: u64,
}

impl WireCodec for ObserverShard {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n_nodes.encode(out);
        self.n_chunks.encode(out);
        self.generated.encode(out);
        self.receptions.encode(out);
        self.expected_rows.encode(out);
        self.expected_words.encode(out);
        self.duplicates.encode(out);
        self.out_of_order.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ObserverShard {
            n_nodes: r.get()?,
            n_chunks: r.get()?,
            generated: r.get()?,
            receptions: r.get()?,
            expected_rows: r.get()?,
            expected_words: r.get()?,
            duplicates: r.get()?,
            out_of_order: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamObserver;
    use dco_sim::node::NodeId;
    use dco_sim::time::SimDuration;
    use dco_sim::wire::{decode_exact, encode_to_vec};

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    /// Replays the same stream once into a single observer and once split
    /// across two "workers" (node ownership: 0–2 vs 3–5; worker 0 plays
    /// the server shard), then checks the merged observer reproduces the
    /// whole record bit-for-bit.
    #[test]
    fn split_export_merge_equals_single_observer() {
        let n = 6usize;
        let owner = |node: NodeId| usize::from(node.0 >= 3);
        let mut whole = StreamObserver::new(n, 0);
        let mut workers = [StreamObserver::new(n, 0), StreamObserver::new(n, 0)];

        for seq in 0..4u32 {
            let gen = t(1000 * u64::from(seq));
            whole.record_generated(seq, gen);
            workers[0].record_generated(seq, gen);
            for node in 1..n as u32 {
                let node = NodeId(node);
                whole.mark_expected(seq, node);
                workers[0].mark_expected(seq, node);
            }
        }
        // Receptions, with a duplicate and an out-of-order replay mixed in.
        for seq in 0..4u32 {
            for node in 1..n as u32 {
                let node = NodeId(node);
                let rx = t(1000 * u64::from(seq) + 500 + 10 * u64::from(node.0));
                whole.record_received(seq, node, rx);
                workers[owner(node)].record_received(seq, node, rx);
                if node.0 == 2 {
                    whole.record_received(seq, node, rx + SimDuration::from_millis(5));
                    workers[owner(node)].record_received(
                        seq,
                        node,
                        rx + SimDuration::from_millis(5),
                    );
                }
                if node.0 == 4 {
                    whole.record_received(seq, node, rx - SimDuration::from_millis(3));
                    workers[owner(node)].record_received(
                        seq,
                        node,
                        rx - SimDuration::from_millis(3),
                    );
                }
            }
        }

        let mut merged = StreamObserver::new(n, 0);
        for w in &workers {
            // Round-trip each export through the wire codec on the way.
            let shard = w.export_shard();
            let back: ObserverShard = decode_exact(&encode_to_vec(&shard)).unwrap();
            assert_eq!(back, shard);
            merged.absorb_shard(&back);
        }

        assert_eq!(merged.n_chunks(), whole.n_chunks());
        assert_eq!(merged.duplicate_receptions(), whole.duplicate_receptions());
        assert_eq!(
            merged.out_of_order_receptions(),
            whole.out_of_order_receptions()
        );
        assert_eq!(merged.expected_pairs(), whole.expected_pairs());
        assert_eq!(merged.received_pairs(), whole.received_pairs());
        for seq in 0..4u32 {
            assert_eq!(merged.generated_at(seq), whole.generated_at(seq));
            for node in 0..n as u32 {
                let node = NodeId(node);
                assert_eq!(merged.received_at(seq, node), whole.received_at(seq, node));
                assert_eq!(merged.is_expected(seq, node), whole.is_expected(seq, node));
            }
        }
        // And the figure fold — the statistic the harness actually reports
        // — is bit-identical.
        let horizon = t(5000);
        let offsets = [SimDuration::from_secs(1), SimDuration::from_secs(2)];
        let a = whole.fold_figures(horizon, &offsets);
        let b = merged.fold_figures(horizon, &offsets);
        assert_eq!(a.received_by_second, b.received_by_second);
        assert_eq!(a.expected_pairs, b.expected_pairs);
        assert_eq!(a.mean_mesh_delay.to_bits(), b.mean_mesh_delay.to_bits());
        assert_eq!(a.received_pct.to_bits(), b.received_pct.to_bits());
        for (x, y) in a.fill_at_offsets.iter().zip(&b.fill_at_offsets) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_shard_absorbs_as_a_no_op() {
        let empty = StreamObserver::new(4, 0).export_shard();
        assert!(empty.generated.is_empty());
        assert!(empty.receptions.is_empty());
        let mut target = StreamObserver::new(4, 2);
        target.mark_expected(1, NodeId(2));
        target.record_received(1, NodeId(2), t(7));
        target.absorb_shard(&empty);
        assert_eq!(target.received_at(1, NodeId(2)), Some(t(7)));
        assert_eq!(target.received_pairs(), 1);
    }

    #[test]
    #[should_panic(expected = "node dimension")]
    fn mismatched_node_dimension_is_rejected() {
        let shard = StreamObserver::new(4, 1).export_shard();
        StreamObserver::new(5, 1).absorb_shard(&shard);
    }
}
