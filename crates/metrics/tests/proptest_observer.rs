//! Property tests: the flat [`StreamObserver`] against the retained
//! reference model.
//!
//! The flat observer stores only the first-arrival instant per
//! `(chunk, node)` pair (one slab + a bit matrix + two fold counters); the
//! [`RetainedObserver`] keeps *every* reception instant in nested `Vec`s
//! and folds at query time. These tests drive both through identical
//! randomized recording scripts — duplicate arrivals, out-of-order
//! arrivals, sparse audiences, on-demand growth — and require every metric
//! and every playback QoS report to agree exactly. Driven by the in-tree
//! `dco-testkit` (deterministic seeds, `DCO_TESTKIT_REPLAY` to reproduce a
//! failure).

use dco_metrics::playback::{mean_continuity, replay, PlayerPolicy};
use dco_metrics::{ReceptionLog, RetainedObserver, StreamObserver};
use dco_sim::node::NodeId;
use dco_sim::time::{SimDuration, SimTime};
use dco_testkit::{check, tk_assert_eq, Gen};

/// One randomized recording script applied to both observers.
struct Script {
    n_nodes: usize,
    n_chunks: usize,
    flat: StreamObserver,
    retained: RetainedObserver,
}

/// Builds the pair by replaying one random script into both layouts.
/// Arrival times are drawn from a small range so duplicates, ties and
/// out-of-order arrivals are common, not rare.
fn gen_script(g: &mut Gen) -> Script {
    let n_nodes = g.usize_in(1, 9);
    let max_chunks = g.usize_in(1, 11);
    // Start some scripts with zero pre-sized chunks to exercise on-demand
    // growth in both layouts.
    let pre_sized = if g.weighted_bool(0.5) { max_chunks } else { 0 };
    let mut flat = StreamObserver::new(n_nodes, pre_sized);
    let mut retained = RetainedObserver::new(n_nodes, pre_sized);

    // Each chunk is generated at most once (the observer debug-asserts
    // against double generation, matching real harness usage).
    for seq in 0..max_chunks as u32 {
        if g.weighted_bool(0.8) {
            let t = SimTime::from_millis(g.u64_in(0, 20_001));
            flat.record_generated(seq, t);
            retained.record_generated(seq, t);
        }
    }
    // Sparse audience.
    for seq in 0..max_chunks as u32 {
        for node in 0..n_nodes as u32 {
            if g.weighted_bool(0.7) {
                flat.mark_expected(seq, NodeId(node));
                retained.mark_expected(seq, NodeId(node));
            }
        }
    }
    // Receptions: repeated visits to the same pair produce duplicates and
    // out-of-order arrivals (times are not sorted).
    for _ in 0..g.usize_in(0, 121) {
        let seq = g.u64_in(0, max_chunks as u64) as u32;
        let node = NodeId(g.u64_in(0, n_nodes as u64) as u32);
        let t = SimTime::from_millis(g.u64_in(0, 20_001));
        flat.record_received(seq, node, t);
        retained.record_received(seq, node, t);
    }
    Script {
        n_nodes,
        n_chunks: flat.n_chunks(),
        flat,
        retained,
    }
}

/// Exact f64 equality is intentional throughout: both layouts must derive
/// each statistic from identical integer counts folded in the same order,
/// so the floats are bit-identical — any tolerance would hide a layout bug.
#[test]
fn flat_observer_matches_retained_model_per_pair() {
    check("flat_observer_matches_retained_model_per_pair", 300, |g| {
        let s = gen_script(g);
        tk_assert_eq!(s.flat.n_chunks(), s.retained.n_chunks(), "n_chunks");
        for seq in 0..s.n_chunks as u32 + 2 {
            tk_assert_eq!(
                s.flat.generated_at(seq),
                s.retained.generated_at(seq),
                "generated_at({seq})"
            );
            for node in 0..s.n_nodes as u32 + 2 {
                let node = NodeId(node);
                tk_assert_eq!(
                    s.flat.received_at(seq, node),
                    s.retained.received_at(seq, node),
                    "received_at({seq}, {node:?}) must be the earliest arrival"
                );
                tk_assert_eq!(
                    s.flat.is_expected(seq, node),
                    s.retained.is_expected(seq, node),
                    "is_expected({seq}, {node:?})"
                );
            }
        }
        tk_assert_eq!(
            s.flat.duplicate_receptions() + s.flat.out_of_order_receptions(),
            s.retained.rereceptions(),
            "every re-reception folds into exactly one counter"
        );
        tk_assert_eq!(
            s.flat.expected_pairs(),
            s.retained.expected_pairs(),
            "expected_pairs"
        );
        tk_assert_eq!(
            s.flat.received_pairs(),
            s.retained.received_pairs(),
            "received_pairs"
        );
        Ok(())
    });
}

#[test]
fn flat_observer_matches_retained_model_metrics() {
    check("flat_observer_matches_retained_model_metrics", 300, |g| {
        let s = gen_script(g);
        let horizon = SimTime::from_secs(g.u64_in(0, 31));
        for seq in 0..s.n_chunks as u32 {
            tk_assert_eq!(
                s.flat.mesh_delay(seq, horizon),
                s.retained.mesh_delay(seq, horizon),
                "mesh_delay({seq})"
            );
            tk_assert_eq!(
                s.flat.fill_ratio(seq, horizon),
                s.retained.fill_ratio(seq, horizon),
                "fill_ratio({seq})"
            );
        }
        tk_assert_eq!(
            s.flat.mean_mesh_delay(horizon),
            s.retained.mean_mesh_delay(horizon),
            "mean_mesh_delay"
        );
        let offset = SimDuration::from_millis(g.u64_in(0, 5_001));
        tk_assert_eq!(
            s.flat.mean_fill_ratio_at_offset(offset),
            s.retained.mean_fill_ratio_at_offset(offset),
            "mean_fill_ratio_at_offset"
        );
        for sec in 0..=30u64 {
            let at = SimTime::from_secs(sec);
            tk_assert_eq!(
                s.flat.global_fill_ratio(at),
                s.retained.global_fill_ratio(at),
                "global_fill_ratio({sec}s)"
            );
        }
        tk_assert_eq!(
            s.flat.received_percentage(horizon),
            s.retained.received_percentage(horizon),
            "received_percentage"
        );
        // The one-pass timeline against the retained model's per-second
        // recomputation (the figure extractors rely on this equivalence).
        let (cum, total) = s.flat.received_by_second(30);
        for sec in 0..=30u64 {
            let fast = if total == 0 {
                0.0
            } else {
                cum[sec as usize] as f64 / total as f64
            };
            tk_assert_eq!(
                fast,
                s.retained.global_fill_ratio(SimTime::from_secs(sec)),
                "received_by_second vs retained global_fill_ratio({sec}s)"
            );
        }
        Ok(())
    });
}

/// Playback QoS (startup delay, stall count/time, continuity) replayed off
/// both layouts through the shared [`ReceptionLog`] interface.
#[test]
fn playback_replay_agrees_across_layouts() {
    check("playback_replay_agrees_across_layouts", 300, |g| {
        let s = gen_script(g);
        let policy = PlayerPolicy {
            startup_chunks: g.u64_in(1, 5) as u32,
            chunk_len: SimDuration::from_millis(g.u64_in(100, 2_001)),
        };
        let last = s.n_chunks as u32 - 1;
        let first = g.u64_in(0, u64::from(last) + 1) as u32;
        for node in 0..s.n_nodes as u32 {
            let node = NodeId(node);
            tk_assert_eq!(
                replay(&s.flat, node, first, last, policy),
                replay(&s.retained, node, first, last, policy),
                "replay({node:?}, [{first}, {last}])"
            );
        }
        tk_assert_eq!(
            mean_continuity(&s.flat, first, last, policy),
            mean_continuity(&s.retained, first, last, policy),
            "mean_continuity([{first}, {last}])"
        );
        // The trait object path (how generic extractors hold a log).
        let logs: [&dyn ReceptionLog; 2] = [&s.flat, &s.retained];
        tk_assert_eq!(
            logs[0].received_at(0, NodeId(0)),
            logs[1].received_at(0, NodeId(0)),
            "dyn ReceptionLog dispatch"
        );
        Ok(())
    });
}
