//! Scenario grid expansion for batch experiments.
//!
//! The sweep harness explores a cartesian product of scenario axes —
//! population × churn level × seed. [`ScenarioGrid`] owns that expansion:
//! it produces the cell list in a fixed, deterministic order (population
//! outermost, seed innermost) and derives each cell's **own master seed**
//! from the cell's *coordinates*, never from its position in the list. Two
//! grids that share a cell therefore agree on that cell's seed, which is
//! what makes "run alone" and "run inside any sweep at any `--jobs` level"
//! bit-identical.

use dco_sim::rng::splitmix64;

/// The churn axis of a grid: either a static network or exponential churn
/// with the given mean node lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnLevel {
    /// No churn.
    Static,
    /// Exponential churn with this mean node life, in seconds.
    MeanLife(u64),
}

impl ChurnLevel {
    /// The mean life in seconds, or `None` when static.
    pub fn mean_life_secs(self) -> Option<u64> {
        match self {
            ChurnLevel::Static => None,
            ChurnLevel::MeanLife(s) => Some(s),
        }
    }

    /// A short label for tables and JSON (`"static"` / `"life60"`).
    pub fn label(self) -> String {
        match self {
            ChurnLevel::Static => "static".to_string(),
            ChurnLevel::MeanLife(s) => format!("life{s}"),
        }
    }

    /// A stable code folded into the cell seed.
    fn code(self) -> u64 {
        match self {
            ChurnLevel::Static => 0,
            // +1 so MeanLife(0) is distinct from Static.
            ChurnLevel::MeanLife(s) => s + 1,
        }
    }
}

/// The scenario axes of a batch experiment.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    /// Population sizes (nodes including the server).
    pub populations: Vec<u32>,
    /// Churn levels.
    pub churn: Vec<ChurnLevel>,
    /// Experiment seeds. These are *labels*: the actual simulation seed of
    /// a cell is derived per-coordinate via [`ScenarioGrid::cell_seed`].
    pub seeds: Vec<u64>,
}

/// One point of the expanded grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridCell {
    /// Population of this cell.
    pub n_nodes: u32,
    /// Churn level of this cell.
    pub churn: ChurnLevel,
    /// The seed label from the grid's seed axis.
    pub seed: u64,
    /// The derived master seed actually fed to the simulator.
    pub sim_seed: u64,
}

impl ScenarioGrid {
    /// `n` decorrelated seed labels fanned out from `base`.
    pub fn seed_list(base: u64, n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| splitmix64(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect()
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.populations.len() * self.churn.len() * self.seeds.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The derived master seed of the cell at the given coordinates. A pure
    /// function of `(master, extra, n_nodes, churn, seed)` — independent of
    /// grid shape, cell order and thread schedule. `extra` lets a caller
    /// fold in further axes (the bench harness folds the method here).
    pub fn cell_seed(master: u64, extra: u64, n_nodes: u32, churn: ChurnLevel, seed: u64) -> u64 {
        let mut h = splitmix64(master ^ 0xCE11_CE11_CE11_CE11);
        for w in [extra, u64::from(n_nodes), churn.code(), seed] {
            h = splitmix64(h ^ w);
        }
        h
    }

    /// Expands the grid into cells in deterministic order: populations
    /// outermost, then churn levels, then seeds.
    pub fn cells(&self, master: u64) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.len());
        for &n_nodes in &self.populations {
            for &churn in &self.churn {
                for &seed in &self.seeds {
                    out.push(GridCell {
                        n_nodes,
                        churn,
                        seed,
                        sim_seed: Self::cell_seed(master, 0, n_nodes, churn, seed),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ScenarioGrid {
        ScenarioGrid {
            populations: vec![32, 64],
            churn: vec![ChurnLevel::Static, ChurnLevel::MeanLife(20)],
            seeds: vec![1, 2, 3],
        }
    }

    #[test]
    fn expansion_is_the_full_product_in_order() {
        let g = grid();
        let cells = g.cells(42);
        assert_eq!(cells.len(), 12);
        assert_eq!(g.len(), 12);
        assert!(!g.is_empty());
        // Population outermost, seed innermost.
        assert_eq!(cells[0].n_nodes, 32);
        assert_eq!(cells[0].churn, ChurnLevel::Static);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[3].churn, ChurnLevel::MeanLife(20));
        assert_eq!(cells[6].n_nodes, 64);
    }

    #[test]
    fn cell_seeds_depend_on_coordinates_not_position() {
        let small = ScenarioGrid {
            populations: vec![64],
            churn: vec![ChurnLevel::MeanLife(20)],
            seeds: vec![3],
        };
        let big = grid();
        let lone = small.cells(42)[0];
        let within = big
            .cells(42)
            .into_iter()
            .find(|c| c.n_nodes == 64 && c.churn == ChurnLevel::MeanLife(20) && c.seed == 3)
            .unwrap();
        assert_eq!(
            lone.sim_seed, within.sim_seed,
            "same coordinates, same seed"
        );
    }

    #[test]
    fn cell_seeds_are_pairwise_distinct() {
        let cells = grid().cells(42);
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.sim_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len());
    }

    #[test]
    fn different_masters_decorrelate() {
        let a = grid().cells(1);
        let b = grid().cells(2);
        assert!(a.iter().zip(&b).all(|(x, y)| x.sim_seed != y.sim_seed));
    }

    #[test]
    fn extra_axis_separates_cells() {
        let a = ScenarioGrid::cell_seed(42, 0, 64, ChurnLevel::Static, 1);
        let b = ScenarioGrid::cell_seed(42, 1, 64, ChurnLevel::Static, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn churn_level_labels_and_codes() {
        assert_eq!(ChurnLevel::Static.label(), "static");
        assert_eq!(ChurnLevel::MeanLife(60).label(), "life60");
        assert_eq!(ChurnLevel::Static.mean_life_secs(), None);
        assert_eq!(ChurnLevel::MeanLife(60).mean_life_secs(), Some(60));
        // MeanLife(0) is not Static.
        assert_ne!(
            ScenarioGrid::cell_seed(1, 0, 8, ChurnLevel::Static, 0),
            ScenarioGrid::cell_seed(1, 0, 8, ChurnLevel::MeanLife(0), 0),
        );
    }

    #[test]
    fn seed_list_is_deterministic_and_distinct() {
        let a = ScenarioGrid::seed_list(7, 8);
        let b = ScenarioGrid::seed_list(7, 8);
        assert_eq!(a, b);
        let mut u = a.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 8);
        assert_ne!(ScenarioGrid::seed_list(7, 3), ScenarioGrid::seed_list(8, 3));
    }
}
