//! Churn schedule generation.
//!
//! §IV-D: "the node life span is set to an exponential distribution with
//! mean ranging from 60 s to 120 s, and the join interval of nodes is set to
//! the same distribution. Therefore, nodes are constantly leaving and
//! joining the network, and the network scale remains relatively stable."
//!
//! We model each peer as alternating **sessions**: up for `Exp(mean_life)`,
//! down for `Exp(mean_join_interval)`, repeating over the run — the standard
//! P2PSim churn model, which keeps the population stationary. Each departure
//! is independently graceful with probability `graceful_fraction`.

use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;
use dco_sim::time::{SimDuration, SimTime};

/// Churn parameters.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Mean up-time per session (exponential).
    pub mean_life: SimDuration,
    /// Mean down-time between sessions (exponential).
    pub mean_join_interval: SimDuration,
    /// Probability that a departure is graceful (vs abrupt failure).
    pub graceful_fraction: f64,
    /// First instant at which a node may leave (lets the overlay bootstrap).
    pub start_after: SimTime,
}

impl ChurnConfig {
    /// The paper's Fig. 11 setting: mean life = join interval = 60 s, all
    /// departures abrupt (the hardest case, which is what breaks trees).
    pub fn paper_fig11() -> Self {
        ChurnConfig {
            mean_life: SimDuration::from_secs(60),
            mean_join_interval: SimDuration::from_secs(60),
            graceful_fraction: 0.0,
            start_after: SimTime::ZERO,
        }
    }

    /// The Fig. 12 sweep point with the given mean life (seconds).
    pub fn paper_fig12(mean_life_secs: u64) -> Self {
        ChurnConfig {
            mean_life: SimDuration::from_secs(mean_life_secs),
            mean_join_interval: SimDuration::from_secs(mean_life_secs),
            graceful_fraction: 0.0,
            start_after: SimTime::ZERO,
        }
    }
}

/// One scheduled lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The node (re)joins at the given instant.
    Join(SimTime),
    /// The node leaves at the given instant (`true` = graceful).
    Leave(SimTime, bool),
}

/// A full churn schedule: per-node alternating join/leave events.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    /// `events[i]` = ordered lifecycle of node `i`.
    pub events: Vec<(NodeId, Vec<ChurnEvent>)>,
}

/// Samples an exponential with the given mean (never zero; never beyond
/// ~30× the mean, to keep event counts bounded).
fn sample_exp(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(1e-12..1.0);
    let x = -u.ln();
    mean.mul_f64(x.min(30.0)).max(SimDuration::from_micros(1))
}

impl ChurnSchedule {
    /// Builds the schedule for peers `first..first+count` over `[0,
    /// horizon]`. Each peer joins at `t = 0` (plus a small deterministic
    /// stagger below one second so join processing does not all land on the
    /// same instant) and then alternates leave/join per the config.
    pub fn generate(
        first: u32,
        count: u32,
        horizon: SimTime,
        cfg: &ChurnConfig,
        seed: u64,
    ) -> Self {
        let mut events = Vec::with_capacity(count as usize);
        for i in 0..count {
            let node = NodeId(first + i);
            let mut rng = SimRng::seed_from_u64(dco_sim::rng::splitmix64(
                seed ^ (u64::from(first + i)).wrapping_mul(0x517C_C1B7),
            ));
            let mut seq = Vec::new();
            let stagger = SimDuration::from_micros(u64::from(i) % 1_000_000);
            let mut t = SimTime::ZERO + stagger;
            seq.push(ChurnEvent::Join(t));
            loop {
                // Session length.
                let up = sample_exp(&mut rng, cfg.mean_life);
                let mut leave_at = t.saturating_add(up);
                if leave_at < cfg.start_after {
                    leave_at = cfg.start_after.saturating_add(SimDuration::from_micros(1));
                }
                if leave_at >= horizon {
                    break;
                }
                let graceful = rng.gen_bool(cfg.graceful_fraction.clamp(0.0, 1.0));
                seq.push(ChurnEvent::Leave(leave_at, graceful));
                // Downtime.
                let down = sample_exp(&mut rng, cfg.mean_join_interval);
                let rejoin = leave_at.saturating_add(down);
                if rejoin >= horizon {
                    break;
                }
                seq.push(ChurnEvent::Join(rejoin));
                t = rejoin;
            }
            events.push((node, seq));
        }
        ChurnSchedule { events }
    }

    /// Total number of leave events in the schedule.
    pub fn total_leaves(&self) -> usize {
        self.events
            .iter()
            .map(|(_, seq)| {
                seq.iter()
                    .filter(|e| matches!(e, ChurnEvent::Leave(..)))
                    .count()
            })
            .sum()
    }

    /// Number of nodes up at instant `t` according to the schedule.
    pub fn alive_at(&self, t: SimTime) -> usize {
        self.events
            .iter()
            .filter(|(_, seq)| {
                let mut up = false;
                for e in seq {
                    match *e {
                        ChurnEvent::Join(at) if at <= t => up = true,
                        ChurnEvent::Leave(at, _) if at <= t => up = false,
                        _ => {}
                    }
                }
                up
            })
            .count()
    }

    /// The intervals during which `node` is up, clipped to `[0, horizon]`.
    pub fn up_intervals(&self, node: NodeId, horizon: SimTime) -> Vec<(SimTime, SimTime)> {
        let Some((_, seq)) = self.events.iter().find(|(n, _)| *n == node) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut up_since: Option<SimTime> = None;
        for e in seq {
            match *e {
                ChurnEvent::Join(at) => up_since = Some(at),
                ChurnEvent::Leave(at, _) => {
                    if let Some(s) = up_since.take() {
                        out.push((s, at));
                    }
                }
            }
        }
        if let Some(s) = up_since {
            out.push((s, horizon));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            mean_life: SimDuration::from_secs(60),
            mean_join_interval: SimDuration::from_secs(60),
            graceful_fraction: 0.5,
            start_after: SimTime::ZERO,
        }
    }

    #[test]
    fn schedule_shape_alternates() {
        let s = ChurnSchedule::generate(1, 50, SimTime::from_secs(300), &cfg(), 42);
        assert_eq!(s.events.len(), 50);
        for (node, seq) in &s.events {
            assert!(node.0 >= 1 && node.0 <= 50);
            assert!(matches!(seq[0], ChurnEvent::Join(_)), "starts with a join");
            // Strictly alternating and time-ordered.
            let mut last_t = SimTime::ZERO;
            for (i, e) in seq.iter().enumerate() {
                let (t, is_join) = match *e {
                    ChurnEvent::Join(t) => (t, true),
                    ChurnEvent::Leave(t, _) => (t, false),
                };
                assert_eq!(is_join, i % 2 == 0, "alternation at {i}");
                assert!(t >= last_t, "time ordering");
                last_t = t;
            }
        }
    }

    #[test]
    fn population_stays_roughly_stable() {
        let s = ChurnSchedule::generate(1, 200, SimTime::from_secs(600), &cfg(), 7);
        // With up/down both Exp(60), steady-state availability is ~50%.
        for probe in [120u64, 300, 500] {
            let alive = s.alive_at(SimTime::from_secs(probe));
            assert!(
                (60..=140).contains(&alive),
                "alive at {probe}s = {alive}, expected near 100"
            );
        }
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = ChurnSchedule::generate(1, 20, SimTime::from_secs(300), &cfg(), 1);
        let b = ChurnSchedule::generate(1, 20, SimTime::from_secs(300), &cfg(), 1);
        let c = ChurnSchedule::generate(1, 20, SimTime::from_secs(300), &cfg(), 2);
        assert_eq!(a.events, b.events);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn graceful_fraction_extremes() {
        let mut g = cfg();
        g.graceful_fraction = 1.0;
        let s = ChurnSchedule::generate(1, 30, SimTime::from_secs(400), &g, 3);
        for (_, seq) in &s.events {
            for e in seq {
                if let ChurnEvent::Leave(_, graceful) = e {
                    assert!(*graceful);
                }
            }
        }
        g.graceful_fraction = 0.0;
        let s = ChurnSchedule::generate(1, 30, SimTime::from_secs(400), &g, 3);
        assert!(s.total_leaves() > 0);
        for (_, seq) in &s.events {
            for e in seq {
                if let ChurnEvent::Leave(_, graceful) = e {
                    assert!(!*graceful);
                }
            }
        }
    }

    #[test]
    fn start_after_protects_bootstrap() {
        let mut g = cfg();
        g.start_after = SimTime::from_secs(100);
        let s = ChurnSchedule::generate(1, 40, SimTime::from_secs(400), &g, 9);
        for (_, seq) in &s.events {
            for e in seq {
                if let ChurnEvent::Leave(t, _) = e {
                    assert!(*t > SimTime::from_secs(100));
                }
            }
        }
    }

    #[test]
    fn up_intervals_cover_the_lifecycle() {
        let s = ChurnSchedule::generate(5, 1, SimTime::from_secs(500), &cfg(), 11);
        let ivs = s.up_intervals(NodeId(5), SimTime::from_secs(500));
        assert!(!ivs.is_empty());
        for w in ivs.windows(2) {
            assert!(w[0].1 <= w[1].0, "intervals disjoint and ordered");
        }
        assert!(ivs.last().unwrap().1 <= SimTime::from_secs(500));
        assert!(s.up_intervals(NodeId(99), SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn longer_life_means_fewer_leaves() {
        let short = ChurnSchedule::generate(1, 100, SimTime::from_secs(600), &cfg(), 5);
        let mut long_cfg = cfg();
        long_cfg.mean_life = SimDuration::from_secs(120);
        long_cfg.mean_join_interval = SimDuration::from_secs(120);
        let long = ChurnSchedule::generate(1, 100, SimTime::from_secs(600), &long_cfg, 5);
        assert!(
            long.total_leaves() < short.total_leaves(),
            "long {} !< short {}",
            long.total_leaves(),
            short.total_leaves()
        );
    }
}
