//! Viewer playback lags.
//!
//! §III-B2 of the paper observes that viewers of the same channel play at
//! different offsets behind the live edge — "typically on the order of
//! minutes" — and sizes the live-chunk population (and hence the DHT) from
//! the largest lag. This module assigns per-viewer lags for experiments
//! that exercise the prefetch-window math.

use dco_sim::node::NodeId;
use dco_sim::rng::splitmix64;
use dco_sim::time::SimDuration;

/// Per-viewer playback lag assignment.
#[derive(Clone, Debug)]
pub struct LagProfile {
    /// Largest lag any viewer can have.
    pub max_lag: SimDuration,
    /// Assignment seed.
    pub seed: u64,
}

impl LagProfile {
    /// The paper's example: lags spread up to 10 minutes.
    pub fn paper_example(seed: u64) -> Self {
        LagProfile {
            max_lag: SimDuration::from_secs(600),
            seed,
        }
    }

    /// The lag of `node`, uniform in `[0, max_lag]`, deterministic per
    /// `(seed, node)`.
    pub fn lag_of(&self, node: NodeId) -> SimDuration {
        if self.max_lag.is_zero() {
            return SimDuration::ZERO;
        }
        let r = splitmix64(self.seed ^ u64::from(node.0).wrapping_mul(0xA24B_AED4));
        SimDuration::from_micros(r % (self.max_lag.as_micros() + 1))
    }

    /// The number of distinct live chunks in the channel at steady state:
    /// the prefetch-window chunks plus the lag spread, as computed in the
    /// paper's §III-B2 example (window chunks + max_lag / chunk_len).
    pub fn live_chunk_count(&self, window_chunks: u64, chunk_len: SimDuration) -> u64 {
        if chunk_len.is_zero() {
            return window_chunks;
        }
        window_chunks + self.max_lag.as_micros() / chunk_len.as_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lags_bounded_and_deterministic() {
        let p = LagProfile::paper_example(9);
        for i in 0..500u32 {
            let l = p.lag_of(NodeId(i));
            assert!(l <= p.max_lag);
            assert_eq!(l, p.lag_of(NodeId(i)));
        }
    }

    #[test]
    fn zero_max_lag() {
        let p = LagProfile {
            max_lag: SimDuration::ZERO,
            seed: 1,
        };
        assert_eq!(p.lag_of(NodeId(3)), SimDuration::ZERO);
    }

    #[test]
    fn lags_spread_across_range() {
        let p = LagProfile::paper_example(42);
        let half = p.max_lag / 2;
        let below = (0..1000u32).filter(|&i| p.lag_of(NodeId(i)) < half).count();
        assert!(
            (350..=650).contains(&below),
            "skewed: {below}/1000 below half"
        );
    }

    #[test]
    fn paper_live_chunk_example() {
        // §III-B2: 1/3 s chunks, 20 s window (60 chunks), 10 min lag spread
        // → 60 + 600/(1/3) = 1860 live chunks.
        let p = LagProfile::paper_example(1);
        let n = p.live_chunk_count(60, SimDuration::from_micros(333_333));
        // 600 s / 0.333333 s = 1800 (integer division ⇒ 1800).
        assert_eq!(n, 60 + 1800);
    }
}
