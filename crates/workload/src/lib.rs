//! # dco-workload — scenario and churn generation
//!
//! Encodes everything §IV of the paper fixes about a run:
//!
//! * [`arrivals`] — viewer arrival patterns (ramps, Poisson, flash crowds).
//! * [`caps`] — link capacities (4000 kbps server, 600 kbps peers).
//! * [`churn`] — exponential session/downtime churn schedules (Figs. 11–12).
//! * [`grid`] — cartesian scenario-grid expansion with per-coordinate cell
//!   seeds (the batch-sweep harness builds on this).
//! * [`scenario`] — the bundle: population, chunk stream shape, capacities,
//!   optional churn; installs itself into any protocol's simulator.
//! * [`lag`] — viewer playback-lag assignment (prefetch-window studies).
//! * [`topology`] — clustered region latency matrices (King-style data,
//!   synthesized).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod caps;
pub mod churn;
pub mod grid;
pub mod lag;
pub mod scenario;
pub mod topology;

pub use arrivals::ArrivalPattern;
pub use caps::CapsProfile;
pub use churn::{ChurnConfig, ChurnEvent, ChurnSchedule};
pub use grid::{ChurnLevel, GridCell, ScenarioGrid};
pub use lag::LagProfile;
pub use scenario::Scenario;
pub use topology::RegionTopology;
