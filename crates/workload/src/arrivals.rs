//! Viewer arrival patterns.
//!
//! §IV brings every node up at `t = 0`, but real channels see flash crowds
//! and trickles. [`ArrivalPattern`] generalizes the join schedule while
//! keeping the server (node 0) up from the start.

use dco_sim::node::NodeId;
use dco_sim::rng::splitmix64;
use dco_sim::time::{SimDuration, SimTime};

/// When each viewer first joins.
#[derive(Clone, Debug)]
pub enum ArrivalPattern {
    /// Everyone at `t = 0` (the paper's setting).
    AllAtOnce,
    /// Evenly spaced over `[0, span]` in node order (a steady ramp).
    Ramp {
        /// The ramp duration.
        span: SimDuration,
    },
    /// Poisson arrivals with the given mean inter-arrival gap.
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_gap: SimDuration,
        /// Seed for the gap draws.
        seed: u64,
    },
    /// A flash crowd: a fraction arrives in the first instants, the rest
    /// ramp in over `span`.
    FlashCrowd {
        /// Fraction (0–1) of viewers arriving at `t = 0`.
        initial_fraction: f64,
        /// Ramp span for the stragglers.
        span: SimDuration,
    },
}

impl ArrivalPattern {
    /// The join instant of viewer `node` (1-based among `total` viewers;
    /// node 0 — the server — always joins at zero).
    pub fn join_time(&self, node: NodeId, total: u32) -> SimTime {
        if node == NodeId(0) || total <= 1 {
            return SimTime::ZERO;
        }
        let i = node.0.min(total - 1) as u64; // 1..total-1
        let n = (total - 1) as u64;
        match self {
            ArrivalPattern::AllAtOnce => SimTime::ZERO,
            ArrivalPattern::Ramp { span } => {
                SimTime::ZERO + SimDuration::from_micros(span.as_micros() * (i - 1) / n.max(1))
            }
            ArrivalPattern::Poisson { mean_gap, seed } => {
                // Sum of i exponential gaps, derived deterministically.
                let mut t = 0u64;
                for k in 1..=i {
                    let r = splitmix64(seed ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D));
                    let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                    let gap = -((1.0 - u).max(1e-12)).ln();
                    t += (gap * mean_gap.as_micros() as f64) as u64;
                }
                SimTime::from_micros(t)
            }
            ArrivalPattern::FlashCrowd {
                initial_fraction,
                span,
            } => {
                let cut = (n as f64 * initial_fraction.clamp(0.0, 1.0)) as u64;
                if i <= cut.max(1) {
                    SimTime::ZERO
                } else {
                    let rest = (n - cut).max(1);
                    SimTime::ZERO + SimDuration::from_micros(span.as_micros() * (i - cut) / rest)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_always_at_zero() {
        for p in [
            ArrivalPattern::AllAtOnce,
            ArrivalPattern::Ramp {
                span: SimDuration::from_secs(30),
            },
            ArrivalPattern::Poisson {
                mean_gap: SimDuration::from_secs(1),
                seed: 4,
            },
            ArrivalPattern::FlashCrowd {
                initial_fraction: 0.5,
                span: SimDuration::from_secs(60),
            },
        ] {
            assert_eq!(p.join_time(NodeId(0), 100), SimTime::ZERO);
        }
    }

    #[test]
    fn all_at_once() {
        let p = ArrivalPattern::AllAtOnce;
        for i in 1..50 {
            assert_eq!(p.join_time(NodeId(i), 50), SimTime::ZERO);
        }
    }

    #[test]
    fn ramp_is_monotone_and_spans_the_window() {
        let span = SimDuration::from_secs(30);
        let p = ArrivalPattern::Ramp { span };
        let mut last = SimTime::ZERO;
        for i in 1..100u32 {
            let t = p.join_time(NodeId(i), 100);
            assert!(t >= last, "monotone in node order");
            assert!(t <= SimTime::ZERO + span);
            last = t;
        }
        assert_eq!(p.join_time(NodeId(1), 100), SimTime::ZERO);
    }

    #[test]
    fn poisson_is_deterministic_and_increasing() {
        let p = ArrivalPattern::Poisson {
            mean_gap: SimDuration::from_millis(500),
            seed: 7,
        };
        let a = p.join_time(NodeId(10), 100);
        let b = p.join_time(NodeId(10), 100);
        assert_eq!(a, b);
        assert!(p.join_time(NodeId(20), 100) > p.join_time(NodeId(10), 100));
        // Mean inter-arrival roughly matches over many viewers.
        let t99 = p.join_time(NodeId(99), 100).as_secs_f64();
        assert!((20.0..150.0).contains(&t99), "99 gaps of ~0.5s each: {t99}");
    }

    #[test]
    fn flash_crowd_splits_initial_and_ramp() {
        let p = ArrivalPattern::FlashCrowd {
            initial_fraction: 0.5,
            span: SimDuration::from_secs(40),
        };
        assert_eq!(
            p.join_time(NodeId(10), 101),
            SimTime::ZERO,
            "early half instant"
        );
        let late = p.join_time(NodeId(90), 101);
        assert!(late > SimTime::ZERO);
        assert!(late <= SimTime::from_secs(40));
    }
}
