//! Synthetic latency topologies.
//!
//! P2PSim shipped measured inter-host latency matrices (the King data set);
//! offline we synthesize the same structure: nodes live in geographic
//! **regions**, pairs within a region are close, pairs across regions pay a
//! region-to-region base distance, and every sample carries a small
//! deterministic per-pair jitter. The result plugs straight into
//! [`LatencyModel::Matrix`](dco_sim::net::LatencyModel).

use dco_sim::net::LatencyModel;
use dco_sim::node::NodeId;
use dco_sim::rng::splitmix64;
use dco_sim::time::SimDuration;

/// A clustered region topology.
#[derive(Clone, Debug)]
pub struct RegionTopology {
    /// Number of regions.
    pub regions: u32,
    /// One-way latency between nodes of the same region.
    pub intra: SimDuration,
    /// Base one-way latency between adjacent regions; the effective
    /// inter-region latency grows with ring distance between regions.
    pub inter_base: SimDuration,
    /// Additional per-pair jitter bound (deterministic in the seed).
    pub jitter: SimDuration,
    /// Seed for region assignment and jitter.
    pub seed: u64,
}

impl RegionTopology {
    /// A PlanetLab-ish default: 8 regions, 15 ms locally, 40 ms base
    /// inter-region, ±10 ms jitter.
    pub fn planetlab_like(seed: u64) -> Self {
        RegionTopology {
            regions: 8,
            intra: SimDuration::from_millis(15),
            inter_base: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(10),
            seed,
        }
    }

    /// The region of `node` (deterministic hash assignment).
    pub fn region_of(&self, node: NodeId) -> u32 {
        (splitmix64(self.seed ^ u64::from(node.0).wrapping_mul(0x1234_5677))
            % u64::from(self.regions.max(1))) as u32
    }

    /// One-way latency from `a` to `b` (symmetric, self = 0).
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let (ra, rb) = (self.region_of(a), self.region_of(b));
        let base = if ra == rb {
            self.intra
        } else {
            // Ring distance between regions scales the inter-region cost.
            let d = ra.abs_diff(rb).min(self.regions - ra.abs_diff(rb)).max(1);
            self.inter_base * u64::from(d)
        };
        // Symmetric per-pair jitter.
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let j = splitmix64(self.seed ^ (u64::from(lo) << 32 | u64::from(hi)));
        let jitter_us = if self.jitter.is_zero() {
            0
        } else {
            j % (self.jitter.as_micros() + 1)
        };
        base + SimDuration::from_micros(jitter_us)
    }

    /// Materializes the full `n × n` matrix as a [`LatencyModel`].
    pub fn to_latency_model(&self, n: usize) -> LatencyModel {
        LatencyModel::from_fn(n, self.inter_base, |a, b| self.latency(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> RegionTopology {
        RegionTopology::planetlab_like(77)
    }

    #[test]
    fn self_latency_is_zero_and_pairs_symmetric() {
        let t = topo();
        for i in 0..40u32 {
            assert_eq!(t.latency(NodeId(i), NodeId(i)), SimDuration::ZERO);
            for j in 0..40u32 {
                assert_eq!(
                    t.latency(NodeId(i), NodeId(j)),
                    t.latency(NodeId(j), NodeId(i)),
                    "asymmetric pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn intra_region_is_cheaper_than_inter() {
        let t = topo();
        // Find an intra-region pair and an inter-region pair.
        let mut intra = None;
        let mut inter = None;
        'outer: for i in 0..64u32 {
            for j in (i + 1)..64u32 {
                let same = t.region_of(NodeId(i)) == t.region_of(NodeId(j));
                if same && intra.is_none() {
                    intra = Some(t.latency(NodeId(i), NodeId(j)));
                }
                if !same && inter.is_none() {
                    inter = Some(t.latency(NodeId(i), NodeId(j)));
                }
                if intra.is_some() && inter.is_some() {
                    break 'outer;
                }
            }
        }
        let (intra, inter) = (intra.unwrap(), inter.unwrap());
        assert!(
            intra < inter,
            "intra {intra} should be cheaper than inter {inter}"
        );
        assert!(
            intra <= SimDuration::from_millis(25),
            "intra = base + jitter"
        );
    }

    #[test]
    fn regions_are_roughly_balanced() {
        let t = topo();
        let mut counts = vec![0usize; t.regions as usize];
        for i in 0..800u32 {
            counts[t.region_of(NodeId(i)) as usize] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            assert!((50..=150).contains(&c), "region {r} has {c} of 800");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RegionTopology::planetlab_like(5);
        let b = RegionTopology::planetlab_like(5);
        let c = RegionTopology::planetlab_like(6);
        assert_eq!(
            a.latency(NodeId(3), NodeId(9)),
            b.latency(NodeId(3), NodeId(9))
        );
        assert!(
            a.region_of(NodeId(3)) != c.region_of(NodeId(3))
                || a.latency(NodeId(3), NodeId(9)) != c.latency(NodeId(3), NodeId(9)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn matrix_model_round_trips() {
        use dco_sim::rng::SimRng;
        let t = topo();
        let m = t.to_latency_model(16);
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..16u32 {
            for j in 0..16u32 {
                assert_eq!(
                    m.sample(NodeId(i), NodeId(j), &mut rng),
                    t.latency(NodeId(i), NodeId(j))
                );
            }
        }
    }
}
