//! Bandwidth capacity profiles.
//!
//! §IV fixes the paper's capacities: the server uploads and downloads at
//! 4000 kbps, every peer at 600 kbps. A heterogeneous profile is provided
//! for sensitivity studies (the paper's related work discusses treating
//! high-bandwidth peers differently).

use dco_sim::net::{Kbps, NodeCaps};
use dco_sim::rng::splitmix64;

/// How node link capacities are assigned.
#[derive(Clone, Debug)]
pub enum CapsProfile {
    /// The paper's setting: one server at 4000 kbps, peers at 600 kbps.
    PaperDefault,
    /// Uniform custom rates.
    Uniform {
        /// Server capacity (node 0).
        server: Kbps,
        /// Peer capacity (all other nodes).
        peer: Kbps,
    },
    /// Heterogeneous peers drawn from a weighted class table
    /// `(kbps, weight)`; the server keeps its own rate.
    Heterogeneous {
        /// Server capacity (node 0).
        server: Kbps,
        /// Peer classes with relative weights.
        classes: Vec<(Kbps, u32)>,
        /// Seed for the class assignment (deterministic per node index).
        seed: u64,
    },
}

impl CapsProfile {
    /// The capacities of node `index` (0 = server).
    pub fn caps_for(&self, index: u32) -> NodeCaps {
        match self {
            CapsProfile::PaperDefault => {
                if index == 0 {
                    NodeCaps::server_default()
                } else {
                    NodeCaps::peer_default()
                }
            }
            CapsProfile::Uniform { server, peer } => {
                NodeCaps::symmetric(if index == 0 { *server } else { *peer })
            }
            CapsProfile::Heterogeneous {
                server,
                classes,
                seed,
            } => {
                if index == 0 {
                    return NodeCaps::symmetric(*server);
                }
                let total: u64 = classes.iter().map(|&(_, w)| w as u64).sum();
                assert!(total > 0, "heterogeneous profile needs weights");
                let mut pick = splitmix64(seed ^ (index as u64).wrapping_mul(0x9E37)) % total;
                for &(rate, w) in classes {
                    if pick < w as u64 {
                        return NodeCaps::symmetric(rate);
                    }
                    pick -= w as u64;
                }
                unreachable!("weights exhausted")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4() {
        let p = CapsProfile::PaperDefault;
        assert_eq!(p.caps_for(0).up, Kbps(4000));
        assert_eq!(p.caps_for(1).up, Kbps(600));
        assert_eq!(p.caps_for(511).down, Kbps(600));
    }

    #[test]
    fn uniform_profile() {
        let p = CapsProfile::Uniform {
            server: Kbps(10_000),
            peer: Kbps(1_000),
        };
        assert_eq!(p.caps_for(0).up, Kbps(10_000));
        assert_eq!(p.caps_for(3).down, Kbps(1_000));
    }

    #[test]
    fn heterogeneous_is_deterministic_and_weighted() {
        let p = CapsProfile::Heterogeneous {
            server: Kbps(4000),
            classes: vec![(Kbps(300), 1), (Kbps(900), 1)],
            seed: 7,
        };
        assert_eq!(p.caps_for(0).up, Kbps(4000));
        // Deterministic per index.
        assert_eq!(p.caps_for(5), p.caps_for(5));
        // Both classes appear over a population.
        let mut low = 0;
        let mut high = 0;
        for i in 1..=1000 {
            match p.caps_for(i).up {
                Kbps(300) => low += 1,
                Kbps(900) => high += 1,
                other => panic!("unexpected rate {other}"),
            }
        }
        assert!(low > 350 && high > 350, "low={low} high={high}");
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn heterogeneous_requires_weights() {
        let p = CapsProfile::Heterogeneous {
            server: Kbps(4000),
            classes: vec![],
            seed: 1,
        };
        p.caps_for(1);
    }
}
